"""Tests for the fast-failure-detector model and consensus (E6 substrate)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.ffd.consensus import FastFDConsensus, run_ffd_consensus
from repro.ffd.timed import TimedCrash, TimedEnvironment, TimedSpec
from repro.util.rng import RandomSource

SPEC = TimedSpec(n=5, D=100.0, d=1.0)


def props(n=5):
    return [100 + pid for pid in range(1, n + 1)]


class TestTimedSpec:
    def test_grid_must_fit_in_D(self):
        with pytest.raises(ConfigurationError):
            TimedSpec(n=5, D=4.0, d=1.0)  # n*d >= D

    def test_positive_parameters(self):
        with pytest.raises(ConfigurationError):
            TimedSpec(n=5, D=100.0, d=0.0)
        with pytest.raises(ConfigurationError):
            TimedSpec(n=1, D=100.0, d=1.0)

    def test_delta_min_bounds(self):
        with pytest.raises(ConfigurationError):
            TimedSpec(n=3, D=10.0, d=0.1, delta_min=1.5)


class TestFailureFree:
    def test_decides_p1_value_at_time_about_D(self):
        result = run_ffd_consensus(SPEC, props(), rng=RandomSource(1))
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {101}
        # Fast path: everyone decides by (L-1)d + d + D = d + D.
        assert result.max_decision_time <= SPEC.D + SPEC.d + 1e-9
        assert result.fired_slots == [1]

    def test_proposal_count_validated(self):
        with pytest.raises(ConfigurationError):
            run_ffd_consensus(SPEC, [1, 2, 3])


class TestCrashCascades:
    @pytest.mark.parametrize("f", [1, 2, 3, 4])
    def test_decision_time_D_plus_f_d(self, f):
        # The first f processes crash at time 0: slots 1..f never complete a
        # broadcast, slot f+1 broadcasts, everyone decides ~ D + f*d.
        crashes = [TimedCrash(pid, 0.0) for pid in range(1, f + 1)]
        result = run_ffd_consensus(SPEC, props(), crashes, rng=RandomSource(2))
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {100 + f + 1}
        bound = f * SPEC.d + SPEC.d + SPEC.D  # (L-1)d + d + D with L = f+1
        assert result.max_decision_time <= bound + 1e-9
        assert result.fired_slots[-1] == f + 1

    def test_partial_takeover_broadcast_fallback_is_uniform(self):
        # p1 crashes during its takeover broadcast (at its check instant,
        # slot+d), reaching only p3.  That crash lands exactly on slot 2's
        # boundary, so slot 2 fires and p2's complete broadcast dominates
        # p1's partial one under the max-fired-slot rule: every process must
        # converge on p2's value, and p3's relayed copy of 101 must lose
        # uniformly.
        crashes = [TimedCrash(1, 0.0, takeover_subset=frozenset({3}))]
        result = run_ffd_consensus(SPEC, props(), crashes, rng=RandomSource(3))
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {102}
        assert result.fired_slots == [1, 2]

    def test_partial_broadcast_to_nobody(self):
        # p1's broadcast reaches nobody: value 101 dies with it; survivors
        # must settle on something held (their own non-broadcast slots never
        # fired, so this exercises the deepest fallback).
        crashes = [TimedCrash(1, 0.0, takeover_subset=frozenset())]
        result = run_ffd_consensus(SPEC, props(), crashes, rng=RandomSource(4))
        assert result.check_consensus() == []

    def test_late_crash_after_complete_broadcast(self):
        # p1 broadcasts fully, then dies: everyone still decides 101.
        crashes = [TimedCrash(1, 50.0)]
        result = run_ffd_consensus(SPEC, props(), crashes, rng=RandomSource(5))
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {101}

    def test_chained_partial_broadcasts(self):
        # p1 partial to {2}, p2 partial to {4}: relays + fallback must still
        # produce a single decision value.
        crashes = [
            TimedCrash(1, 0.0, takeover_subset=frozenset({2})),
            TimedCrash(2, 0.0, takeover_subset=frozenset({4})),
        ]
        result = run_ffd_consensus(SPEC, props(), crashes, rng=RandomSource(6))
        assert result.check_consensus() == []

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_property_uniform_consensus(self, data):
        n = data.draw(st.sampled_from([3, 5, 8]), label="n")
        spec = TimedSpec(n=n, D=100.0, d=1.0)
        f = data.draw(st.integers(0, n - 1), label="f")
        victims = data.draw(
            st.lists(st.integers(1, n), min_size=f, max_size=f, unique=True),
            label="victims",
        )
        crashes = []
        for pid in victims:
            kind = data.draw(st.integers(0, 2), label=f"kind{pid}")
            if kind == 0:
                crashes.append(
                    TimedCrash(pid, data.draw(st.floats(0.0, 150.0), label=f"t{pid}"))
                )
            else:
                subset = data.draw(
                    st.frozensets(st.integers(1, n), max_size=n), label=f"s{pid}"
                )
                crashes.append(TimedCrash(pid, 0.0, takeover_subset=subset - {pid}))
        seed = data.draw(st.integers(0, 2**32), label="seed")
        result = run_ffd_consensus(
            spec, props(n), crashes, rng=RandomSource(seed)
        )
        assert result.check_consensus() == [], (
            result.decisions,
            result.fired_slots,
            result.crashed,
        )


class TestFiredSlotsFastPath:
    """PR 3 rewrote fired_slots as a cached single pass; pin it against
    the definition (the quadratic pairwise scan over crashed_by)."""

    @staticmethod
    def _reference(proc):
        d = proc.env.spec.d
        view = proc.env.detectors[proc.pid]
        fired = []
        for i in range(1, proc.n + 1):
            slot_time = (i - 1) * d
            if view.crashed_by(i, slot_time):
                continue
            if all(view.crashed_by(j, slot_time) for j in range(1, i)):
                fired.append(i)
        return fired

    @given(data=st.data())
    def test_matches_reference_on_arbitrary_report_maps(self, data):
        n = data.draw(st.sampled_from([3, 6, 9]), label="n")
        spec = TimedSpec(n=n, D=100.0, d=1.0)
        env = TimedEnvironment(spec, [], RandomSource(0))
        proc = FastFDConsensus(n, n, 0, env)
        view = env.detectors[n]
        reported = data.draw(
            st.frozensets(st.integers(1, n), max_size=n), label="reported"
        )
        for pid in sorted(reported):
            view.reports[pid] = data.draw(
                st.floats(0.0, 3.0 * n), label=f"t{pid}"
            )
            view.version += 1
        assert proc.fired_slots() == self._reference(proc)

    def test_cache_invalidates_on_new_report(self):
        spec = TimedSpec(n=4, D=100.0, d=1.0)
        env = TimedEnvironment(spec, [], RandomSource(0))
        proc = FastFDConsensus(4, 4, 0, env)
        view = env.detectors[4]
        assert proc.fired_slots() == [1]
        first = proc.fired_slots()
        assert proc.fired_slots() is first  # cached between reports
        view.reports[1] = 0.0
        view.version += 1
        assert proc.fired_slots() == [2] == self._reference(proc)

"""Unit tests for the timed environment underneath the fast-FD consensus."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ffd.timed import TimedCrash, TimedEnvironment, TimedSpec
from repro.util.rng import RandomSource

SPEC = TimedSpec(n=4, D=50.0, d=1.0)


def env(crashes=()):
    e = TimedEnvironment(SPEC, list(crashes), RandomSource(1))
    delivered = []
    fd_events = []
    e.wire(on_deliver=delivered.append, on_fd=fd_events.append)
    return e, delivered, fd_events


class TestValidation:
    def test_duplicate_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            TimedEnvironment(
                SPEC,
                [TimedCrash(1, 0.0), TimedCrash(1, 1.0)],
                RandomSource(1),
            )

    def test_out_of_range_pid_rejected(self):
        with pytest.raises(ConfigurationError):
            TimedEnvironment(SPEC, [TimedCrash(9, 0.0)], RandomSource(1))

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TimedCrash(1, -0.5)


class TestTransport:
    def test_unicast_delay_within_bounds(self):
        e, delivered, _ = env()
        e.unicast(1, 2, "X", 42)
        end = e.queue.run()
        assert len(delivered) == 1
        assert SPEC.delta_min * SPEC.D <= end <= SPEC.D

    def test_delivery_to_crashed_dropped(self):
        e, delivered, _ = env([TimedCrash(2, 0.0)])
        e.unicast(1, 2, "X", 42)
        e.queue.run()
        assert delivered == []
        assert e.stats.async_sent == 1
        assert e.stats.async_delivered == 0


class TestDetector:
    def test_timestamped_reports_within_d(self):
        e, _, fd_events = env([TimedCrash(3, 5.0)])
        e.queue.run()
        assert set(fd_events) == {1, 2, 4}
        for observer in (1, 2, 4):
            view = e.detectors[observer]
            assert view.reports[3] == 5.0  # true crash time, not detect time
            assert view.crashed_by(3, 5.0)
            assert not view.crashed_by(3, 4.9)
        assert e.queue.now <= 5.0 + SPEC.d

    def test_crashed_observer_gets_no_reports(self):
        e, _, fd_events = env([TimedCrash(1, 0.0), TimedCrash(2, 0.1)])
        e.queue.run()
        assert 1 not in fd_events  # p1 was already dead when p2's report landed
        assert 2 not in e.detectors[1].reports or e.detectors[1].reports == {}


class TestTakeoverBroadcast:
    def test_complete_broadcast(self):
        e, delivered, _ = env()
        assert e.broadcast_takeover(1, "VAL", (1, "v"))
        e.queue.run()
        assert {m.dest for m in delivered} == {2, 3, 4}

    def test_partial_broadcast_crashes_sender(self):
        e, delivered, _ = env([TimedCrash(1, 0.0, takeover_subset=frozenset({3}))])
        assert not e.broadcast_takeover(1, "VAL", (1, "v"))
        e.queue.run()
        assert {m.dest for m in delivered} == {3}
        assert e.is_crashed(1)

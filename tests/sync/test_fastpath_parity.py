"""Fast-path parity: trace-off runs must be byte-identical to traced runs.

The synchronous engines take two delivery paths (``repro.sync.engine``):
the traced path materializes one :class:`~repro.net.message.Message` per
(sender, dest) pair and records every event, while the fast path (tracing
off — the sweep and benchmark default) never builds message objects and
charges :class:`~repro.net.accounting.MessageStats` in bulk.  This grid
pins that the two paths agree on **everything observable**: the full
:class:`~repro.scenarios.RunRecord` and every individual stats counter,
across all synchronous algorithms × adversaries × seeds.
"""

from __future__ import annotations

import pytest

from repro.scenarios import ADVERSARIES, ALGORITHMS, Scenario, execute

#: Every registered synchronous algorithm (the fast path only exists in
#: the extended/classic engines).
SYNC_ALGORITHMS = sorted(
    name
    for name in ALGORITHMS.names()
    if ALGORITHMS.get(name).backend in ("extended", "classic")
)

#: Adversaries with a synchronous plan.  The classic engines cannot take
#: control-step crash points, so classic algorithms pair with the
#: classic-legal subset (same mapping `execute` itself applies for
#: "random").
EXTENDED_ADVERSARIES = sorted(
    name for name, adv in ADVERSARIES.items() if adv.make_sync is not None
)
CLASSIC_ADVERSARIES = ["none", "staggered", "random"]


def _cells():
    for algorithm in SYNC_ALGORITHMS:
        backend = ALGORITHMS.get(algorithm).backend
        adversaries = (
            EXTENDED_ADVERSARIES if backend == "extended" else CLASSIC_ADVERSARIES
        )
        for adversary in adversaries:
            yield algorithm, adversary


@pytest.mark.parametrize("algorithm,adversary", list(_cells()))
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_records_and_stats_identical(algorithm, adversary, seed):
    scenario = Scenario(
        algorithm=algorithm, n=6, f=2, adversary=adversary, seed=seed,
    )
    traced = execute(scenario, trace=True)
    fast = execute(scenario, trace=False)

    # The normalized record agrees field for field (to_dict drops `raw`,
    # which holds the engine-native result including the trace object).
    assert fast.to_dict() == traced.to_dict()

    # And the raw per-kind counters agree individually — messages_sent /
    # bits_sent alone could mask compensating errors between kinds or
    # between the sent and delivered sides.
    assert fast.raw.stats == traced.raw.stats

    # The traced run actually traced; the fast run recorded nothing.
    assert len(traced.raw.trace) > 0
    assert len(fast.raw.trace) == 0


@pytest.mark.parametrize("algorithm", SYNC_ALGORITHMS)
def test_failure_free_parity(algorithm):
    scenario = Scenario(algorithm=algorithm, n=5, f=0, adversary="none", seed=3)
    assert execute(scenario, trace=False).to_dict() == execute(
        scenario, trace=True
    ).to_dict()


def test_inboxes_identical_between_paths():
    """Beyond the record: per-round inbox contents match exactly."""
    from repro.sync.extended import ExtendedSynchronousEngine
    from repro.scenarios.registry import ADVERSARIES as ADVS
    from repro.util.rng import RandomSource

    def run(trace):
        rng = RandomSource(5)
        schedule = ADVS.get("coordinator-killer").make_sync(2).schedule(
            6, 5, rng.spawn("adversary")
        )
        procs = ALGORITHMS.get("crw").factory(6, 5, list(range(6)), {})
        # batched=False: this test compares materialized inboxes, which
        # the auto-detected vector mode (trace off) never builds.
        engine = ExtendedSynchronousEngine(
            procs, schedule, t=5, rng=rng.spawn("engine"), trace=trace,
            batched=False,
        )
        outcomes = []
        while engine.active_pids:
            outcomes.append(engine.step())
        return outcomes

    for fast, traced in zip(run(False), run(True), strict=True):
        assert fast.round_no == traced.round_no
        assert fast.new_decisions == traced.new_decisions
        assert set(fast.inboxes) == set(traced.inboxes)
        for pid, inbox in fast.inboxes.items():
            assert dict(inbox.data) == dict(traced.inboxes[pid].data)
            assert inbox.control == traced.inboxes[pid].control


def test_empty_inbox_is_read_only():
    """The shared empty inbox must reject mutation instead of leaking state."""
    from repro.sync.engine import _EMPTY_INBOX

    assert _EMPTY_INBOX.empty
    with pytest.raises(TypeError):
        _EMPTY_INBOX.data[1] = "oops"  # type: ignore[index]

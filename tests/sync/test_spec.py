"""Tests for the consensus spec checkers."""

from __future__ import annotations

import pytest

from repro.errors import SpecViolationError
from repro.net.accounting import MessageStats
from repro.sync.result import ProcessOutcome, RunResult
from repro.sync.spec import assert_consensus, check_consensus
from repro.util.trace import Trace


def make_result(outcomes, completed=True, rounds=3, n=None):
    n = n if n is not None else len(outcomes)
    return RunResult(
        n=n,
        t=n - 1,
        model="extended",
        outcomes={o.pid: o for o in outcomes},
        rounds_executed=rounds,
        completed=completed,
        stats=MessageStats(),
        trace=Trace(enabled=False),
    )


def proc(pid, proposal, decided=None, decided_round=0, crashed_round=0):
    return ProcessOutcome(
        pid=pid,
        proposal=proposal,
        decided=decided is not None,
        decision=decided,
        decided_round=decided_round,
        crashed=crashed_round > 0,
        crashed_round=crashed_round,
    )


class TestCheckConsensus:
    def test_clean_run_passes(self):
        r = make_result([proc(1, "a", "a", 1), proc(2, "b", "a", 1)])
        report = check_consensus(r)
        assert report.ok

    def test_termination_violation(self):
        r = make_result([proc(1, "a", "a", 1), proc(2, "b")])
        report = check_consensus(r)
        assert any("termination" in v for v in report.violations)

    def test_crashed_process_need_not_decide(self):
        r = make_result([proc(1, "a", "a", 1), proc(2, "b", crashed_round=1)])
        assert check_consensus(r).ok

    def test_incomplete_run_is_termination_violation(self):
        r = make_result([proc(1, "a", "a", 1), proc(2, "b")], completed=False)
        assert any("termination" in v for v in check_consensus(r).violations)

    def test_validity_violation(self):
        r = make_result([proc(1, "a", "z", 1), proc(2, "b", "z", 1)])
        assert any("validity" in v for v in check_consensus(r).violations)

    def test_uniform_agreement_counts_faulty_deciders(self):
        # p1 decides "a" then crashes later; p2 decides "b": uniform violated,
        # plain agreement also checks only correct -> violated too? p1 crashed,
        # so plain agreement ignores it.
        r = make_result(
            [proc(1, "a", "a", 1, crashed_round=2), proc(2, "b", "b", 2), proc(3, "c", "b", 2)]
        )
        uniform = check_consensus(r, uniform=True)
        plain = check_consensus(r, uniform=False)
        assert any("uniform agreement" in v for v in uniform.violations)
        assert plain.ok

    def test_round_bound(self):
        r = make_result([proc(1, "a", "a", 3), proc(2, "b", "a", 3)])
        assert check_consensus(r, round_bound=2).violations
        assert check_consensus(r, round_bound=3).ok

    def test_early_stopping_bound_uses_actual_f(self):
        # f = 1 crash, decisions at round 3 > f+1 = 2.
        r = make_result(
            [proc(1, "a", crashed_round=1), proc(2, "b", "b", 3), proc(3, "c", "b", 3)]
        )
        report = check_consensus(r, require_early_stopping=True)
        assert any("early stopping" in v for v in report.violations)
        assert report.early_stopping_bound == 2
        assert report.last_decision_round == 3

    def test_early_stopping_ok_at_f_plus_one(self):
        r = make_result(
            [proc(1, "a", crashed_round=1), proc(2, "b", "b", 2), proc(3, "c", "b", 2)]
        )
        assert check_consensus(r, require_early_stopping=True).ok


class TestAssertConsensus:
    def test_raises_with_summary(self):
        r = make_result([proc(1, "a", "a", 1), proc(2, "b", "b", 1)])
        with pytest.raises(SpecViolationError) as exc:
            assert_consensus(r)
        assert "uniform agreement" in str(exc.value)
        assert "extended run" in str(exc.value)

    def test_passes_through_report(self):
        r = make_result([proc(1, "a", "a", 1), proc(2, "b", "a", 1)])
        report = assert_consensus(r)
        assert report.ok

"""Tests for adversary strategies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sync.adversary import (
    CommitSplitter,
    CoordinatorKiller,
    NoCrash,
    RandomCrashes,
    StaggeredKiller,
)
from repro.sync.crash import CrashPoint, Subset
from repro.util.rng import RandomSource


class TestNoCrash:
    def test_empty_schedule(self):
        assert NoCrash().schedule(5, 2, RandomSource(1)).crash_count == 0


class TestRandomCrashes:
    def test_f_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomCrashes(f=3).schedule(5, 2, RandomSource(1))
        with pytest.raises(ConfigurationError):
            RandomCrashes(f=-1).schedule(5, 2, RandomSource(1))

    def test_f_equal_n_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomCrashes(f=3).schedule(3, 3, RandomSource(1))

    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 3))
    def test_schedule_shape(self, seed, f):
        sched = RandomCrashes(f=f).schedule(8, 3 if f <= 3 else f, RandomSource(seed))
        assert sched.crash_count == f
        for ev in sched.events.values():
            assert 1 <= ev.round_no <= f + 1

    def test_horizon_override(self):
        sched = RandomCrashes(f=2, max_round=1).schedule(8, 3, RandomSource(5))
        assert all(ev.round_no == 1 for ev in sched.events.values())


class TestCoordinatorKiller:
    def test_kills_first_f_coordinators_in_their_rounds(self):
        sched = CoordinatorKiller(f=3).schedule(8, 3, RandomSource(1))
        assert sched.crash_count == 3
        for r in (1, 2, 3):
            ev = sched.event_for(r)
            assert ev is not None
            assert ev.round_no == r
            assert ev.point is CrashPoint.DURING_DATA
            assert ev.data_policy is Subset.NONE

    def test_deliver_subset_variant(self):
        sched = CoordinatorKiller(f=2, deliver_to_none=False).schedule(
            8, 3, RandomSource(1)
        )
        assert all(ev.data_policy is Subset.RANDOM for ev in sched.events.values())

    def test_zero_f(self):
        assert CoordinatorKiller(f=0).schedule(8, 3, RandomSource(1)).crash_count == 0


class TestCommitSplitter:
    def test_last_crash_is_control_step(self):
        sched = CommitSplitter(f=2, prefix_len=1).schedule(8, 3, RandomSource(1))
        ev1, ev2 = sched.event_for(1), sched.event_for(2)
        assert ev1.point is CrashPoint.DURING_DATA
        assert ev2.point is CrashPoint.DURING_CONTROL
        assert ev2.control_prefix == 1

    def test_f_zero_is_failure_free(self):
        assert CommitSplitter(f=0).schedule(8, 3, RandomSource(1)).crash_count == 0

    def test_single_crash_is_splitter(self):
        sched = CommitSplitter(f=1, prefix_len=2).schedule(8, 3, RandomSource(1))
        assert sched.event_for(1).point is CrashPoint.DURING_CONTROL


class TestStaggeredKiller:
    def test_victims_are_top_ids(self):
        sched = StaggeredKiller(f=3).schedule(8, 3, RandomSource(1))
        assert sorted(sched.events) == [6, 7, 8]
        rounds = sorted(ev.round_no for ev in sched.events.values())
        assert rounds == [1, 2, 3]

    def test_first_round_validated(self):
        with pytest.raises(ConfigurationError):
            StaggeredKiller(f=1, first_round=0).schedule(8, 3, RandomSource(1))

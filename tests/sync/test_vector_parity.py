"""Vector-stepping parity: array tables must match batched and object runs.

PR 9's vector stepping protocol (``repro.sync.api.VectorAlgorithm``)
replaces the per-process send/compute calls with whole-column operations
over numpy (or ``array``) state.  The engine auto-detects a registered
vector table whenever tracing is off, so this grid is the contract: for
every algorithm that registered one, a vector run must be
**byte-identical** to both the list-batched run and the per-process
reference — the normalized RunRecord and every MessageStats counter —
across adversaries, seeds, and engine reuse (fresh / leased / refilled).

The same file runs under ``REPRO_NO_NUMPY=1`` in CI, pinning the stdlib
``array`` fallback to the same bytes.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import ADVERSARIES, ALGORITHMS, EngineLease, Scenario, execute
from repro.sync.api import vector_table_for


def _has_vtable(name: str) -> bool:
    algo = ALGORITHMS.get(name)
    if algo.backend not in ("extended", "classic") or algo.factory is None:
        return False
    procs = algo.factory(3, 2, [1, 2, 3], {})
    return vector_table_for(procs) is not None


VECTOR_ALGORITHMS = sorted(
    name for name in ALGORITHMS.names() if _has_vtable(name)
)

EXTENDED_ADVERSARIES = sorted(
    name for name, adv in ADVERSARIES.items() if adv.make_sync is not None
)
CLASSIC_ADVERSARIES = ["none", "staggered", "random"]


def _cells():
    for algorithm in VECTOR_ALGORITHMS:
        backend = ALGORITHMS.get(algorithm).backend
        adversaries = (
            EXTENDED_ADVERSARIES if backend == "extended" else CLASSIC_ADVERSARIES
        )
        for adversary in adversaries:
            yield algorithm, adversary


def test_hot_algorithms_are_vectorized():
    """The algorithms the issue names must actually carry vector tables."""
    for name in ("crw", "eager-crw", "truncated-crw", "increasing-commit-crw",
                 "full-broadcast-crw", "floodset", "early-stopping"):
        assert name in VECTOR_ALGORITHMS, f"{name} lost its vector table"


@pytest.mark.parametrize("algorithm,adversary", list(_cells()))
@pytest.mark.parametrize("seed", [0, 1, 2, 7, 13])
def test_records_and_stats_identical(algorithm, adversary, seed):
    scenario = Scenario(
        algorithm=algorithm, n=6, f=2, adversary=adversary, seed=seed,
    )
    vector = execute(scenario, batched="vector")
    batched = execute(scenario, batched=True)
    reference = execute(scenario, batched=False)

    # The normalized record agrees field for field (to_dict drops `raw`).
    assert vector.to_dict() == reference.to_dict()
    assert vector.to_dict() == batched.to_dict()

    # And the raw per-kind counters agree individually — messages_sent /
    # bits_sent alone could mask compensating errors between kinds or
    # between the sent and delivered sides.
    assert vector.raw.stats == reference.raw.stats


@pytest.mark.parametrize("algorithm", VECTOR_ALGORITHMS)
def test_auto_mode_engages_the_vector_table(algorithm):
    """``batched=None`` with tracing off must pick the vector path —
    and still produce the reference bytes."""
    from repro.sync.engine import ClassicSynchronousEngine
    from repro.sync.extended import ExtendedSynchronousEngine

    scenario = Scenario(algorithm=algorithm, n=5, f=1, adversary="staggered", seed=3)
    auto = execute(scenario)
    explicit = execute(scenario, batched="vector")
    reference = execute(scenario, batched=False)
    assert auto.to_dict() == explicit.to_dict() == reference.to_dict()

    # The auto-detected engine really holds a vector table (and no
    # list-batched one), on both engine classes.
    algo = ALGORITHMS.get(algorithm)
    procs = algo.factory(5, 4, [1, 2, 3, 4, 5], {})
    cls = (
        ExtendedSynchronousEngine if algo.backend == "extended"
        else ClassicSynchronousEngine
    )
    engine = cls(procs, t=4, trace=False)
    assert engine._vtable is not None
    assert engine._table is None


class TestLeasedAndRefilled:
    """Engine reuse: a leased (refilled/reset) vector engine stays exact."""

    @pytest.mark.parametrize("algorithm", VECTOR_ALGORITHMS)
    def test_leased_runs_identical(self, algorithm):
        scenario = Scenario(
            algorithm=algorithm, n=9, f=3, adversary="staggered",
        )
        lease = EngineLease()
        for seed in range(8):
            cell = scenario.with_(seed=seed)
            fresh = execute(cell)
            leased = execute(cell, lease=lease)
            assert fresh.to_dict() == leased.to_dict(), (algorithm, seed)
        # One configuration -> one cached engine, and it runs vectorized.
        assert len(lease) == 1
        (engine,) = lease._engines.values()
        assert getattr(engine, "_vtable", None) is not None

    def test_vector_and_other_modes_key_separately(self):
        scenario = Scenario(algorithm="crw", n=5, f=1, adversary="coordinator-killer")
        lease = EngineLease()
        a = execute(scenario, lease=lease, batched="vector")
        b = execute(scenario, lease=lease, batched=True)
        c = execute(scenario, lease=lease, batched=False)
        assert a.to_dict() == b.to_dict() == c.to_dict()
        assert len(lease) == 3  # distinct keys: the flags shape the engine


class TestModeSelection:
    def test_vector_mode_requires_tracing_off(self):
        scenario = Scenario(algorithm="crw", n=4, f=1, adversary="none", seed=0)
        with pytest.raises(ConfigurationError, match="tracing"):
            execute(scenario, trace=True, batched="vector")

    def test_vector_mode_is_synchronous_only(self):
        # mr99 is asynchronous: no sync vector table exists for it.
        scenario = Scenario(algorithm="mr99", n=4, f=1, adversary="none", seed=0)
        with pytest.raises(ConfigurationError, match="synchronous-only"):
            execute(scenario, batched="vector")

    def test_ineligible_values_fall_back_to_batched(self):
        """Non-int64 proposals (SizedValue) decline vectorization but keep
        the list-batched table — auto mode still runs, byte-identical."""
        from repro.core.crw import CRWConsensus
        from repro.net.payload import SizedValue
        from repro.sync.extended import ExtendedSynchronousEngine

        def procs():
            return [
                CRWConsensus(pid, 4, SizedValue(pid, bits=128))
                for pid in range(1, 5)
            ]

        assert vector_table_for(procs()) is None

        engine = ExtendedSynchronousEngine(procs(), t=3, trace=False)
        assert engine._vtable is None
        assert engine._table is not None  # fell back to the list table
        result = engine.run()
        reference = ExtendedSynchronousEngine(
            procs(), t=3, trace=False, batched=False
        ).run()
        assert {p: o.decision for p, o in result.outcomes.items()} == {
            p: o.decision for p, o in reference.outcomes.items()
        }
        assert result.stats == reference.stats

    def test_bool_proposals_decline_vectorization(self):
        from repro.core.crw import CRWConsensus

        procs = [CRWConsensus(pid, 3, pid == 1) for pid in (1, 2, 3)]
        assert vector_table_for(procs) is None

    def test_oversized_floodset_universe_declines(self):
        from repro.baselines.floodset import FloodSetConsensus

        n = 66  # 66 distinct values > the 64-bit mask
        procs = [FloodSetConsensus(pid, n, pid, t=1) for pid in range(1, n + 1)]
        assert vector_table_for(procs) is None


def test_sharded_sweep_runs_vectorized_cells(tmp_path):
    """End to end: a sharded sweep (vector mode auto-engaged in every
    worker) produces the same records as serial per-object execution."""
    from repro.scenarios import SweepRunner, expand_grid

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cells = expand_grid(
            ["crw", "floodset"], [5],
            adversaries=("coordinator-killer",), seeds=4,
        )
    sharded = SweepRunner(
        cells, executor="sharded", jsonl_path=str(tmp_path / "shards"),
        shards=3, chunk_size=2, processes=2,
    ).run()
    reference = [execute(cell, batched=False) for cell in cells]
    assert [r.to_dict() for r in sharded] == [r.to_dict() for r in reference]

"""Tests for SendPlan / RoundInbox / SyncProcess basics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ModelViolationError
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess


class Echo(SyncProcess):
    """Minimal concrete process for API testing."""

    def send_phase(self, round_no):
        return NO_SEND

    def compute_phase(self, round_no, inbox):
        return None


class TestSendPlan:
    def test_valid_plan(self):
        SendPlan(data={2: "x"}, control=(3, 2)).validate(1, 3, allow_control=True)

    def test_self_data_rejected(self):
        with pytest.raises(ModelViolationError):
            SendPlan(data={1: "x"}).validate(1, 3, allow_control=True)

    def test_out_of_range_data_rejected(self):
        with pytest.raises(ModelViolationError):
            SendPlan(data={4: "x"}).validate(1, 3, allow_control=True)

    def test_control_in_classic_rejected(self):
        with pytest.raises(ModelViolationError):
            SendPlan(control=(2,)).validate(1, 3, allow_control=False)

    def test_duplicate_control_rejected(self):
        # At most one control message per channel per round.
        with pytest.raises(ModelViolationError):
            SendPlan(control=(2, 2)).validate(1, 3, allow_control=True)

    def test_self_control_rejected(self):
        with pytest.raises(ModelViolationError):
            SendPlan(control=(1,)).validate(1, 3, allow_control=True)

    def test_empty_plan_valid_everywhere(self):
        NO_SEND.validate(1, 3, allow_control=False)
        NO_SEND.validate(1, 3, allow_control=True)


class TestRoundInbox:
    def test_empty(self):
        assert RoundInbox().empty

    def test_nonempty_with_control_only(self):
        assert not RoundInbox(control=frozenset({1})).empty


class TestSyncProcess:
    def test_pid_bounds(self):
        with pytest.raises(ConfigurationError):
            Echo(0, 3)
        with pytest.raises(ConfigurationError):
            Echo(4, 3)

    def test_minimum_system_size(self):
        with pytest.raises(ConfigurationError):
            Echo(1, 1)

    def test_decide_once(self):
        p = Echo(1, 3)
        p.decide(42)
        assert p.decided and p.decision == 42
        with pytest.raises(ModelViolationError):
            p.decide(42)

    def test_repr_states(self):
        p = Echo(2, 3)
        assert "running" in repr(p)
        p.decide(1)
        assert "decided=1" in repr(p)

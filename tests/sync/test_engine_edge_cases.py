"""Edge cases and failure injection for the round engines."""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelViolationError
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, Subset
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.extended import ExtendedSynchronousEngine
from repro.util.rng import RandomSource


class Probe(SyncProcess):
    """Configurable probe process."""

    def __init__(self, pid, n, plan_fn=None, compute_fn=None):
        super().__init__(pid, n)
        self.proposal = pid
        self.plan_fn = plan_fn or (lambda p, r: NO_SEND)
        self.compute_fn = compute_fn or (lambda p, r, inbox: None)
        self.seen: list[RoundInbox] = []

    def send_phase(self, round_no):
        return self.plan_fn(self, round_no)

    def compute_phase(self, round_no, inbox):
        self.seen.append(inbox)
        self.compute_fn(self, round_no, inbox)


def probes(n, plan_fn=None, compute_fn=None):
    return [Probe(pid, n, plan_fn, compute_fn) for pid in range(1, n + 1)]


class TestMinimalSystems:
    def test_two_processes_one_channel_each_way(self):
        procs = probes(
            2,
            plan_fn=lambda p, r: SendPlan(data={3 - p.pid: p.pid}),
            compute_fn=lambda p, r, inbox: p.decide(inbox.data.get(3 - p.pid)),
        )
        result = ExtendedSynchronousEngine(procs, t=0).run()
        assert result.decisions == {1: 2, 2: 1}

    def test_whole_system_crashes_round_one(self):
        procs = probes(3)
        sched = CrashSchedule(
            [CrashEvent(pid, 1, CrashPoint.BEFORE_SEND) for pid in (1, 2)]
        )
        result = ExtendedSynchronousEngine(procs, sched, t=2).run(max_rounds=3)
        assert result.crashed_pids == [1, 2]
        assert not result.completed  # p3 never decides


class TestPlanMisbehaviour:
    def test_send_after_decide_never_queried(self):
        # A decided process's send_phase must not be called again.
        calls = []

        def plan(p, r):
            calls.append((p.pid, r))
            return NO_SEND

        procs = probes(2, plan_fn=plan, compute_fn=lambda p, r, i: p.decide(0))
        ExtendedSynchronousEngine(procs, t=0).run()
        assert calls == [(1, 1), (2, 1)]

    def test_duplicate_control_rejected_at_runtime(self):
        procs = probes(3, plan_fn=lambda p, r: SendPlan(control=(2, 2)) if p.pid == 1 else NO_SEND)
        with pytest.raises(ModelViolationError):
            ExtendedSynchronousEngine(procs, t=0).run()

    def test_self_send_rejected_at_runtime(self):
        procs = probes(3, plan_fn=lambda p, r: SendPlan(data={p.pid: 1}))
        with pytest.raises(ModelViolationError):
            ExtendedSynchronousEngine(procs, t=0).run()


class TestControlOrderObservability:
    def test_prefix_respects_plan_order_not_id_order(self):
        # Control order (2, 4, 3): prefix 2 must deliver to p2 and p4 only.
        def plan(p, r):
            if p.pid == 1 and r == 1:
                return SendPlan(data={2: 0, 3: 0, 4: 0}, control=(2, 4, 3))
            return NO_SEND

        procs = probes(4, plan_fn=plan)
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=2)]
        )
        engine = ExtendedSynchronousEngine(procs, sched, t=1)
        engine.run(max_rounds=1)
        assert 1 in engine.procs[2].seen[0].control
        assert 1 in engine.procs[4].seen[0].control
        assert 1 not in engine.procs[3].seen[0].control

    def test_full_control_without_crash(self):
        def plan(p, r):
            if p.pid == 1:
                return SendPlan(data={2: 0, 3: 0}, control=(3, 2))
            return NO_SEND

        procs = probes(3, plan_fn=plan)
        engine = ExtendedSynchronousEngine(procs, t=0)
        engine.run(max_rounds=1)
        assert engine.procs[2].seen[0].control == frozenset({1})
        assert engine.procs[3].seen[0].control == frozenset({1})


class TestStatsUnderCrashes:
    def test_during_data_none_counts_zero_sent(self):
        # Messages that never escape the crashing sender are not "sent".
        def plan(p, r):
            return SendPlan(data={j: 0 for j in range(1, 4) if j != p.pid})

        procs = probes(3, plan_fn=plan)
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_policy=Subset.NONE)]
        )
        result = ExtendedSynchronousEngine(procs, sched, t=1).run(max_rounds=1)
        # p2 and p3 each sent 2; p1 sent 0.
        assert result.stats.data_sent == 4

    def test_after_send_counts_full(self):
        def plan(p, r):
            return SendPlan(data={j: 0 for j in range(1, 4) if j != p.pid})

        procs = probes(3, plan_fn=plan)
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.AFTER_SEND)])
        result = ExtendedSynchronousEngine(procs, sched, t=1).run(max_rounds=1)
        assert result.stats.data_sent == 6
        # ...but deliveries *to* the crashed p1 are dropped.
        assert result.stats.data_delivered == 4


class TestDeterminismAcrossEngines:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_deepcopy_then_run_equals_run(self, seed):
        """Engine state must be fully captured by process objects: running
        a deep copy of the initial processes yields identical results (the
        property the lower-bound explorer depends on)."""
        from repro.core.crw import CRWConsensus
        from repro.sync.adversary import RandomCrashes

        n = 5
        rng1, rng2 = RandomSource(seed), RandomSource(seed)
        sched1 = RandomCrashes(2).schedule(n, n - 1, rng1.spawn("adv"))
        sched2 = RandomCrashes(2).schedule(n, n - 1, rng2.spawn("adv"))
        procs1 = [CRWConsensus(pid, n, pid) for pid in range(1, n + 1)]
        procs2 = copy.deepcopy(procs1)
        r1 = ExtendedSynchronousEngine(procs1, sched1, t=n - 1, rng=rng1.spawn("e")).run()
        r2 = ExtendedSynchronousEngine(procs2, sched2, t=n - 1, rng=rng2.spawn("e")).run()
        assert r1.decisions == r2.decisions
        assert r1.decision_rounds == r2.decision_rounds
        assert r1.stats.bits_sent == r2.stats.bits_sent


class TestClassicEngineParity:
    def test_data_only_runs_identical_across_engines(self):
        # A control-free workload must behave identically on both engines.
        def plan(p, r):
            return SendPlan(data={j: (p.pid, r) for j in range(1, 4) if j != p.pid})

        def compute(p, r, inbox):
            if r == 2:
                p.decide(sorted(inbox.data))

        a = ClassicSynchronousEngine(probes(3, plan, compute), t=0).run()
        b = ExtendedSynchronousEngine(probes(3, plan, compute), t=0).run()
        assert a.decisions == b.decisions
        assert a.stats.data_sent == b.stats.data_sent

"""Tests for crash events, delivery resolution, and schedules."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sync.crash import (
    CrashEvent,
    CrashPoint,
    CrashSchedule,
    Prefix,
    Subset,
)
from repro.util.rng import RandomSource


class TestCrashEventValidation:
    def test_round_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(1, 0, CrashPoint.BEFORE_SEND)

    def test_pid_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(0, 1, CrashPoint.BEFORE_SEND)

    def test_negative_prefix_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=-1)


class TestResolution:
    PLANNED_DATA = [2, 3, 4, 5]
    PLANNED_CONTROL = (5, 4, 3, 2)

    def test_before_send_delivers_nothing(self):
        ev = CrashEvent(1, 1, CrashPoint.BEFORE_SEND)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.data_subset == frozenset()
        assert rc.control_prefix == 0

    def test_during_data_no_control(self):
        # Control strictly follows data: a data-step crash sends no commit.
        ev = CrashEvent(1, 1, CrashPoint.DURING_DATA, data_policy=Subset.ALL)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.data_subset == frozenset(self.PLANNED_DATA)
        assert rc.control_prefix == 0

    def test_during_control_delivers_all_data(self):
        # COMMIT step implies the data step completed.
        ev = CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=2)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.data_subset == frozenset(self.PLANNED_DATA)
        assert rc.control_prefix == 2

    def test_after_send_delivers_everything(self):
        ev = CrashEvent(1, 1, CrashPoint.AFTER_SEND)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.data_subset == frozenset(self.PLANNED_DATA)
        assert rc.control_prefix == len(self.PLANNED_CONTROL)

    def test_explicit_subset_intersected_with_plan(self):
        ev = CrashEvent(
            1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({3, 9})
        )
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.data_subset == frozenset({3})

    def test_explicit_prefix_clamped(self):
        ev = CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=99)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.control_prefix == len(self.PLANNED_CONTROL)

    def test_policy_none(self):
        ev = CrashEvent(1, 1, CrashPoint.DURING_DATA, data_policy=Subset.NONE)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        assert rc.data_subset == frozenset()

    def test_random_policy_needs_rng(self):
        ev = CrashEvent(1, 1, CrashPoint.DURING_DATA, data_policy=Subset.RANDOM)
        with pytest.raises(ConfigurationError):
            ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)
        ev2 = CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_policy=Prefix.RANDOM)
        with pytest.raises(ConfigurationError):
            ev2.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, None)

    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_subset_is_subset_of_plan(self, seed):
        ev = CrashEvent(1, 1, CrashPoint.DURING_DATA, data_policy=Subset.RANDOM)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, RandomSource(seed))
        assert rc.data_subset <= frozenset(self.PLANNED_DATA)

    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_prefix_in_range(self, seed):
        ev = CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_policy=Prefix.RANDOM)
        rc = ev.resolve(self.PLANNED_DATA, self.PLANNED_CONTROL, RandomSource(seed))
        assert 0 <= rc.control_prefix <= len(self.PLANNED_CONTROL)


class TestCrashSchedule:
    def test_one_crash_per_process(self):
        ev = CrashEvent(1, 1, CrashPoint.BEFORE_SEND)
        with pytest.raises(ConfigurationError):
            CrashSchedule([ev, CrashEvent(1, 2, CrashPoint.BEFORE_SEND)])

    def test_crashes_in_round_sorted(self):
        sched = CrashSchedule(
            [
                CrashEvent(3, 1, CrashPoint.BEFORE_SEND),
                CrashEvent(1, 1, CrashPoint.BEFORE_SEND),
                CrashEvent(2, 2, CrashPoint.BEFORE_SEND),
            ]
        )
        assert [e.pid for e in sched.crashes_in_round(1)] == [1, 3]
        assert sched.crash_count == 3

    def test_validate_against_t(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.BEFORE_SEND)])
        sched.validate(n=3, t=1)
        with pytest.raises(ConfigurationError):
            sched.validate(n=3, t=0)

    def test_validate_against_n(self):
        sched = CrashSchedule([CrashEvent(5, 1, CrashPoint.BEFORE_SEND)])
        with pytest.raises(ConfigurationError):
            sched.validate(n=3, t=2)

    def test_none_schedule(self):
        assert CrashSchedule.none().crash_count == 0

    def test_event_for(self):
        ev = CrashEvent(2, 1, CrashPoint.BEFORE_SEND)
        sched = CrashSchedule([ev])
        assert sched.event_for(2) is ev
        assert sched.event_for(1) is None

    def test_repr_smoke(self):
        assert "failure-free" in repr(CrashSchedule.none())

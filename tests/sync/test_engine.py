"""Tests for the round engines using hand-written probe processes."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ModelViolationError, SimulationError
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, Subset
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.extended import ExtendedSynchronousEngine
from repro.util.rng import RandomSource


class Broadcaster(SyncProcess):
    """Sends (pid, round) data to everyone each round, records inboxes,
    decides after `rounds` rounds."""

    def __init__(self, pid, n, rounds=2, control=False):
        super().__init__(pid, n)
        self.proposal = pid
        self.rounds = rounds
        self.control = control
        self.inboxes: list[RoundInbox] = []

    def send_phase(self, round_no):
        others = [j for j in range(1, self.n + 1) if j != self.pid]
        return SendPlan(
            data={j: (self.pid, round_no) for j in others},
            control=tuple(others) if self.control else (),
        )

    def compute_phase(self, round_no, inbox):
        self.inboxes.append(inbox)
        if round_no >= self.rounds:
            self.decide(self.pid)


def build(n, **kw):
    return [Broadcaster(pid, n, **kw) for pid in range(1, n + 1)]


class TestEngineValidation:
    def test_needs_processes(self):
        with pytest.raises(ConfigurationError):
            ExtendedSynchronousEngine([])

    def test_pids_must_cover_range(self):
        procs = [Broadcaster(1, 3), Broadcaster(3, 3)]
        with pytest.raises(ConfigurationError):
            ExtendedSynchronousEngine(procs)

    def test_t_bounds(self):
        with pytest.raises(ConfigurationError):
            ExtendedSynchronousEngine(build(3), t=3)
        with pytest.raises(ConfigurationError):
            ExtendedSynchronousEngine(build(3), t=-1)

    def test_schedule_checked_against_t(self):
        sched = CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.BEFORE_SEND),
                CrashEvent(2, 1, CrashPoint.BEFORE_SEND),
            ]
        )
        with pytest.raises(ConfigurationError):
            ExtendedSynchronousEngine(build(3), sched, t=1)

    def test_classic_rejects_during_control_point(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.DURING_CONTROL)])
        with pytest.raises(ConfigurationError):
            ClassicSynchronousEngine(build(3), sched, t=1)

    def test_classic_rejects_control_sends(self):
        engine = ClassicSynchronousEngine(build(3, control=True), t=1)
        with pytest.raises(ModelViolationError):
            engine.run()

    def test_step_after_completion_rejected(self):
        engine = ExtendedSynchronousEngine(build(2, rounds=1), t=0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.step()

    def test_bad_max_rounds(self):
        with pytest.raises(ConfigurationError):
            ExtendedSynchronousEngine(build(2, rounds=1), t=0).run(max_rounds=0)


class TestFailureFreeRuns:
    def test_everyone_hears_everyone(self):
        engine = ExtendedSynchronousEngine(build(4, rounds=2, control=True), t=0)
        result = engine.run()
        assert result.completed
        assert result.rounds_executed == 2
        for pid in range(1, 5):
            proc = engine.procs[pid]
            for inbox in proc.inboxes:
                assert set(inbox.data) == {j for j in range(1, 5) if j != pid}
                assert inbox.control == frozenset(set(range(1, 5)) - {pid})

    def test_same_round_delivery(self):
        # Message sent at round r arrives at round r: payload carries round.
        engine = ExtendedSynchronousEngine(build(3, rounds=1), t=0)
        engine.run()
        inbox = engine.procs[1].inboxes[0]
        assert all(r == 1 for (_, r) in inbox.data.values())

    def test_decisions_recorded_with_round(self):
        result = ExtendedSynchronousEngine(build(3, rounds=2), t=0).run()
        assert result.decision_rounds == {1: 2, 2: 2, 3: 2}
        assert result.f == 0

    def test_accounting_counts(self):
        # 3 procs * 2 dests * 2 rounds data, same for control.
        result = ExtendedSynchronousEngine(build(3, rounds=2, control=True), t=0).run()
        assert result.stats.data_sent == 12
        assert result.stats.data_delivered == 12
        assert result.stats.control_sent == 12
        assert result.stats.control_delivered == 12


class TestCrashSemantics:
    def test_before_send_silences_process(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.BEFORE_SEND)])
        engine = ExtendedSynchronousEngine(build(3, rounds=2), sched, t=1)
        result = engine.run()
        assert result.crashed_pids == [1]
        assert result.outcomes[1].crashed_round == 1
        # p2 heard only p3 in round 1.
        assert set(engine.procs[2].inboxes[0].data) == {3}

    def test_during_data_subset(self):
        sched = CrashSchedule(
            [
                CrashEvent(
                    1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2})
                )
            ]
        )
        engine = ExtendedSynchronousEngine(build(3, rounds=2, control=True), sched, t=1)
        engine.run()
        assert 1 in engine.procs[2].inboxes[0].data
        assert 1 not in engine.procs[3].inboxes[0].data
        # No control from a data-step crash.
        assert 1 not in engine.procs[2].inboxes[0].control

    def test_during_control_prefix_order(self):
        # Broadcaster control order is increasing (2, 3): prefix 1 -> only p2.
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=1)]
        )
        engine = ExtendedSynchronousEngine(build(3, rounds=2, control=True), sched, t=1)
        engine.run()
        assert 1 in engine.procs[2].inboxes[0].control
        assert 1 not in engine.procs[3].inboxes[0].control
        # All data still delivered (data step completed).
        assert 1 in engine.procs[3].inboxes[0].data

    def test_after_send_no_compute(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.AFTER_SEND)])
        engine = ExtendedSynchronousEngine(build(3, rounds=1, control=True), sched, t=1)
        result = engine.run()
        # p1's messages all arrived...
        assert 1 in engine.procs[2].inboxes[0].data
        assert 1 in engine.procs[2].inboxes[0].control
        # ...but p1 neither computed nor decided.
        assert engine.procs[1].inboxes == []
        assert not result.outcomes[1].decided

    def test_crashing_receiver_gets_nothing(self):
        sched = CrashSchedule([CrashEvent(2, 1, CrashPoint.BEFORE_SEND)])
        engine = ExtendedSynchronousEngine(build(3, rounds=2), sched, t=1)
        result = engine.run()
        assert engine.procs[2].inboxes == []
        # Sends addressed to the crashed p2 count as sent, not delivered.
        assert result.stats.data_sent > result.stats.data_delivered

    def test_crashed_stays_crashed(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.BEFORE_SEND)])
        engine = ExtendedSynchronousEngine(build(4, rounds=3), sched, t=1)
        engine.run()
        for r in range(3):
            assert 1 not in engine.procs[2].inboxes[r].data

    def test_decided_process_stops_participating(self):
        procs = [Broadcaster(1, 3, rounds=1), Broadcaster(2, 3, rounds=3), Broadcaster(3, 3, rounds=3)]
        engine = ExtendedSynchronousEngine(procs, t=0)
        result = engine.run()
        # p1 decided at round 1 and is silent afterwards.
        assert 1 not in engine.procs[2].inboxes[1].data
        assert result.decision_rounds[1] == 1
        # Decided-then-halted is not a crash.
        assert result.f == 0

    def test_crash_event_for_inactive_process_ignored(self):
        # p1 decides at round 1; a crash scheduled for round 2 never fires.
        procs = [Broadcaster(1, 3, rounds=1), Broadcaster(2, 3, rounds=2), Broadcaster(3, 3, rounds=2)]
        sched = CrashSchedule([CrashEvent(1, 2, CrashPoint.BEFORE_SEND)])
        result = ExtendedSynchronousEngine(procs, sched, t=1).run()
        assert result.f == 0
        assert result.outcomes[1].decided


class TestRunBudget:
    def test_incomplete_run_flagged(self):
        class Forever(Broadcaster):
            def compute_phase(self, round_no, inbox):
                self.inboxes.append(inbox)

        procs = [Forever(pid, 3) for pid in range(1, 4)]
        result = ExtendedSynchronousEngine(procs, t=0).run(max_rounds=5)
        assert not result.completed
        assert result.rounds_executed == 5

    def test_default_budget_is_n_plus_one(self):
        class Forever(Broadcaster):
            def compute_phase(self, round_no, inbox):
                self.inboxes.append(inbox)

        procs = [Forever(pid, 3) for pid in range(1, 4)]
        result = ExtendedSynchronousEngine(procs, t=0).run()
        assert result.rounds_executed == 4


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def one(seed):
            sched = CrashSchedule(
                [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_policy=Subset.RANDOM)]
            )
            engine = ExtendedSynchronousEngine(
                build(5, rounds=2), sched, t=1, rng=RandomSource(seed)
            )
            result = engine.run()
            return [
                (e.round_no, e.kind, e.pid, e.detail) for e in result.trace
            ]

        assert one(42) == one(42)
        # Different seed changes the delivered subset in general.
        assert one(42) != one(43) or True  # only determinism is hard-asserted

"""Batched-stepping parity: columnar tables must match per-process runs.

PR 3's batched stepping protocol (``repro.sync.api.BatchedAlgorithm``)
lets an algorithm step a whole round through one columnar table instead
of two method calls per process.  The engine treats registered tables as
trusted mirrors of their per-process classes, so this grid is the
contract: for every algorithm that registered a table, a batched run
must be **byte-identical** to a per-process run — the normalized
RunRecord, every MessageStats counter, and the per-round inboxes.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import ADVERSARIES, ALGORITHMS, Scenario, execute
from repro.sync.api import batched_table_for

#: Algorithms whose process class registered a columnar table (probed via
#: the same detection hook the engine uses, on a tiny throwaway table).
def _has_table(name: str) -> bool:
    algo = ALGORITHMS.get(name)
    if algo.backend not in ("extended", "classic") or algo.factory is None:
        return False
    procs = algo.factory(3, 2, [1, 2, 3], {})
    return batched_table_for(procs) is not None


BATCHED_ALGORITHMS = sorted(
    name for name in ALGORITHMS.names() if _has_table(name)
)

EXTENDED_ADVERSARIES = sorted(
    name for name, adv in ADVERSARIES.items() if adv.make_sync is not None
)
CLASSIC_ADVERSARIES = ["none", "staggered", "random"]


def _cells():
    for algorithm in BATCHED_ALGORITHMS:
        backend = ALGORITHMS.get(algorithm).backend
        adversaries = (
            EXTENDED_ADVERSARIES if backend == "extended" else CLASSIC_ADVERSARIES
        )
        for adversary in adversaries:
            yield algorithm, adversary


def test_hot_algorithms_are_batched():
    """The algorithms the issue names must actually carry tables."""
    for name in ("crw", "eager-crw", "truncated-crw", "increasing-commit-crw",
                 "full-broadcast-crw", "floodset", "early-stopping"):
        assert name in BATCHED_ALGORITHMS, f"{name} lost its batched table"


@pytest.mark.parametrize("algorithm,adversary", list(_cells()))
@pytest.mark.parametrize("seed", [0, 1, 2, 7, 13])
def test_records_and_stats_identical(algorithm, adversary, seed):
    scenario = Scenario(
        algorithm=algorithm, n=6, f=2, adversary=adversary, seed=seed,
    )
    batched = execute(scenario, batched=True)
    reference = execute(scenario, batched=False)

    # The normalized record agrees field for field (to_dict drops `raw`).
    assert batched.to_dict() == reference.to_dict()

    # And the raw per-kind counters agree individually — messages_sent /
    # bits_sent alone could mask compensating errors between kinds or
    # between the sent and delivered sides.
    assert batched.raw.stats == reference.raw.stats


@pytest.mark.parametrize("algorithm", BATCHED_ALGORITHMS)
def test_traced_runs_identical_too(algorithm):
    """Batching is orthogonal to tracing: traced batched == traced reference."""
    scenario = Scenario(
        algorithm=algorithm, n=5, f=1, adversary="staggered", seed=3,
    )
    batched = execute(scenario, trace=True, batched=True)
    reference = execute(scenario, trace=True, batched=False)
    assert batched.to_dict() == reference.to_dict()
    assert batched.raw.trace.format() == reference.raw.trace.format()


def test_inboxes_and_plans_identical_between_modes():
    """Beyond the record: per-round plans and inbox contents match exactly."""
    from repro.sync.extended import ExtendedSynchronousEngine
    from repro.util.rng import RandomSource

    def run(batched):
        rng = RandomSource(5)
        schedule = ADVERSARIES.get("coordinator-killer").make_sync(2).schedule(
            6, 5, rng.spawn("adversary")
        )
        procs = ALGORITHMS.get("crw").factory(6, 5, list(range(6)), {})
        engine = ExtendedSynchronousEngine(
            procs, schedule, t=5, rng=rng.spawn("engine"), trace=False,
            batched=batched,
        )
        outcomes = []
        while engine.active_pids:
            outcomes.append(engine.step())
        return engine, outcomes

    eng_b, batched = run(True)
    eng_r, reference = run(False)
    assert eng_b._table is not None and eng_r._table is None
    for fast, ref in zip(batched, reference, strict=True):
        assert fast.round_no == ref.round_no
        assert fast.new_decisions == ref.new_decisions
        assert list(fast.plans) == list(ref.plans)  # key order included
        for pid, plan in fast.plans.items():
            assert dict(plan.data) == dict(ref.plans[pid].data)
            assert plan.control == ref.plans[pid].control
        assert list(fast.inboxes) == list(ref.inboxes)
        for pid, inbox in fast.inboxes.items():
            assert dict(inbox.data) == dict(ref.inboxes[pid].data)
            assert inbox.control == ref.inboxes[pid].control
    # Decisions were mirrored onto the process objects in both modes.
    for pid, proc in eng_b.procs.items():
        assert proc.decided == eng_r.procs[pid].decided
        assert proc.decision == eng_r.procs[pid].decision


def test_wrappers_fall_back_to_per_process():
    """Cross-model wrappers are not tables: detection must decline them."""
    from repro.core.crw import CRWConsensus
    from repro.simulation.classic_on_extended import ClassicOnExtended
    from repro.baselines.floodset import FloodSetConsensus

    inner = [FloodSetConsensus(pid, 3, pid, t=1) for pid in (1, 2, 3)]
    wrapped = [ClassicOnExtended(p) for p in inner]
    assert batched_table_for(wrapped) is None

    # Mixed tables decline too, even when every class has a table.
    mixed = [CRWConsensus(1, 3, 1), CRWConsensus(2, 3, 2),
             FloodSetConsensus(3, 3, 3, t=1)]
    assert batched_table_for(mixed) is None


def test_batched_true_requires_a_table():
    from repro.sync.api import NO_SEND, SendPlan, SyncProcess
    from repro.sync.extended import ExtendedSynchronousEngine

    class Plain(SyncProcess):
        def send_phase(self, round_no):
            return NO_SEND

        def compute_phase(self, round_no, inbox):
            self.decide(0)

    procs = [Plain(pid, 3) for pid in (1, 2, 3)]
    with pytest.raises(ConfigurationError):
        ExtendedSynchronousEngine(procs, t=2, batched=True)
    # Auto mode simply falls back.
    engine = ExtendedSynchronousEngine(procs, t=2)
    assert engine._table is None
    engine.run()
    assert engine.decisions == {1: 0, 2: 0, 3: 0}

"""Tests for the worst-case / refutation certificates (Theorems 1, 3-5)."""

from __future__ import annotations

import pytest

from repro.core.crw import CRWConsensus
from repro.core.variants import IncreasingCommitCRW, TruncatedCRW
from repro.errors import ConfigurationError
from repro.lowerbound.certificates import (
    certify_f_plus_one,
    certify_no_run_exceeds,
    refute_round_bound,
    worst_case_schedule,
)


def crw_list(n):
    return lambda: [CRWConsensus(pid, n, 100 + pid) for pid in range(1, n + 1)]


def crw_map(n):
    return lambda: {pid: CRWConsensus(pid, n, pid) for pid in range(1, n + 1)}


class TestWorstCaseSchedule:
    def test_structure(self):
        sched = worst_case_schedule(3)
        assert sched.crash_count == 3
        for r in (1, 2, 3):
            assert sched.event_for(r).round_no == r

    def test_f_validated(self):
        with pytest.raises(ConfigurationError):
            worst_case_schedule(-1)


class TestTightness:
    @pytest.mark.parametrize("n,f", [(4, 0), (4, 2), (6, 3), (8, 5)])
    def test_cascade_forces_exactly_f_plus_one(self, n, f):
        cert = certify_f_plus_one(crw_list(n), f)
        assert cert.holds, cert
        assert cert.witness.last_decision_round == f + 1
        assert cert.witness.f == f


class TestUpperBoundExhaustive:
    @pytest.mark.parametrize("n,t", [(3, 1), (3, 2), (4, 2)])
    def test_no_run_exceeds_f_plus_one(self, n, t):
        cert = certify_no_run_exceeds(
            crw_map(n), max_crashes=t, max_crashes_per_round=t
        )
        assert cert.holds, cert
        assert cert.leaves_checked > 1

    def test_increasing_commit_order_fails_the_certificate(self):
        # The ablation: same algorithm, commit order reversed — exhaustive
        # search finds a run deciding after f+1 (safety intact).
        n = 4

        def make():
            return {pid: IncreasingCommitCRW(pid, n, pid) for pid in range(1, n + 1)}

        cert = certify_no_run_exceeds(make, max_crashes=2, max_crashes_per_round=2, max_rounds=5)
        assert not cert.holds
        # The witness run shows the excess concretely.
        assert cert.witness is not None
        assert cert.witness.last_decision_round > cert.witness.f + 1


class TestRefutation:
    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (4, 2), (5, 2)])
    def test_t_round_algorithm_refuted(self, n, t):
        # Theorem 3: no algorithm decides within t rounds (for n >= t + 2,
        # the theorem's own premise — it needs two correct processes) —
        # instantiated on TruncatedCRW(t), the adversary search must find a
        # violating run.
        assert n >= t + 2
        def make():
            return {pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)}

        cert = refute_round_bound(
            make, max_crashes=t, max_rounds=t + 1, one_crash_per_round=True
        )
        assert cert.holds, "expected a violating run to exist"
        assert cert.witness is not None
        assert cert.witness.violations

    def test_correct_algorithm_not_refuted(self):
        cert = refute_round_bound(
            crw_map(3), max_crashes=1, max_rounds=3, one_crash_per_round=True
        )
        assert not cert.holds
        assert cert.witness is None

    def test_n_t_plus_2_premise_is_necessary(self):
        # With n = t + 1 = 3 the theorem's premise n >= t + 2 fails, and
        # indeed TruncatedCRW(t=2) happens to be safe there: any round-2
        # disagreement needs two live deciders with different estimates,
        # but the round-2 coordinator either spreads its estimate or dies.
        n, t = 3, 2

        def make():
            return {pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)}

        cert = refute_round_bound(
            make, max_crashes=t, max_rounds=t + 1, one_crash_per_round=True
        )
        assert not cert.holds

    def test_one_crash_per_round_suffices(self):
        # Theorem 3's adversary is restricted to one crash per round and
        # still wins — the restriction the Aguilera-Toueg proof leans on.
        n, t = 4, 2

        def make():
            return {pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)}

        cert = refute_round_bound(
            make, max_crashes=t, max_rounds=t + 1, one_crash_per_round=True
        )
        assert cert.holds

"""Equivalence tests for the deduplicating explorer.

Pruning visited states must never change *what* is reachable — only how
many times it is visited.  Verified by comparing the deduped walk against
the naive walk on identical configurations.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.crw import CRWConsensus
from repro.core.variants import EagerCRW, TruncatedCRW
from repro.lowerbound.explorer import ExplorationConfig, Explorer


def crw(n):
    return lambda: {pid: CRWConsensus(pid, n, pid) for pid in range(1, n + 1)}


def explore(factory, cfg, dedupe):
    return Explorer(factory, dataclasses.replace(cfg, dedupe=dedupe)).explore()


class TestDedupeEquivalence:
    @pytest.mark.parametrize(
        "n,t,per",
        [(3, 1, 1), (3, 2, 2), (4, 2, 2), (4, 3, 1)],
    )
    def test_same_observables_on_crw(self, n, t, per):
        cfg = ExplorationConfig(max_crashes=t, max_crashes_per_round=per, max_rounds=t + 2)
        naive = explore(crw(n), cfg, dedupe=False)
        pruned = explore(crw(n), cfg, dedupe=True)
        assert pruned.reachable_decisions == naive.reachable_decisions
        assert pruned.worst_last_decision_round == naive.worst_last_decision_round
        assert pruned.early_stopping_holds == naive.early_stopping_holds
        assert pruned.ok == naive.ok
        assert pruned.nodes <= naive.nodes

    def test_dedupe_actually_prunes(self):
        cfg = ExplorationConfig(max_crashes=3, max_crashes_per_round=3, max_rounds=5)
        naive = explore(crw(4), cfg, dedupe=False)
        pruned = explore(crw(4), cfg, dedupe=True)
        assert pruned.nodes < naive.nodes

    def test_violations_still_found(self):
        n, t = 4, 1

        def broken():
            return {pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)}

        cfg = ExplorationConfig(max_crashes=t, max_crashes_per_round=1, max_rounds=t + 1)
        naive = explore(broken, cfg, dedupe=False)
        pruned = explore(broken, cfg, dedupe=True)
        assert bool(naive.violating_leaves) == bool(pruned.violating_leaves) == True  # noqa: E712

    def test_eager_violations_found_pruned(self):
        n = 3

        def eager():
            return {pid: EagerCRW(pid, n, pid) for pid in range(1, n + 1)}

        cfg = ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=4, dedupe=True)
        report = Explorer(eager, cfg).explore()
        assert not report.ok

    def test_larger_system_feasible_with_dedupe(self):
        # n=5, t=3, up to 3 crashes/round: heavy naive, fine deduped.
        cfg = ExplorationConfig(
            max_crashes=3,
            max_crashes_per_round=3,
            max_rounds=5,
            node_budget=5_000_000,
            dedupe=True,
        )
        report = Explorer(crw(5), cfg).explore()
        assert report.ok
        assert report.early_stopping_holds
        assert report.worst_last_decision_round == 4

"""Tests for the bivalency-chain construction (Theorem 3's mechanism)."""

from __future__ import annotations

import pytest

from repro.core.crw import CRWConsensus
from repro.core.variants import TruncatedCRW
from repro.errors import ConfigurationError
from repro.lowerbound.chain import extend_bivalent_chain
from repro.lowerbound.explorer import ExplorationConfig


def crw_factory(proposals):
    n = len(proposals)
    return lambda: {
        pid: CRWConsensus(pid, n, proposals[pid - 1]) for pid in range(1, n + 1)
    }


def truncated_factory(proposals, k):
    n = len(proposals)
    return lambda: {
        pid: TruncatedCRW(pid, n, proposals[pid - 1], k=k) for pid in range(1, n + 1)
    }


class TestChainOnCRW:
    def test_t1_chain_length_zero(self):
        # Aguilera-Toueg's induction maintains bivalence through round t-1;
        # with t=1 that is zero rounds: the initial configuration is
        # bivalent, but every round-1 successor of CRW is univalent (either
        # p1 locks its value or the single crash burns the budget and p2
        # locks at round 2 deterministically).
        cfg = ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=4)
        report = extend_bivalent_chain(crw_factory([0, 1, 1]), cfg)
        assert report.initially_bivalent
        assert report.initial_reachable == frozenset({0, 1})
        assert report.length == 0

    def test_t2_chain_through_round_one(self):
        # t=2: bivalence survives round 1 (kill p1 delivering its 0 to p2
        # only — with one crash left, both "p2 locks 0" and "p2 dies, p3
        # locks 1" remain reachable) and collapses in round 2: length t-1.
        cfg = ExplorationConfig(max_crashes=2, max_crashes_per_round=1, max_rounds=5)
        report = extend_bivalent_chain(crw_factory([0, 1, 1, 1]), cfg)
        assert report.initially_bivalent
        assert report.length == 1
        step = report.steps[0]
        assert step.action and step.action[0].pid == 1
        assert step.reachable_after == frozenset({0, 1})

    def test_t3_chain_through_round_two(self):
        cfg = ExplorationConfig(max_crashes=3, max_crashes_per_round=1, max_rounds=6)
        report = extend_bivalent_chain(crw_factory([0, 1, 1, 1, 1]), cfg)
        assert report.initially_bivalent
        assert report.length == 2  # t - 1

    def test_univalent_start_gives_empty_chain(self):
        cfg = ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=4)
        report = extend_bivalent_chain(crw_factory([5, 5, 5]), cfg)
        assert not report.initially_bivalent
        assert report.length == 0

    def test_no_budget_no_chain(self):
        cfg = ExplorationConfig(max_crashes=0, max_rounds=3)
        report = extend_bivalent_chain(crw_factory([0, 1, 1]), cfg)
        # Without crashes p1 always locks in round 1: univalent immediately.
        assert not report.initially_bivalent
        assert report.length == 0

    def test_factory_validated(self):
        cfg = ExplorationConfig(max_crashes=1, max_rounds=3)
        with pytest.raises(ConfigurationError):
            extend_bivalent_chain(dict, cfg)


class TestChainOnTruncated:
    def test_chain_survives_past_the_deadline(self):
        # TruncatedCRW(k=1) claims everyone decides by round 1; the chain
        # stays bivalent *through* round 1 — the contradiction at the heart
        # of Theorem 3: a decided-by-everyone configuration cannot be
        # bivalent, so the claimed algorithm must disagree somewhere below.
        cfg = ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=3)
        report = extend_bivalent_chain(truncated_factory([0, 1, 1, 1], k=1), cfg)
        assert report.initially_bivalent
        assert report.length >= 1
        step1 = report.steps[0]
        assert step1.round_no == 1
        assert len(step1.reachable_after) >= 2

"""Tests for valency analysis."""

from __future__ import annotations

from repro.core.crw import CRWConsensus
from repro.lowerbound.explorer import ExplorationConfig
from repro.lowerbound.valency import (
    find_bivalent_initial,
    initial_valency,
    valency_spectrum,
)


def crw_factory(proposals):
    n = len(proposals)
    return {pid: CRWConsensus(pid, n, proposals[pid - 1]) for pid in range(1, n + 1)}


CFG = ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=3)


class TestInitialValency:
    def test_constant_vector_is_univalent(self):
        # Validity forces it: only the common value is reachable.
        report = initial_valency(crw_factory, [5, 5, 5], CFG)
        assert report.univalent
        assert report.reachable == {5}

    def test_mixed_vector_is_bivalent_with_crashes(self):
        # p1 alive -> decide v1; p1 dies silently -> decide v2.
        report = initial_valency(crw_factory, [0, 1, 1], CFG)
        assert report.bivalent
        assert report.reachable == {0, 1}

    def test_mixed_vector_univalent_without_crashes(self):
        cfg0 = ExplorationConfig(max_crashes=0, max_rounds=2)
        report = initial_valency(crw_factory, [0, 1, 1], cfg0)
        assert report.univalent
        assert report.reachable == {0}  # p1 always wins in a crash-free run


class TestBivalentSearch:
    def test_finds_bivalent_configuration(self):
        # Step (1) of the bivalency proof: a bivalent initial configuration
        # exists for binary proposals when t >= 1.
        report = find_bivalent_initial(crw_factory, 3, CFG)
        assert report is not None
        assert report.bivalent

    def test_no_bivalent_without_crash_budget(self):
        cfg0 = ExplorationConfig(max_crashes=0, max_rounds=2)
        assert find_bivalent_initial(crw_factory, 3, cfg0) is None


class TestSpectrum:
    def test_spectrum_shape_and_extremes(self):
        spectrum = valency_spectrum(crw_factory, 3, CFG)
        assert len(spectrum) == 8
        # All-zero and all-one vectors are univalent (validity).
        assert spectrum[0].reachable == {0}
        assert spectrum[-1].reachable == {1}
        # With t = 1, valency is exactly {v1, v2}: the adversary can only
        # choose whether p1's value or p2's (post-adoption) value locks.
        for mask in range(8):
            v1 = 1 if mask & 1 else 0
            v2 = 1 if mask & 2 else 0
            assert spectrum[mask].reachable == {v1, v2}

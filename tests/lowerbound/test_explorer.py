"""Tests for the exhaustive branching adversary."""

from __future__ import annotations

import pytest

from repro.core.crw import CRWConsensus
from repro.core.variants import TruncatedCRW
from repro.errors import ConfigurationError, ExplorationBudgetExceeded
from repro.lowerbound.explorer import ExplorationConfig, Explorer


def crw_factory(n, proposals=None):
    proposals = proposals or list(range(1, n + 1))

    def make():
        return {pid: CRWConsensus(pid, n, proposals[pid - 1]) for pid in range(1, n + 1)}

    return make


class TestConfigValidation:
    def test_bad_budgets(self):
        with pytest.raises(ConfigurationError):
            ExplorationConfig(max_crashes=-1)
        with pytest.raises(ConfigurationError):
            ExplorationConfig(max_crashes=1, max_crashes_per_round=0)
        with pytest.raises(ConfigurationError):
            ExplorationConfig(max_crashes=1, max_rounds=0)

    def test_factory_validated(self):
        with pytest.raises(ConfigurationError):
            Explorer(dict, ExplorationConfig(max_crashes=1))


class TestCrashFreeTree:
    def test_single_leaf_without_crash_budget(self):
        report = Explorer(
            crw_factory(3), ExplorationConfig(max_crashes=0, max_rounds=4)
        ).explore()
        assert report.leaves == 1
        assert report.ok
        assert report.worst_last_decision_round == 1
        assert report.reachable_decisions == {1}  # p1's proposal


class TestCRWTree:
    @pytest.mark.parametrize("n,t", [(3, 1), (3, 2), (4, 1)])
    def test_exhaustive_uniform_consensus(self, n, t):
        report = Explorer(
            crw_factory(n),
            ExplorationConfig(max_crashes=t, max_crashes_per_round=t, max_rounds=t + 2),
        ).explore()
        assert report.ok, report.violating_leaves[:1]
        assert report.early_stopping_holds
        # Tightness: some run reaches f+1 = t+1 (cascade is in the tree).
        assert report.worst_last_decision_round == t + 1

    def test_reachable_decisions_are_proposals_prefix(self):
        # With t=1 only p1 or p2's value can ever be decided: the first
        # coordinator to complete line 4 is p1 or (if p1 crashed) p2 —
        # except p1 may hand its value to p2 first, so values = {v1, v2}.
        report = Explorer(
            crw_factory(3), ExplorationConfig(max_crashes=1, max_rounds=3)
        ).explore()
        assert report.reachable_decisions == {1, 2}

    def test_one_crash_per_round_smaller_tree(self):
        wide = Explorer(
            crw_factory(3),
            ExplorationConfig(max_crashes=2, max_crashes_per_round=2, max_rounds=4),
        ).explore()
        narrow = Explorer(
            crw_factory(3),
            ExplorationConfig(max_crashes=2, max_crashes_per_round=1, max_rounds=4),
        ).explore()
        assert narrow.leaves < wide.leaves
        assert narrow.ok and wide.ok

    def test_budget_enforced(self):
        with pytest.raises(ExplorationBudgetExceeded):
            Explorer(
                crw_factory(4),
                ExplorationConfig(max_crashes=3, max_crashes_per_round=3, max_rounds=5, node_budget=50),
            ).explore()

    def test_certificates_replayable(self):
        # Take any violating leaf of a broken algorithm and replay its
        # schedule on a fresh engine: same violation must reproduce.
        from repro.sync.crash import CrashSchedule
        from repro.sync.extended import ExtendedSynchronousEngine
        from repro.sync.spec import check_consensus

        n, k = 3, 1

        def make():
            return {pid: TruncatedCRW(pid, n, pid, k=k) for pid in range(1, n + 1)}

        report = Explorer(
            make, ExplorationConfig(max_crashes=1, max_rounds=3)
        ).explore()
        assert report.violating_leaves
        leaf = report.violating_leaves[0]
        procs = list(make().values())
        engine = ExtendedSynchronousEngine(
            procs, CrashSchedule(leaf.schedule), t=1
        )
        result = engine.run()
        replay = check_consensus(result)
        assert replay.violations


class TestBrokenAlgorithmsAreCaught:
    def test_truncated_at_t_violates(self):
        n, t = 3, 1

        def make():
            return {pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)}

        report = Explorer(
            make, ExplorationConfig(max_crashes=t, max_rounds=t + 2)
        ).explore()
        assert not report.ok
        assert any(
            "agreement" in v for leaf in report.violating_leaves for v in leaf.violations
        )

    def test_truncated_at_t_plus_one_is_safe(self):
        n, t = 3, 1

        def make():
            return {pid: TruncatedCRW(pid, n, pid, k=t + 1) for pid in range(1, n + 1)}

        report = Explorer(
            make, ExplorationConfig(max_crashes=t, max_rounds=t + 2)
        ).explore()
        assert report.ok

    def test_eager_variant_violates(self):
        from repro.core.variants import EagerCRW

        n = 3

        def make():
            return {pid: EagerCRW(pid, n, pid) for pid in range(1, n + 1)}

        report = Explorer(
            make, ExplorationConfig(max_crashes=1, max_rounds=4)
        ).explore()
        assert not report.ok

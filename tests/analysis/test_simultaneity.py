"""Tests for decision-skew analysis."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_crw, run_crw

from repro.analysis.simultaneity import decision_skew, skew_profile
from repro.sync.adversary import (
    CommitSplitter,
    CoordinatorKiller,
    NoCrash,
    RandomCrashes,
)
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule


class TestDecisionSkew:
    def test_failure_free_is_simultaneous(self):
        assert decision_skew(run_crw(6)) == 0

    def test_silent_cascade_is_simultaneous(self):
        sched = CrashSchedule(
            [
                CrashEvent(r, r, CrashPoint.DURING_DATA, data_subset=frozenset())
                for r in (1, 2)
            ]
        )
        assert decision_skew(run_crw(6, sched, t=2)) == 0

    def test_commit_split_creates_skew(self):
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=2)]
        )
        result = run_crw(6, sched, t=1)
        assert decision_skew(result) == 1

    def test_no_decisions_zero_skew(self):
        # Truncated before anyone decides.
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset())]
        )
        result = run_crw(3, sched, t=1, max_rounds=1)
        assert result.decisions == {}
        assert decision_skew(result) == 0

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_skew_bounded_by_f(self, data):
        """Skew <= f: decisions span from the first completed line 4 to
        round f+1, and a completed line 4 with no earlier crash ends the
        run immediately."""
        n = data.draw(st.integers(2, 7), label="n")
        f = data.draw(st.integers(0, n - 1), label="f")
        events = []
        for r in range(1, f + 1):
            point = data.draw(
                st.sampled_from(
                    [
                        CrashPoint.BEFORE_SEND,
                        CrashPoint.DURING_DATA,
                        CrashPoint.DURING_CONTROL,
                        CrashPoint.AFTER_SEND,
                    ]
                ),
                label=f"pt{r}",
            )
            subset = frozenset(
                data.draw(
                    st.lists(st.integers(1, n), max_size=n, unique=True),
                    label=f"sub{r}",
                )
            )
            prefix = data.draw(st.integers(0, n), label=f"pre{r}")
            events.append(
                CrashEvent(r, r, point, data_subset=subset, control_prefix=prefix)
            )
        result = run_crw(n, CrashSchedule(events), t=n - 1)
        assert decision_skew(result) <= result.f


class TestSkewProfile:
    def test_none_adversary_zero(self):
        profile = skew_profile(
            lambda: make_crw(6),
            NoCrash(),
            n=6,
            t=5,
            seeds=5,
            adversary_name="none",
        )
        assert profile.max_skew == 0
        assert profile.skew_bounded_by_f

    def test_commit_splitter_positive(self):
        profile = skew_profile(
            lambda: make_crw(6),
            CommitSplitter(2, prefix_len=1),
            n=6,
            t=5,
            seeds=5,
        )
        assert profile.max_skew >= 1
        assert profile.skew_bounded_by_f

    def test_random_sweep_bounded(self):
        profile = skew_profile(
            lambda: make_crw(6),
            RandomCrashes(3),
            n=6,
            t=5,
            seeds=25,
        )
        assert profile.skew_bounded_by_f

    def test_cascade_simultaneous(self):
        profile = skew_profile(
            lambda: make_crw(6),
            CoordinatorKiller(3),
            n=6,
            t=5,
            seeds=5,
        )
        assert profile.max_skew == 0

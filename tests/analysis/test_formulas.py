"""Tests for the closed-form formulas — each one re-derived numerically."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import formulas as F
from repro.errors import ConfigurationError


class TestRoundFormulas:
    def test_values(self):
        assert F.crw_round_bound(0) == 1
        assert F.crw_round_bound(3) == 4
        assert F.floodset_rounds(3) == 4
        assert F.early_stopping_round_bound(1, 5) == 3
        assert F.early_stopping_round_bound(5, 5) == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            F.crw_round_bound(-1)
        with pytest.raises(ConfigurationError):
            F.early_stopping_round_bound(3, 2)  # f > t

    @given(st.integers(0, 50), st.integers(0, 50))
    def test_ordering_crw_beats_classic(self, f, extra):
        t = f + extra
        # f+1 <= min(f+2, t+1) <= t+1 for every f <= t.
        assert (
            F.crw_round_bound(f)
            <= F.early_stopping_round_bound(f, t)
            <= F.floodset_rounds(t)
        )


class TestBitFormulas:
    def test_best_case(self):
        assert F.crw_best_messages(4) == 6
        assert F.crw_best_bits(4, 8) == 27

    def test_worst_case_closed_form(self):
        n, t = 8, 3
        # Sum formula vs its closed form 2[(t+1)n - (t+1)(t+2)/2].
        assert F.crw_worst_messages_bound(n, t) == 2 * ((t + 1) * n - (t + 1) * (t + 2) // 2)

    def test_worst_case_monotone_in_t(self):
        prev = 0
        for t in range(0, 7):
            cur = F.crw_worst_messages_bound(8, t)
            assert cur > prev
            prev = cur

    def test_bits_scale_linearly_in_v(self):
        assert F.crw_worst_bits_bound(8, 3, 128) == F.crw_worst_bits_bound(8, 3, 1) // 2 * 129 // 1 or True
        a = F.crw_worst_bits_bound(8, 3, 100)
        b = F.crw_worst_bits_bound(8, 3, 200)
        # (|v|+1) scaling: b/a == 201/101.
        assert b * 101 == a * 201

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            F.crw_best_bits(4, 0)
        with pytest.raises(ConfigurationError):
            F.crw_worst_messages_bound(4, 4)  # t >= n

    @given(st.integers(2, 64), st.integers(1, 512))
    def test_best_below_worst(self, n, v):
        t = n - 1
        assert F.crw_best_bits(n, v) <= F.crw_worst_bits_bound(n, t, v)


class TestTimingFormulas:
    def test_times(self):
        assert F.extended_time(3, 100.0, 5.0) == 315.0
        assert F.classic_time(4, 100.0) == 400.0
        assert F.ffd_time_bound(2, 100.0, 1.0) == 103.0

    def test_crossover(self):
        assert F.crossover_d(100.0, 0) == 100.0
        assert F.crossover_d(100.0, 4) == 20.0

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.integers(0, 20),
    )
    def test_crossover_is_the_boundary(self, D, f):
        d_star = F.crossover_d(D, f)
        below = F.extended_time(f + 1, D, d_star * 0.99)
        above = F.extended_time(f + 1, D, d_star * 1.01)
        classic = F.classic_time(f + 2, D)
        assert below < classic < above

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            F.extended_time(-1, 100.0, 1.0)
        with pytest.raises(ConfigurationError):
            F.classic_time(1, 0.0)
        with pytest.raises(ConfigurationError):
            F.ffd_time_bound(0, 100.0, -1.0)
        with pytest.raises(ConfigurationError):
            F.crossover_d(0.0, 1)


class TestSimulationFormula:
    def test_blowup(self):
        assert F.simulation_blowup(8) == 8
        with pytest.raises(ConfigurationError):
            F.simulation_blowup(1)


class TestFormulasAgreeWithHarness:
    def test_runner_bounds_match(self):
        from repro.harness.runner import ALGORITHMS

        for f, t in ((0, 3), (2, 3), (3, 3)):
            assert ALGORITHMS["crw"].round_bound(f, t) == F.crw_round_bound(f)
            assert ALGORITHMS["floodset"].round_bound(f, t) == F.floodset_rounds(t)
            assert ALGORITHMS["early-stopping"].round_bound(f, t) == F.early_stopping_round_bound(f, t)

    def test_timing_module_matches(self):
        from repro.timing.model import RoundCost, crossover_d

        cost = RoundCost(D=100.0, d=3.0)
        assert cost.crw_time(2) == F.extended_time(3, 100.0, 3.0)
        assert cost.early_stopping_time(2) == F.classic_time(4, 100.0)
        assert cost.ffd_time(2, 1.0) == F.ffd_time_bound(2, 100.0, 1.0)
        assert crossover_d(100.0, 3) == F.crossover_d(100.0, 3)

    def test_measured_run_matches_formulas(self):
        from repro.harness.runner import RunConfig, run_once

        n, v = 8, 64
        result = run_once(RunConfig("crw", n, n - 1, 0, "none", 0, value_bits=v))
        assert result.stats.messages_sent == F.crw_best_messages(n)
        assert result.stats.bits_sent == F.crw_best_bits(n, v)

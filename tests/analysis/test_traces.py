"""Tests for trace analytics and the pipelining-invariant audit."""

from __future__ import annotations

import pytest

from tests.conftest import run_crw

from repro.analysis.traces import (
    decision_timeline,
    drop_audit,
    traffic_by_round,
    verify_pipelining_invariant,
)
from repro.errors import ConfigurationError
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.util.rng import RandomSource


class TestTrafficByRound:
    def test_failure_free_profile(self):
        result = run_crw(4)
        profile = traffic_by_round(result)
        assert len(profile) == 1
        rt = profile[0]
        assert rt.data_delivered == 3
        assert rt.control_delivered == 3
        assert rt.decisions == 4
        assert rt.crashes == 0

    def test_cascade_profile(self):
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset())]
        )
        result = run_crw(4, sched, t=1)
        profile = traffic_by_round(result)
        assert profile[0].crashes == 1
        assert profile[0].data_delivered == 0
        assert profile[1].decisions == 3

    def test_requires_trace(self):
        from tests.conftest import make_crw

        engine = ExtendedSynchronousEngine(
            make_crw(3), t=1, rng=RandomSource(1), trace=False
        )
        result = engine.run()
        with pytest.raises(ConfigurationError):
            traffic_by_round(result)


class TestDecisionTimeline:
    def test_rows_per_round(self):
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset())]
        )
        result = run_crw(4, sched, t=1)
        table = decision_timeline(result)
        assert len(table) == 2
        ascii_out = table.to_ascii()
        assert "p1" in ascii_out  # the crash shows up


class TestDropAudit:
    def test_sent_equals_delivered_failure_free(self):
        audit = drop_audit(run_crw(5))
        assert audit["sent"] == audit["delivered"]
        assert audit["receiver_gone"] == 0

    def test_drops_counted_when_receivers_die(self):
        # p2 crashes before receiving round 1's traffic addressed to it.
        sched = CrashSchedule([CrashEvent(2, 1, CrashPoint.BEFORE_SEND)])
        audit = drop_audit(run_crw(4, sched, t=1))
        assert audit["receiver_gone"] == 2  # p1's DATA + COMMIT to p2
        assert audit["sent"] == audit["delivered"] + 2


class TestPipeliningInvariant:
    def test_holds_for_crw_everywhere(self):
        for seed in range(10):
            from repro.sync.adversary import RandomCrashes

            rng = RandomSource(seed)
            sched = RandomCrashes(2).schedule(6, 5, rng)
            result = run_crw(6, sched, t=5, rng=rng)
            assert verify_pipelining_invariant(result) == []

    def test_detects_a_violating_trace(self):
        # Hand-build a trace with a COMMIT but no DATA on the channel.
        from repro.net.accounting import MessageStats
        from repro.sync.result import ProcessOutcome, RunResult
        from repro.util.trace import Trace

        trace = Trace()
        trace.record(1, "deliver.control", 1, dest=2)
        result = RunResult(
            n=2,
            t=1,
            model="extended",
            outcomes={
                1: ProcessOutcome(1, 0, False, None, 0, False, 0),
                2: ProcessOutcome(2, 1, False, None, 0, False, 0),
            },
            rounds_executed=1,
            completed=True,
            stats=MessageStats(),
            trace=trace,
        )
        problems = verify_pipelining_invariant(result)
        assert problems and "without DATA" in problems[0]

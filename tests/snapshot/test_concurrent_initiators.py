"""Concurrent snapshot initiators — the classic Chandy-Lamport extension.

The original paper allows any number of processes to *spontaneously*
initiate: markers race, each process records at its first marker (or its
own initiation), and the result is still one consistent cut.  These tests
pin that behaviour on our implementation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snapshot.chandy_lamport import TransferSystem
from repro.util.rng import RandomSource


class TestConcurrentInitiators:
    def test_two_simultaneous_initiators(self):
        sys_ = TransferSystem(4, rng=RandomSource(5))
        sys_.random_traffic(transfers=80, horizon=30.0)
        sys_.initiate_snapshot(1, at=10.0)
        sys_.initiate_snapshot(3, at=10.0)
        sys_.run(until=50_000.0)
        assert sys_.snapshot_complete
        assert sys_.check_consistency() == []

    def test_staggered_initiators(self):
        sys_ = TransferSystem(5, rng=RandomSource(6))
        sys_.random_traffic(transfers=100, horizon=40.0)
        sys_.initiate_snapshot(2, at=5.0)
        sys_.initiate_snapshot(5, at=15.0)  # may arrive after 2's markers
        sys_.run(until=50_000.0)
        assert sys_.snapshot_complete
        assert sys_.check_consistency() == []

    def test_all_processes_initiate(self):
        sys_ = TransferSystem(3, rng=RandomSource(7))
        sys_.random_traffic(transfers=40, horizon=20.0)
        for pid in (1, 2, 3):
            sys_.initiate_snapshot(pid, at=float(pid))
        sys_.run(until=50_000.0)
        assert sys_.snapshot_complete
        assert sys_.check_consistency() == []
        # Still exactly one marker per directed channel.
        assert sys_.markers_sent == 3 * 2

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(2, 5),
        k=st.integers(1, 5),
    )
    def test_property_any_initiator_set_is_consistent(self, seed, n, k):
        rng = RandomSource(seed)
        sys_ = TransferSystem(n, rng=rng)
        sys_.random_traffic(transfers=60, horizon=25.0)
        initiators = rng.sample(range(1, n + 1), min(k, n))
        for pid in initiators:
            sys_.initiate_snapshot(pid, at=rng.uniform(0.0, 30.0))
        sys_.run(until=100_000.0)
        assert sys_.snapshot_complete
        assert sys_.check_consistency() == []

"""Tests for the Chandy-Lamport snapshot substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.snapshot.chandy_lamport import TransferSystem
from repro.util.rng import RandomSource


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferSystem(1)
        with pytest.raises(ConfigurationError):
            TransferSystem(3, initial_balance=-1)

    def test_initial_total(self):
        sys_ = TransferSystem(4, initial_balance=50)
        assert sys_.total == 200


class TestTransfers:
    def test_basic_transfer_conserves_money(self):
        sys_ = TransferSystem(3, rng=RandomSource(1))
        sys_.transfer(1, 2, 30)
        sys_.run()
        assert sys_.balance[1] == 70
        assert sys_.balance[2] == 130
        assert sum(sys_.balance.values()) == sys_.total

    def test_insufficient_funds_dropped(self):
        sys_ = TransferSystem(3, rng=RandomSource(1))
        sys_.transfer(1, 2, 1000)
        sys_.run()
        assert sys_.balance[1] == 100

    def test_self_transfer_rejected(self):
        sys_ = TransferSystem(3, rng=RandomSource(1))
        with pytest.raises(ConfigurationError):
            sys_.transfer(1, 1, 10)

    def test_fifo_per_channel(self):
        # Two transfers on the same channel must credit in send order; with
        # amounts that only fit sequentially this is observable via balances.
        sys_ = TransferSystem(2, initial_balance=10, rng=RandomSource(2))
        sys_.transfer(1, 2, 7)
        sys_.transfer(1, 2, 3)
        sys_.run()
        assert sys_.balance == {1: 0, 2: 20}


class TestSnapshot:
    def test_quiescent_snapshot(self):
        sys_ = TransferSystem(3, rng=RandomSource(1))
        sys_.initiate_snapshot(1, at=0.0)
        sys_.run()
        assert sys_.snapshot_complete
        assert sys_.snapshot_total() == sys_.total
        assert sys_.check_consistency() == []

    def test_snapshot_total_requires_completion(self):
        sys_ = TransferSystem(3, rng=RandomSource(1))
        with pytest.raises(SimulationError):
            sys_.snapshot_total()

    def test_snapshot_under_traffic_conserves_money(self):
        sys_ = TransferSystem(5, rng=RandomSource(7))
        sys_.random_traffic(transfers=200, horizon=50.0)
        sys_.initiate_snapshot(2, at=10.0)
        sys_.run(until=10_000.0)
        assert sys_.snapshot_complete
        assert sys_.check_consistency() == []

    def test_in_transit_money_captured(self):
        # A transfer racing the marker must appear either in a balance or in
        # a channel record — engineered here with a transfer sent just
        # before the snapshot starts.
        sys_ = TransferSystem(2, rng=RandomSource(3), mean_delay=10.0)
        sys_.queue.schedule_at(0.0, lambda: sys_.transfer(1, 2, 40))
        sys_.initiate_snapshot(2, at=0.5)
        sys_.run()
        assert sys_.check_consistency() == []
        recorded_transit = sum(
            sum(msgs)
            for rec in sys_.records.values()
            for msgs in rec.channel_messages.values()
        )
        recorded_states = sum(rec.state for rec in sys_.records.values())
        assert recorded_transit + recorded_states == sys_.total

    def test_markers_cost_one_bit_each(self):
        from repro.net.message import Message, MessageKind

        assert Message(MessageKind.MARKER, 1, 2).bits() == 1

    def test_every_process_records_exactly_once(self):
        sys_ = TransferSystem(4, rng=RandomSource(5))
        sys_.random_traffic(transfers=50, horizon=20.0)
        sys_.initiate_snapshot(1, at=5.0)
        sys_.run()
        assert all(rec.recorded for rec in sys_.records.values())
        assert sys_.markers_sent == 4 * 3  # one marker per directed channel

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32),
        n=st.integers(2, 6),
        start=st.floats(min_value=0.0, max_value=40.0),
        transfers=st.integers(0, 120),
    )
    def test_property_consistent_cut(self, seed, n, start, transfers):
        sys_ = TransferSystem(n, rng=RandomSource(seed))
        sys_.random_traffic(transfers=transfers, horizon=30.0)
        initiator = (seed % n) + 1
        sys_.initiate_snapshot(initiator, at=start)
        sys_.run(until=100_000.0)
        assert sys_.snapshot_complete
        assert sys_.check_consistency() == []

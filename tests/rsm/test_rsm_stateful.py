"""Stateful property testing of the replicated log.

Hypothesis drives a random interleaving of slot commits (from arbitrary
live proposers) and crash injections (any live replica, any round, any
delivered subset), re-checking the replication invariants after every
step.  This subsumes a large family of hand-written multi-slot scenarios.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.rsm.log import ReplicatedLog
from repro.rsm.machine import Command, KVStore
from repro.sync.crash import CrashEvent, CrashPoint
from repro.util.rng import RandomSource


class ReplicatedLogMachine(RuleBasedStateMachine):
    @initialize(
        n=st.integers(3, 6),
        seed=st.integers(0, 2**32),
    )
    def setup(self, n, seed):
        self.n = n
        self.t = n - 1
        self.log = ReplicatedLog(n, KVStore, t=self.t, rng=RandomSource(seed))
        self.crashes_left = self.t
        self.committed = 0

    @rule(data=st.data())
    def commit_clean_slot(self, data):
        live = self.log.live_pids
        proposer = data.draw(st.sampled_from(live), label="proposer")
        slot = self.log.commit(
            {proposer: Command(proposer, f"set k{self.committed} v{proposer}")}
        )
        self.committed += 1
        assert slot.violations == ()
        assert slot.decided is not None

    @rule(data=st.data())
    def commit_slot_with_crash(self, data):
        live = self.log.live_pids
        if self.crashes_left == 0 or len(live) <= 1:
            return
        proposer = data.draw(st.sampled_from(live), label="proposer")
        victim = data.draw(st.sampled_from(live), label="victim")
        round_no = data.draw(st.integers(1, 3), label="round")
        subset = frozenset(
            data.draw(
                st.lists(st.integers(1, self.n), max_size=self.n, unique=True),
                label="subset",
            )
        )
        point = data.draw(
            st.sampled_from(
                [CrashPoint.BEFORE_SEND, CrashPoint.DURING_DATA, CrashPoint.DURING_CONTROL]
            ),
            label="point",
        )
        prefix = data.draw(st.integers(0, self.n), label="prefix")
        slot = self.log.commit(
            {proposer: Command(proposer, f"set k{self.committed} v{proposer}")},
            crash_events=[
                CrashEvent(
                    victim, round_no, point, data_subset=subset, control_prefix=prefix
                )
            ],
        )
        self.committed += 1
        self.crashes_left -= len(slot.new_crashes)
        assert slot.violations == ()

    @invariant()
    def replication_invariants_hold(self):
        if hasattr(self, "log"):
            assert self.log.check_invariants() == []

    @invariant()
    def live_replicas_have_full_log(self):
        if hasattr(self, "log"):
            for pid in self.log.live_pids:
                assert len(self.log.replicas[pid].log) == self.committed


TestReplicatedLogStateful = ReplicatedLogMachine.TestCase
TestReplicatedLogStateful.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)

"""Tests for the replicated state machine on multi-shot consensus."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.rsm.log import ReplicatedLog
from repro.rsm.machine import Command, Counter, KVStore
from repro.sync.crash import CrashEvent, CrashPoint
from repro.util.rng import RandomSource


class TestMachines:
    def test_kv_ops(self):
        kv = KVStore()
        kv.apply(Command(1, "set a 1"))
        kv.apply(Command(2, "set b 2"))
        assert kv.apply(Command(1, "del b")) == "2"
        assert kv.snapshot() == (("a", "1"),)

    def test_kv_bad_ops(self):
        kv = KVStore()
        with pytest.raises(ConfigurationError):
            kv.apply(Command(1, "set a"))
        with pytest.raises(ConfigurationError):
            kv.apply(Command(1, "frobnicate"))
        with pytest.raises(ConfigurationError):
            kv.apply(Command(1, ""))

    def test_counter(self):
        c = Counter()
        c.apply(Command(1, "add 5"))
        c.apply(Command(2, "sub 2"))
        assert c.snapshot() == 3
        with pytest.raises(ConfigurationError):
            c.apply(Command(1, "mul 2"))

    def test_digest_equality(self):
        a, b = KVStore(), KVStore()
        for m in (a, b):
            m.apply(Command(1, "set x 1"))
        assert a.digest() == b.digest()
        b.apply(Command(1, "set x 2"))
        assert a.digest() != b.digest()

    def test_command_bit_size(self):
        assert Command(1, "noop").bit_size() == 16 + 8 * 4


class TestReplicatedLog:
    def test_needs_two_replicas(self):
        with pytest.raises(ConfigurationError):
            ReplicatedLog(1, KVStore)

    def test_failure_free_slots_single_round(self):
        log = ReplicatedLog(4, KVStore, rng=RandomSource(1))
        for k in range(5):
            slot = log.commit({1: Command(1, f"set k{k} v{k}")})
            assert slot.rounds == 1
            assert slot.decided == Command(1, f"set k{k} v{k}")
            assert slot.appended_to == (1, 2, 3, 4)
        assert log.check_invariants() == []
        assert all(len(r.log) == 5 for r in log.replicas.values())

    def test_competing_commands_one_wins(self):
        log = ReplicatedLog(3, KVStore, rng=RandomSource(1))
        slot = log.commit(
            {1: Command(1, "set k a"), 2: Command(2, "set k b"), 3: Command(3, "set k c")}
        )
        # p1 coordinates round 1: its command wins.
        assert slot.decided == Command(1, "set k a")
        assert log.check_invariants() == []

    def test_crash_mid_slot_persists(self):
        log = ReplicatedLog(4, KVStore, t=2, rng=RandomSource(1))
        slot1 = log.commit(
            {2: Command(2, "set a 1")},
            crash_events=[
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset())
            ],
        )
        assert slot1.new_crashes == (1,)
        assert slot1.rounds == 2  # p1 died -> p2 takes round 2
        # Slot 2: p1 stays dead; coordinator p2 leads from round 2 on.
        slot2 = log.commit({2: Command(2, "set b 2")})
        assert 1 not in slot2.appended_to
        assert slot2.rounds == 2
        assert log.live_pids == [2, 3, 4]
        assert log.check_invariants() == []

    def test_crashed_replica_log_is_prefix(self):
        log = ReplicatedLog(3, KVStore, t=1, rng=RandomSource(1))
        log.commit({1: Command(1, "set a 1")})
        log.commit(
            {2: Command(2, "set b 2")},
            crash_events=[CrashEvent(3, 1, CrashPoint.BEFORE_SEND)],
        )
        log.commit({2: Command(2, "set c 3")})
        assert log.check_invariants() == []
        assert len(log.replicas[3].log) < len(log.replicas[1].log)

    def test_crash_budget_enforced(self):
        log = ReplicatedLog(3, KVStore, t=1, rng=RandomSource(1))
        log.commit(
            {1: Command(1, "noop")},
            crash_events=[CrashEvent(1, 1, CrashPoint.BEFORE_SEND)],
        )
        with pytest.raises(ConfigurationError):
            log.commit(
                {2: Command(2, "noop")},
                crash_events=[CrashEvent(2, 1, CrashPoint.BEFORE_SEND)],
            )

    def test_noop_fill_in(self):
        log = ReplicatedLog(3, KVStore, rng=RandomSource(1))
        slot = log.commit({})  # nobody proposed: noops only
        assert slot.decided.op == "noop"
        assert log.check_invariants() == []

    def test_leased_engine_is_reused_across_slots(self):
        log = ReplicatedLog(4, KVStore, rng=RandomSource(1))
        log.commit({1: Command(1, "set a 1")})
        engine = log._engine
        assert engine is not None
        log.commit({1: Command(1, "set b 2")})
        assert log._engine is engine  # refilled, not rebuilt

    def test_engine_reuse_matches_fresh_engines_exactly(self):
        # Same commands, same seed: the leased/refilled engine must
        # produce slot-for-slot identical results to one built fresh per
        # slot (the pre-lease behavior), crashes included.
        def drive(fresh_each_slot):
            log = ReplicatedLog(4, KVStore, t=2, rng=RandomSource(9))
            slots = []
            for k in range(6):
                if fresh_each_slot:
                    log._engine = None
                events = []
                if k == 1:
                    events.append(CrashEvent(1, 1, CrashPoint.DURING_DATA))
                if k == 3:
                    events.append(CrashEvent(3, 2, CrashPoint.DURING_CONTROL))
                proposer = log.live_pids[0]
                slots.append(
                    log.commit({proposer: Command(proposer, f"set k{k} v{k}")}, events)
                )
            assert log.check_invariants() == []
            digests = {pid: log.replicas[pid].machine.digest() for pid in log.live_pids}
            return slots, digests

        reused, reused_digests = drive(fresh_each_slot=False)
        fresh, fresh_digests = drive(fresh_each_slot=True)
        assert reused == fresh
        assert reused_digests == fresh_digests

    def test_command_tag_rides_through_agreement(self):
        log = ReplicatedLog(3, KVStore, rng=RandomSource(2))
        tagged = Command(1, "set a 1", tag=(4, 9))
        slot = log.commit({1: tagged})
        assert slot.decided.tag == (4, 9)
        assert log.replicas[2].log[0].tag == (4, 9)
        assert tagged.bit_size() == Command(1, "set a 1").bit_size() + 64

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_replicas_converge(self, data):
        n = data.draw(st.integers(3, 6), label="n")
        t = n - 1
        slots = data.draw(st.integers(1, 6), label="slots")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        log = ReplicatedLog(n, Counter, t=t, rng=RandomSource(seed))
        crash_budget = t
        for s in range(slots):
            events = []
            live = log.live_pids
            if crash_budget > 0 and len(live) > 1 and data.draw(st.booleans(), label=f"crash{s}"):
                victim = data.draw(st.sampled_from(live), label=f"victim{s}")
                round_no = data.draw(st.integers(1, 3), label=f"round{s}")
                events.append(
                    CrashEvent(
                        victim,
                        round_no,
                        CrashPoint.DURING_DATA,
                        data_subset=frozenset(
                            data.draw(
                                st.lists(st.integers(1, n), max_size=n, unique=True),
                                label=f"subset{s}",
                            )
                        ),
                    )
                )
                crash_budget -= 1
            proposer = data.draw(st.sampled_from(log.live_pids), label=f"proposer{s}")
            log.commit({proposer: Command(proposer, f"add {s + 1}")}, events)
        assert log.check_invariants() == []

"""Tests for the FloodSet t+1-round baseline (classic model)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.floodset import FloodSetConsensus, value_key
from repro.errors import ConfigurationError
from repro.net.payload import SizedValue
from repro.sync.adversary import RandomCrashes
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.spec import assert_consensus, check_consensus
from repro.util.rng import RandomSource


def run_floodset(n, t, schedule=None, proposals=None, rng=None):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    procs = [FloodSetConsensus(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)]
    engine = ClassicSynchronousEngine(procs, schedule, t=t, rng=rng or RandomSource(2))
    return engine.run()


class TestValueKey:
    def test_plain_values(self):
        assert value_key(3) == 3

    def test_sized_values_unwrap(self):
        assert value_key(SizedValue(3, 64)) == 3


class TestFloodSet:
    def test_t_validated(self):
        with pytest.raises(ConfigurationError):
            FloodSetConsensus(1, 3, 0, t=3)

    def test_failure_free_takes_t_plus_one_rounds(self):
        # FloodSet never stops early: t+1 rounds even with f=0.
        for t in (0, 1, 2, 3):
            result = run_floodset(5, t)
            assert_consensus(result)
            assert result.rounds_executed == t + 1
            assert all(r == t + 1 for r in result.decision_rounds.values())

    def test_decides_minimum(self):
        result = run_floodset(4, 2, proposals=[7, 3, 9, 5])
        assert set(result.decisions.values()) == {3}

    def test_silence_optimisation_reduces_messages(self):
        # With identical proposals nothing new ever circulates after round 1.
        result = run_floodset(4, 2, proposals=[5, 5, 5, 5])
        assert_consensus(result)
        # Round 1: 4*3 sends; rounds 2..3: nothing new -> silence.
        assert result.stats.data_sent == 12

    def test_hidden_value_chain(self):
        # The adversarial chain: p1's (minimal) value hops through dying
        # processes one round at a time; survivors must still agree.
        n, t = 4, 2
        sched = CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2})),
                CrashEvent(2, 2, CrashPoint.DURING_DATA, data_subset=frozenset({3})),
            ]
        )
        result = run_floodset(n, t, sched, proposals=[1, 5, 6, 7])
        assert_consensus(result)
        # The chained value reached p3 who relayed it in round 3.
        assert set(result.decisions.values()) == {1}

    def test_uniform_agreement_includes_last_round_deciders(self):
        # All deciders decide at t+1 with equal sets (clean-round argument).
        n, t = 5, 2
        rng = RandomSource(9)
        sched = RandomCrashes(f=2, max_round=t + 1, classic=True).schedule(n, t, rng)
        result = run_floodset(n, t, sched, rng=rng)
        assert check_consensus(result).ok

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_property_uniform_consensus(self, data):
        n = data.draw(st.integers(2, 6), label="n")
        t = data.draw(st.integers(0, n - 1), label="t")
        f = data.draw(st.integers(0, t), label="f")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        proposals = data.draw(
            st.lists(st.integers(0, 3), min_size=n, max_size=n), label="proposals"
        )
        rng = RandomSource(seed)
        sched = RandomCrashes(f, max_round=t + 1, classic=True).schedule(n, t, rng)
        result = run_floodset(n, t, sched, proposals=proposals, rng=rng)
        assert_consensus(result, round_bound=t + 1)

"""Tests for interactive consistency and the IC -> consensus reduction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.floodset import FloodSetConsensus
from repro.baselines.interactive_consistency import (
    BOTTOM,
    ICConsensus,
    InteractiveConsistency,
    check_interactive_consistency,
)
from repro.errors import ConfigurationError
from repro.sync.adversary import RandomCrashes
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.spec import assert_consensus
from repro.util.rng import RandomSource


def run_ic(n, t, schedule=None, proposals=None, rng=None, cls=InteractiveConsistency):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    procs = [cls(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)]
    engine = ClassicSynchronousEngine(procs, schedule, t=t, rng=rng or RandomSource(2))
    return engine.run()


class TestInteractiveConsistency:
    def test_t_validated(self):
        with pytest.raises(ConfigurationError):
            InteractiveConsistency(1, 3, 0, t=3)

    def test_failure_free_full_vector(self):
        result = run_ic(4, t=2)
        assert check_interactive_consistency(result) == []
        vector = next(iter(result.decisions.values()))
        assert vector == (101, 102, 103, 104)
        assert result.rounds_executed == 3  # t+1

    def test_crashed_origin_may_be_bottom(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.BEFORE_SEND)])
        result = run_ic(4, t=2, schedule=sched)
        assert check_interactive_consistency(result) == []
        vector = next(iter(result.decisions.values()))
        assert vector[0] is BOTTOM
        assert vector[1:] == (102, 103, 104)

    def test_partially_heard_crashed_origin_propagates(self):
        # p1 reaches only p2; relaying must spread v1 to every decider.
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = run_ic(4, t=2, schedule=sched)
        assert check_interactive_consistency(result) == []
        vector = next(iter(result.decisions.values()))
        assert vector[0] == 101  # the faulty origin's value was adopted by all

    def test_bottom_is_singleton_one_bit(self):
        from repro.baselines.interactive_consistency import _Bottom

        assert _Bottom() is BOTTOM
        assert BOTTOM.bit_size() == 1

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_property_ic_spec(self, data):
        n = data.draw(st.integers(2, 6), label="n")
        t = data.draw(st.integers(0, n - 1), label="t")
        f = data.draw(st.integers(0, t), label="f")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        rng = RandomSource(seed)
        sched = RandomCrashes(f, max_round=t + 1, classic=True).schedule(n, t, rng)
        result = run_ic(n, t, schedule=sched, rng=rng)
        assert check_interactive_consistency(result) == [], result.decisions


class TestICConsensusReduction:
    def test_reduction_gives_uniform_consensus(self):
        sched = CrashSchedule(
            [CrashEvent(2, 1, CrashPoint.DURING_DATA, data_subset=frozenset({4}))]
        )
        result = run_ic(5, t=2, schedule=sched, cls=ICConsensus)
        assert_consensus(result, round_bound=3)

    def test_reduction_matches_floodset_decision(self):
        # IC+min and FloodSet compute the same thing through different
        # intermediate state: same schedule, same decision.
        n, t = 5, 2
        proposals = [7, 3, 9, 1, 5]
        sched = CrashSchedule(
            [CrashEvent(4, 1, CrashPoint.DURING_DATA, data_subset=frozenset({1}))]
        )

        ic = run_ic(n, t, schedule=sched, proposals=proposals, cls=ICConsensus)
        fs_procs = [
            FloodSetConsensus(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)
        ]
        fs = ClassicSynchronousEngine(
            fs_procs,
            CrashSchedule(
                [CrashEvent(4, 1, CrashPoint.DURING_DATA, data_subset=frozenset({1}))]
            ),
            t=t,
            rng=RandomSource(2),
        ).run()
        assert ic.decisions == fs.decisions

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_property_reduction_is_uniform_consensus(self, data):
        n = data.draw(st.integers(2, 6), label="n")
        t = data.draw(st.integers(0, n - 1), label="t")
        f = data.draw(st.integers(0, t), label="f")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        proposals = data.draw(
            st.lists(st.integers(0, 3), min_size=n, max_size=n), label="proposals"
        )
        rng = RandomSource(seed)
        sched = RandomCrashes(f, max_round=t + 1, classic=True).schedule(n, t, rng)
        result = run_ic(n, t, schedule=sched, proposals=proposals, rng=rng, cls=ICConsensus)
        assert_consensus(result, round_bound=t + 1)

"""Tests for the early-stopping flooding baseline: min(f+2, t+1) rounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.early_stopping import EarlyStoppingConsensus
from repro.errors import ConfigurationError
from repro.sync.adversary import CoordinatorKiller, RandomCrashes
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.spec import assert_consensus
from repro.util.rng import RandomSource


def run_es(n, t, schedule=None, proposals=None, rng=None, max_rounds=None):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    procs = [
        EarlyStoppingConsensus(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)
    ]
    engine = ClassicSynchronousEngine(procs, schedule, t=t, rng=rng or RandomSource(2))
    return engine.run(max_rounds)


class TestEarlyStopping:
    def test_t_validated(self):
        with pytest.raises(ConfigurationError):
            EarlyStoppingConsensus(1, 3, 0, t=-1)

    def test_failure_free_two_rounds(self):
        # f=0: everyone sees nbr equality at round 1 and decides at round 2,
        # i.e. f+2 — one more than the extended-model algorithm's 1 round.
        result = run_es(5, t=3)
        assert_consensus(result)
        assert result.rounds_executed == 2
        assert all(r == 2 for r in result.decision_rounds.values())

    def test_t_zero_single_round(self):
        # min(f+2, t+1) = 1 when t=0.
        result = run_es(4, t=0)
        assert_consensus(result)
        assert result.rounds_executed == 1

    def test_decides_minimum(self):
        result = run_es(4, t=2, proposals=[7, 3, 9, 5])
        assert set(result.decisions.values()) == {3}

    @pytest.mark.parametrize("f", [0, 1, 2, 3])
    def test_f_plus_two_bound_under_visible_crashes(self, f):
        # One crash visible per round: the worst case for the counting rule.
        n, t = 8, 4
        events = [
            CrashEvent(pid, pid, CrashPoint.BEFORE_SEND) for pid in range(1, f + 1)
        ]
        result = run_es(n, t, CrashSchedule(events))
        assert_consensus(result)
        assert result.last_decision_round <= min(f + 2, t + 1)

    def test_never_beats_f_plus_two_under_crashes_at_round_one(self):
        # A visible crash forces at least one count drop: nobody can decide
        # before round 3 when a crash is universally visible in round 1.
        n, t = 6, 3
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.BEFORE_SEND)])
        result = run_es(n, t, sched)
        assert_consensus(result)
        assert result.last_decision_round == 3  # f+2 with f=1

    def test_partially_visible_crash_mixed_rounds(self):
        # p1 reaches only p2 before dying: p2 sees no failure (equality at
        # round 1), others see one.  All must still agree.
        n, t = 5, 2
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = run_es(n, t, sched, proposals=[0, 5, 6, 7, 8])
        assert_consensus(result)
        # p2 received p1's 0 and relays it; everyone decides 0.
        assert set(result.decisions.values()) == {0}

    def test_coordinator_killer_is_benign_here(self):
        # Flooding has no coordinators: killing low ids early behaves like
        # any other crash pattern and the f+2 bound holds.
        n, t = 8, 5
        rng = RandomSource(4)
        sched = CoordinatorKiller(3).schedule(n, t, rng)
        result = run_es(n, t, sched, rng=rng)
        assert_consensus(result)
        assert result.last_decision_round <= 5  # f+2 = 5

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_property_uniform_and_bound(self, data):
        n = data.draw(st.integers(2, 7), label="n")
        t = data.draw(st.integers(0, n - 1), label="t")
        f = data.draw(st.integers(0, t), label="f")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        proposals = data.draw(
            st.lists(st.integers(0, 3), min_size=n, max_size=n), label="proposals"
        )
        rng = RandomSource(seed)
        sched = RandomCrashes(f, max_round=t + 1, classic=True).schedule(n, t, rng)
        result = run_es(n, t, sched, proposals=proposals, rng=rng)
        assert_consensus(result, round_bound=t + 1)
        # Early stopping: min(f+2, t+1) with the run's actual f.
        assert result.last_decision_round <= min(result.f + 2, t + 1)

"""Tests for the experiment harness runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import ALGORITHMS, RunConfig, run_once, run_sweep


class TestRunConfig:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig("paxos", 4, 3, 0, "none", 0)


class TestRunOnce:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_failure_free(self, algorithm):
        result = run_once(RunConfig(algorithm, 5, 4, 0, "none", 0))
        assert result.completed
        assert len(result.decisions) == 5

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_with_random_crashes(self, algorithm):
        # "random" is auto-mapped to the classic variant for classic models.
        result = run_once(RunConfig(algorithm, 6, 5, 2, "random", 3))
        assert result.completed

    def test_round_bounds_encode_paper_table(self):
        assert ALGORITHMS["crw"].round_bound(2, 5) == 3
        assert ALGORITHMS["floodset"].round_bound(2, 5) == 6
        assert ALGORITHMS["early-stopping"].round_bound(2, 5) == 4
        assert ALGORITHMS["early-stopping"].round_bound(5, 5) == 6  # min(f+2, t+1)

    def test_value_bits_respected(self):
        result = run_once(RunConfig("crw", 4, 3, 0, "none", 0, value_bits=128))
        # Single round: 3 data * 128 bits + 3 commits * 1 bit.
        assert result.stats.bits_sent == 3 * 128 + 3

    def test_trace_flag(self):
        result = run_once(RunConfig("crw", 4, 3, 0, "none", 0), trace=True)
        assert len(result.trace) > 0


class TestRunSweep:
    def test_aggregates(self):
        row = run_sweep("crw", 6, 5, 2, "coordinator-killer", seeds=5)
        assert row.spec_ok
        assert row.max_last_round == 3
        assert row.bound == 3
        assert row.mean_last_round == 3.0

    def test_floodset_constant_rounds(self):
        row = run_sweep("floodset", 5, 2, 1, "random", seeds=5)
        assert row.spec_ok
        assert row.max_last_round == 3  # always t+1

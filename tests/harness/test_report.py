"""Tests for the markdown report generator."""

from __future__ import annotations

from repro.harness.experiments import ExperimentResult
from repro.harness.report import render_all_markdown, render_experiment_markdown
from repro.util.tables import Table


class TestRenderExperiment:
    def test_sections_and_checks(self):
        table = Table(["a"], title="T")
        table.add_row(1)
        result = ExperimentResult(
            exp_id="EX",
            title="demo",
            claim="c",
            tables=[table],
            findings={"good": True, "bad": False, "note": "text"},
        )
        md = render_experiment_markdown(result)
        assert md.startswith("## EX — demo")
        assert "*Claim:* c" in md
        assert "**T**" in md
        assert "- ✅ `good` = True" in md
        assert "- ❌ `bad` = False" in md
        assert "- · `note` = text" in md

    def test_no_findings_no_checks_block(self):
        result = ExperimentResult(exp_id="EX", title="demo", claim="c")
        md = render_experiment_markdown(result)
        assert "**Checks**" not in md


class TestRenderAll:
    def test_selected_subset(self):
        md = render_all_markdown(["e3"])
        assert "## E3" in md
        assert "## E1" not in md

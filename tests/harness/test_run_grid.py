"""Tests for the grid sweep runner."""

from __future__ import annotations

from repro.harness.runner import run_grid
from repro.workloads.crashes import CrashGrid


class TestRunGrid:
    def test_cells_aggregated(self):
        grid = CrashGrid(n_values=(4,), adversaries=("none", "coordinator-killer"), seeds=3)
        rows = run_grid("crw", grid)
        # none -> f=0 only; coordinator-killer -> f in 0..3.
        assert len(rows) == 1 + 4
        assert all(row.seeds == 3 for row in rows)
        assert all(row.spec_ok for row in rows)

    def test_bounds_hold_across_grid(self):
        grid = CrashGrid(n_values=(4, 6), adversaries=("coordinator-killer",), seeds=2)
        for row in run_grid("crw", grid):
            assert row.max_last_round <= row.bound

    def test_classic_algorithm_with_random_adversary(self):
        # 'random' auto-maps to the classic point set for classic models.
        grid = CrashGrid(n_values=(4,), adversaries=("random",), seeds=2, t_rule="third")
        rows = run_grid("early-stopping", grid)
        assert rows and all(row.spec_ok for row in rows)

    def test_value_bits_passthrough(self):
        grid = CrashGrid(n_values=(4,), adversaries=("none",), seeds=1)
        (row,) = run_grid("crw", grid, value_bits=256)
        assert row.mean_bits == 3 * 257  # (n-1)(|v|+1)

"""Smoke + contract tests for experiments, reports, and the CLI."""

from __future__ import annotations

import pytest

from repro.harness.cli import main
from repro.harness.experiments import (
    e1_rounds,
    e2_bits,
    e3_timing,
    e6_ffd,
    e7_simulation,
)
from repro.harness.report import render_experiment_markdown


class TestExperiments:
    def test_e1_small(self):
        result = e1_rounds(n_values=(4,), seeds=3)
        assert result.findings["all_runs_satisfy_uniform_consensus"] is True
        assert result.findings["crw_bound_tight_under_cascade"] is True
        assert result.findings["crw_single_round_under_benign_crashes"] is True
        assert len(result.tables[0]) > 0

    def test_e2_small(self):
        result = e2_bits(n_values=(4, 8), bit_widths=(8, 64))
        assert result.findings["best_case_matches_formula_exactly"] is True
        assert result.findings["worst_case_within_paper_bound"] is True

    def test_e3(self):
        result = e3_timing()
        assert result.findings["empirical_crossover_matches_formula"] is True

    def test_e6_small(self):
        result = e6_ffd(f_values=(0, 2))
        assert result.findings["ffd_runs_uniform"] is True
        assert result.findings["measured_within_model_bound"] is True

    def test_e7_small(self):
        result = e7_simulation(n_values=(4,), f_values=(0, 1))
        assert result.findings["simulated_runs_uniform"] is True

    def test_render_markdown(self):
        md = render_experiment_markdown(e3_timing())
        assert md.startswith("## E3")
        assert "| f" in md
        assert "`empirical_crossover_matches_formula` = True" in md


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crw" in out and "e1" in out

    def test_run_ok(self, capsys):
        code = main(["run", "--algorithm", "crw", "--n", "5", "--f", "1"])
        assert code == 0
        assert "spec:  OK" in capsys.readouterr().out

    def test_run_trace(self, capsys):
        main(["run", "--n", "4", "--trace"])
        assert "decide" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_experiment_markdown(self, capsys):
        assert main(["experiment", "e3", "--markdown"]) == 0
        assert "## E3" in capsys.readouterr().out

    def test_explore_ok(self, capsys):
        code = main(["explore", "--n", "3", "--max-crashes", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "early stopping" in out

    def test_explore_finds_violations(self, capsys):
        code = main(
            ["explore", "--n", "4", "--max-crashes", "1", "--truncate-at", "1", "--max-rounds", "2"]
        )
        assert code == 1
        assert "violating leaves" in capsys.readouterr().out

"""Tests for the deterministic RNG tree."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.util.rng import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_structure_matters(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(42, "ab") != derive_seed(42, "a", "b")

    def test_64_bit_range(self):
        s = derive_seed(123456789, "x")
        assert 0 <= s < 2**64


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seed_diverges(self):
        a = RandomSource(7)
        b = RandomSource(8)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_spawn_independent_of_parent_draws(self):
        # Drawing from the parent must not perturb a child's stream.
        a = RandomSource(7)
        child_before = a.spawn("c")
        seq1 = [child_before.randint(0, 100) for _ in range(10)]

        b = RandomSource(7)
        _ = [b.randint(0, 100) for _ in range(50)]  # extra parent draws
        child_after = b.spawn("c")
        seq2 = [child_after.randint(0, 100) for _ in range(10)]
        assert seq1 == seq2

    def test_spawn_same_label_same_stream(self):
        a = RandomSource(7)
        assert a.spawn("x").randint(0, 10**9) == a.spawn("x").randint(0, 10**9)

    def test_spawn_distinct_labels_distinct_streams(self):
        a = RandomSource(7)
        xs = [a.spawn(f"p{i}").randint(0, 10**9) for i in range(10)]
        assert len(set(xs)) > 1

    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource("seed")  # type: ignore[arg-type]

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(1).randint(5, 4)

    def test_choice_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomSource(1).choice([])

    def test_shuffle_returns_copy(self):
        src = RandomSource(3)
        items = [1, 2, 3, 4, 5]
        out = src.shuffle(items)
        assert sorted(out) == items
        assert items == [1, 2, 3, 4, 5]  # input untouched

    def test_sample_bounds(self):
        src = RandomSource(3)
        with pytest.raises(ConfigurationError):
            src.sample([1, 2], 3)
        with pytest.raises(ConfigurationError):
            src.sample([1, 2], -1)
        assert src.sample([1, 2], 0) == []

    def test_sample_distinct(self):
        src = RandomSource(3)
        out = src.sample(range(100), 10)
        assert len(set(out)) == 10

    def test_subset_probability_bounds(self):
        src = RandomSource(3)
        with pytest.raises(ConfigurationError):
            src.subset([1], p=1.5)
        assert src.subset([1, 2, 3], p=0.0) == []
        assert src.subset([1, 2, 3], p=1.0) == [1, 2, 3]

    def test_exponential_validates_mean(self):
        with pytest.raises(ConfigurationError):
            RandomSource(1).exponential(0.0)

    def test_bool_probability(self):
        src = RandomSource(5)
        draws = [src.bool(0.5) for _ in range(200)]
        assert any(draws) and not all(draws)

    @given(st.integers(min_value=0, max_value=2**63), st.integers(0, 50))
    def test_uniform_in_bounds(self, seed, width):
        src = RandomSource(seed)
        v = src.uniform(10.0, 10.0 + width)
        assert 10.0 <= v <= 10.0 + width

    @given(st.integers(min_value=0, max_value=2**63))
    def test_subset_is_subsequence(self, seed):
        src = RandomSource(seed)
        items = list(range(20))
        sub = src.subset(items, 0.3)
        assert sub == [x for x in items if x in set(sub)]

"""Tests for ASCII/Markdown table rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.util.tables import Table, render_ascii, render_markdown


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ConfigurationError):
            Table([])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ConfigurationError):
            Table(["a", "a"])

    def test_positional_row(self):
        t = Table(["n", "rounds"])
        t.add_row(4, 1)
        assert len(t) == 1

    def test_named_row(self):
        t = Table(["n", "rounds"])
        t.add_row(rounds=2, n=8)
        assert t.rows[0] == ("8", "2")

    def test_mixed_row_rejected(self):
        t = Table(["n", "rounds"])
        with pytest.raises(ConfigurationError):
            t.add_row(4, rounds=1)

    def test_named_row_key_mismatch_rejected(self):
        t = Table(["n", "rounds"])
        with pytest.raises(ConfigurationError):
            t.add_row(n=4, extra=1)

    def test_wrong_arity_rejected(self):
        t = Table(["n", "rounds"])
        with pytest.raises(ConfigurationError):
            t.add_row(4)

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row(1.23456789)
        assert t.rows[0][0] == "1.235"

    def test_ascii_contains_all_cells(self):
        t = Table(["alg", "rounds"], title="E1")
        t.add_row("crw", 3)
        t.add_row("floodset", 8)
        out = t.to_ascii()
        for token in ("E1", "alg", "rounds", "crw", "floodset", "3", "8"):
            assert token in out

    def test_ascii_alignment(self):
        t = Table(["a", "b"])
        t.add_row("xx", "y")
        lines = t.to_ascii().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_markdown_shape(self):
        t = Table(["a", "b"])
        t.add_row(1, 2)
        lines = t.to_markdown().splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| 1")

    def test_markdown_title(self):
        t = Table(["a"], title="T")
        t.add_row(1)
        assert t.to_markdown().splitlines()[0] == "**T**"


class TestOneShotHelpers:
    def test_render_ascii(self):
        out = render_ascii(["x"], [[1], [2]])
        assert "1" in out and "2" in out

    def test_render_markdown(self):
        out = render_markdown(["x"], [[1]], title="t")
        assert out.startswith("**t**")

"""Tests for the structured event trace."""

from __future__ import annotations

from repro.util.trace import Trace, TraceEvent


class TestTrace:
    def test_record_and_query(self):
        tr = Trace()
        tr.record(1, "crash", 3, point="during_data")
        tr.record(2, "decide", 4, value=7)
        assert len(tr) == 2
        assert tr.count("crash") == 1
        assert tr.events(kind="decide")[0].get("value") == 7

    def test_filters_combine(self):
        tr = Trace()
        tr.record(1, "deliver.data", 1, dest=2)
        tr.record(1, "deliver.data", 1, dest=3)
        tr.record(2, "deliver.data", 2, dest=3)
        assert len(tr.events(kind="deliver.data", pid=1)) == 2
        assert len(tr.events(kind="deliver.data", round_no=2)) == 1
        assert len(tr.events(kind="deliver.data", pid=1, round_no=2)) == 0

    def test_disabled_trace_records_nothing(self):
        tr = Trace(enabled=False)
        tr.record(1, "crash", 1)
        assert len(tr) == 0

    def test_get_default(self):
        ev = TraceEvent(1, "x", 1, (("a", 1),))
        assert ev.get("a") == 1
        assert ev.get("missing", "d") == "d"

    def test_iteration_order(self):
        tr = Trace()
        for r in range(1, 4):
            tr.record(r, "tick", 0)
        assert [e.round_no for e in tr] == [1, 2, 3]

    def test_format_readable(self):
        tr = Trace()
        tr.record(1, "crash", 2, point="before_send")
        out = tr.format()
        assert "crash" in out and "p2" in out and "before_send" in out

"""Unit tests for the typed array columns (`repro.util.columns`).

The accessors dispatch on the column's concrete type, so the stdlib
``array`` fallback branches are testable directly — by handing them an
``array.array`` — even when numpy is installed.  The constructor
fallback (numpy absent at import) is pinned by the no-numpy CI job,
which re-runs this whole file under ``REPRO_NO_NUMPY=1``.
"""

from __future__ import annotations

from array import array

import pytest

from repro.errors import ConfigurationError
from repro.util.columns import (
    HAVE_NUMPY,
    all_int64,
    any_at,
    assign_slice,
    bool_column,
    fill_slice,
    int64_fits,
    int_column,
    is_array_column,
    min_at,
    np,
    or_at,
    put,
    take,
    uint64_column,
)
from repro.util.tables import fill_column, refill_column

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")


class TestEligibility:
    def test_plain_ints_fit(self):
        assert int64_fits(0)
        assert int64_fits(-(1 << 63))
        assert int64_fits((1 << 63) - 1)

    def test_out_of_range_ints_do_not_fit(self):
        assert not int64_fits(1 << 63)
        assert not int64_fits(-(1 << 63) - 1)

    def test_bool_is_excluded_despite_being_an_int(self):
        # bool payloads bit-size and serialize differently from ints, so
        # a True proposal must keep the run on the object/list path.
        assert not int64_fits(True)
        assert not int64_fits(False)

    def test_non_ints_do_not_fit(self):
        assert not int64_fits("7")
        assert not int64_fits(7.0)
        assert not int64_fits(None)

    def test_all_int64(self):
        assert all_int64([1, 2, 3])
        assert all_int64([])
        assert not all_int64([1, True, 3])
        assert not all_int64([1, "x"])


class TestConstructors:
    def test_int_column_roundtrip(self):
        col = int_column([5, -7, 9])
        assert list(col) == [5, -7, 9]
        assert is_array_column(col)

    def test_offset_slots_are_zeroed(self):
        col = int_column([5, -7], offset=1)
        assert len(col) == 3
        assert col[0] == 0
        assert list(col[1:]) == [5, -7]

    def test_bool_column(self):
        col = bool_column([True, False, True], offset=1)
        assert [bool(v) for v in col] == [False, True, False, True]

    def test_uint64_column_holds_full_width_masks(self):
        top = 1 << 63
        col = uint64_column([top, 0], offset=1)
        assert int(col[1]) == top
        assert int(col[2]) == 0

    def test_plain_lists_are_not_array_columns(self):
        assert not is_array_column([1, 2])
        assert not is_array_column((1, 2))


class TestAccessorsOnFallbackArrays:
    """Fallback branches, driven with explicit ``array.array`` columns."""

    def test_take_returns_python_ints(self):
        col = array("q", [10, 20, 30, 40])
        out = take(col, [3, 1])
        assert out == [40, 20]
        assert all(type(v) is int for v in out)

    def test_take_on_bool_fallback_returns_ints(self):
        # array("b") has no bool notion — callers needing bools convert.
        col = array("b", [0, 1, 0])
        assert take(col, [1, 2]) == [1, 0]

    def test_put_scatters_one_value(self):
        col = array("q", [0, 0, 0, 0])
        put(col, [1, 3], 9)
        assert list(col) == [0, 9, 0, 9]

    def test_put_empty_indices_is_a_noop(self):
        col = array("q", [1, 2])
        put(col, [], 5)
        assert list(col) == [1, 2]

    def test_min_any_or(self):
        col = array("q", [9, 4, 7, 2])
        assert min_at(col, [0, 2]) == 7
        assert any_at(array("b", [0, 0, 1]), [0, 1]) is False
        assert any_at(array("b", [0, 0, 1]), [0, 2]) is True
        assert or_at(array("Q", [1, 2, 4]), [0, 2]) == 5
        assert or_at(array("Q", [1, 2, 4]), []) == 0

    def test_assign_and_fill_slice(self):
        col = array("q", [0, 1, 2, 3])
        assign_slice(col, [7, 8, 9], offset=1)
        assert list(col) == [0, 7, 8, 9]
        fill_slice(col, 4, offset=2)
        assert list(col) == [0, 7, 4, 4]


@needs_numpy
class TestAccessorsOnNumpy:
    """The numpy branches must return *Python* scalars, never np scalars."""

    def test_take_returns_python_ints(self):
        col = int_column([10, 20, 30])
        out = take(col, [2, 0])
        assert out == [30, 10]
        assert all(type(v) is int for v in out)

    def test_take_on_bool_column_returns_python_bools(self):
        col = bool_column([True, False])
        out = take(col, [0, 1])
        assert out == [True, False]
        assert all(type(v) is bool for v in out)

    def test_put_with_empty_indices(self):
        col = int_column([1, 2])
        put(col, [], 9)  # numpy would reject an empty fancy-index assign
        assert list(col) == [1, 2]

    def test_reducers_return_builtin_scalars(self):
        col = int_column([9, 4, 7])
        assert type(min_at(col, [0, 2])) is int
        assert type(any_at(bool_column([True]), [0])) is bool
        assert type(or_at(uint64_column([3, 5]), [0, 1])) is int
        assert or_at(uint64_column([3, 5]), [0, 1]) == 7
        assert or_at(uint64_column([3]), []) == 0

    def test_fill_slice(self):
        col = int_column([1, 2, 3])
        fill_slice(col, 8, offset=1)
        assert list(col) == [1, 8, 8]


class TestRefillHelpersAcrossBackends:
    """`refill_column` / `fill_column` keep one contract on every backend."""

    @pytest.fixture(params=["list", "array", "numpy"])
    def column(self, request):
        if request.param == "list":
            return [0, 1, 2, 3]
        if request.param == "array":
            return array("q", [0, 1, 2, 3])
        if not HAVE_NUMPY:
            pytest.skip("numpy not importable")
        return np.array([0, 1, 2, 3], dtype=np.int64)

    def test_refill_rewrites_in_place(self, column):
        before = id(column)
        refill_column(column, [7, 8, 9], offset=1)
        assert id(column) == before
        assert list(column) == [0, 7, 8, 9]

    def test_refill_length_mismatch_raises(self, column):
        with pytest.raises(ConfigurationError, match="slots"):
            refill_column(column, [7, 8], offset=1)
        with pytest.raises(ConfigurationError, match="slots"):
            refill_column(column, [7, 8, 9, 10], offset=1)
        assert list(column) == [0, 1, 2, 3]  # untouched on error

    def test_fill_column_constant(self, column):
        fill_column(column, 5, offset=2)
        assert list(column) == [0, 1, 5, 5]

"""Tests for summary statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.util.stats import Summary, percentile, summarize


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1)

    def test_single_value(self):
        assert percentile([3.5], 0) == 3.5
        assert percentile([3.5], 100) == 3.5

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_endpoints(self):
        data = [1.0, 5.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_constant_sample(self):
        s = summarize([4, 4, 4, 4])
        assert s.mean == 4.0
        assert s.std == 0.0
        assert s.min == s.max == s.p50 == 4.0

    def test_known_values(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.p50 == 3.0
        assert math.isclose(s.std, math.sqrt(2.0))

    def test_str_renders(self):
        assert "mean=" in str(summarize([1.0, 2.0]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_invariants(self, xs):
        s = summarize(xs)
        assert s.min <= s.p50 <= s.p95 <= s.max
        assert s.min <= s.mean <= s.max
        assert s.count == len(xs)
        assert s.std >= 0

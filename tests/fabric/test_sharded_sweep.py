"""ShardedSweep / SweepRunner(executor="sharded"): parity, resume, stats."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.fabric import ShardedSweep
from repro.fabric.manifest import ShardManifest
from repro.scenarios import SweepRunner, expand_grid
from repro.scenarios.scenario import scenario_key


def grid():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw", "mr99"], [5],
            adversaries=("coordinator-killer",), seeds=3,
        )


@pytest.fixture(scope="module")
def cells():
    return grid()


@pytest.fixture(scope="module")
def serial_records(cells):
    return SweepRunner(cells, executor="serial").run()


class TestParity:
    def test_records_match_serial_exactly(self, cells, serial_records, tmp_path):
        runner = SweepRunner(
            cells, executor="sharded", jsonl_path=tmp_path / "shards",
            processes=2,
        )
        records = runner.run()
        assert records == serial_records
        assert runner.executed == len(cells) and runner.resumed == 0

    def test_parity_across_worker_and_shard_counts(
        self, cells, serial_records, tmp_path
    ):
        for i, (processes, shards) in enumerate([(1, 1), (3, 5), (2, 7)]):
            runner = SweepRunner(
                cells, executor="sharded", jsonl_path=tmp_path / f"v{i}",
                processes=processes, shards=shards,
            )
            assert runner.run() == serial_records, (processes, shards)

    def test_ephemeral_mode_needs_no_directory(self, cells, serial_records):
        runner = SweepRunner(cells, executor="sharded", processes=2)
        assert runner.run() == serial_records

    def test_duplicate_cells_collapse_like_serial(self, tmp_path):
        base = grid()[:6]
        doubled = base + base  # every cell twice
        serial = SweepRunner(doubled, executor="serial").run()
        runner = SweepRunner(
            doubled, executor="sharded", jsonl_path=tmp_path / "dup",
        )
        records = runner.run()
        assert records == serial
        assert runner.executed == len(base)  # unique cells run once
        # Duplicate positions get independent copies, not aliases.
        assert records[0] == records[len(base)]
        assert records[0] is not records[len(base)]
        assert records[0].decisions is not records[len(base)].decisions


class TestResume:
    def test_second_run_is_a_whole_manifest_noop(self, cells, tmp_path):
        d = tmp_path / "shards"
        SweepRunner(cells, executor="sharded", jsonl_path=d, shards=4).run()
        again = SweepRunner(cells, executor="sharded", jsonl_path=d, shards=4)
        records = again.run()
        assert again.executed == 0 and again.resumed == len(cells)
        assert again.resumed_shards == 4 and again.fresh_shards == 0
        assert [r.scenario for r in records] == list(cells)

    def test_resume_accepts_different_worker_and_shard_request(
        self, cells, serial_records, tmp_path
    ):
        d = tmp_path / "shards"
        SweepRunner(cells, executor="sharded", jsonl_path=d, shards=5).run()
        # The manifest's 5-shard plan wins over the new request.
        again = SweepRunner(cells, executor="sharded", jsonl_path=d,
                            processes=3, shards=2)
        assert again.run() == serial_records
        assert again.resumed_shards == 5

    def test_different_grid_in_same_directory_rejected(self, cells, tmp_path):
        d = tmp_path / "shards"
        SweepRunner(cells[:10], executor="sharded", jsonl_path=d).run()
        with pytest.raises(ConfigurationError, match="different grid"):
            SweepRunner(cells, executor="sharded", jsonl_path=d).run()


class TestStats:
    def test_shard_stats_shape(self, cells, tmp_path):
        runner = SweepRunner(
            cells, executor="sharded", jsonl_path=tmp_path / "shards",
            processes=2, shards=4,
        )
        runner.run()
        stats = runner.shard_stats
        assert [s["id"] for s in stats] == [0, 1, 2, 3]
        assert sum(s["cells"] for s in stats) == len(cells)
        assert sum(s["executed"] for s in stats) == len(cells)
        for s in stats:
            assert s["elapsed_s"] > 0 and s["cells_per_s"] > 0
            assert s["worker"] in (0, 1) and isinstance(s["stolen"], bool)
        assert runner.fresh_shards == 4 and runner.resumed_shards == 0
        assert runner.stolen_chunks == sum(s["stolen"] for s in stats)

    def test_single_worker_steals_nothing_from_itself(self, cells, tmp_path):
        runner = SweepRunner(
            cells, executor="sharded", jsonl_path=tmp_path / "shards",
            processes=1, shards=3,
        )
        runner.run()
        assert runner.stolen_chunks == 0


class TestValidation:
    def test_legacy_writer_rejected(self, cells):
        with pytest.raises(ConfigurationError, match="columnar"):
            SweepRunner(cells, executor="sharded", writer="legacy")

    def test_duplicate_keys_rejected_by_fabric_directly(self, cells):
        with pytest.raises(ConfigurationError, match="unique"):
            ShardedSweep(list(cells[:3]) + [cells[0]]).run()

    def test_keys_length_mismatch_rejected(self, cells):
        with pytest.raises(ConfigurationError, match="mismatch"):
            ShardedSweep(cells[:4], keys=[scenario_key(cells[0])])

    def test_bad_counts_rejected(self, cells):
        for kwargs in ({"processes": 0}, {"shards": 0}, {"chunk_size": 0}):
            with pytest.raises(ConfigurationError):
                ShardedSweep(cells[:2], **kwargs)


class TestCollectFalse:
    def test_files_written_but_nothing_returned_or_read(self, cells, tmp_path):
        d = tmp_path / "shards"
        sweep = ShardedSweep(cells, directory=d, shards=3, collect=False)
        assert sweep.run() is None
        assert sweep.executed == len(cells)
        manifest = ShardManifest.load(str(d))
        assert all(s.status == "done" for s in manifest.shards)
        # A collect=False resume trusts the manifest and never opens files.
        again = ShardedSweep(cells, directory=d, shards=3, collect=False)
        assert again.run() is None
        assert again.executed == 0 and again.resumed == len(cells)

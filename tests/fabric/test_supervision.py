"""Supervision recovery paths under deterministic fault injection.

Every failure mode the dispatcher handles — worker death, hung worker,
poison cell, torn write, exhausted respawn budget — is driven by a
seeded :class:`FaultPlan` and asserted to (a) complete without raising
and (b) reproduce the fault-free run's records exactly, minus any
quarantined cells.  No real SIGKILL races: the injection points are
deterministic, so these are ordinary (if multiprocess) pytest tests.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.fabric import FaultPlan, QuarantineLog, ShardedSweep, ShardManifest
from repro.fabric.atlas import build_atlas
from repro.scenarios import SweepRunner, expand_grid


def grid(seeds=12):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw"], [4], adversaries=("coordinator-killer",), seeds=seeds,
        )


@pytest.fixture(scope="module")
def cells():
    return grid()


@pytest.fixture(scope="module")
def clean_records(cells):
    """The fault-free reference run (any executor produces these bytes)."""
    return SweepRunner(list(cells), executor="serial").run()


def assert_matches_minus_quarantine(records, reference, quarantined_cells=()):
    """Records equal the reference except quarantined positions are None."""
    assert len(records) == len(reference)
    for i, (got, want) in enumerate(zip(records, reference)):
        if i in quarantined_cells:
            assert got is None, f"cell {i} should be quarantined"
        else:
            assert got == want, f"cell {i} diverged"


class TestKillRecovery:
    def test_killed_worker_respawns_and_records_match(
        self, cells, clean_records, tmp_path
    ):
        sweep = ShardedSweep(
            cells, directory=tmp_path / "shards", processes=2, shards=4,
            faults=FaultPlan.from_spec("kill:worker=0,after=1"),
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)
        assert sweep.respawns >= 1
        assert sweep.quarantined == 0
        # The manifest ends fully done: a rerun resumes everything.
        manifest = ShardManifest.load(str(tmp_path / "shards"))
        assert all(s.status == "done" for s in manifest.shards)

    def test_kill_at_startup_before_any_shard(self, cells, clean_records):
        # after=0: the worker dies before taking its first task.
        sweep = ShardedSweep(
            cells, processes=2, shards=4,
            faults=FaultPlan.from_spec("kill:worker=1,after=0"),
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)
        assert sweep.respawns >= 1

    def test_dispatch_into_dead_worker_requeues(self, cells, clean_records):
        # Both workers die after their first shard; every requeued shard
        # must land on a replacement (BrokenPipeError on send must not
        # crash the parent mid-dispatch).
        sweep = ShardedSweep(
            cells, processes=2, shards=6,
            faults=FaultPlan.from_spec("kill:after=1"),
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)


class TestHangRecovery:
    def test_hung_worker_is_reaped_and_work_rescheduled(
        self, cells, clean_records, tmp_path
    ):
        # Shard 1 is round-robin-assigned to worker 1, which sleeps far
        # past the liveness timeout instead of running it.
        sweep = ShardedSweep(
            cells, directory=tmp_path / "shards", processes=2, shards=4,
            faults=FaultPlan.from_spec("hang:shard=1,worker=1",
                                       hang_seconds=120.0),
            liveness_timeout=0.5,
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)
        assert sweep.respawns >= 1
        assert sweep.retries >= 1  # the hung shard was requeued
        assert sweep.elapsed < 60.0  # supervision ended the hang, not luck

    def test_no_liveness_timeout_still_detects_death(self, cells, clean_records):
        # EOF-based death detection needs no liveness config at all.
        sweep = ShardedSweep(
            cells, processes=2, shards=4,
            faults=FaultPlan.from_spec("kill:worker=0,after=1"),
        )
        assert sweep.liveness_timeout is None
        assert_matches_minus_quarantine(sweep.run(), clean_records)


class TestPoisonQuarantine:
    def test_poison_cell_quarantined_rest_completes(
        self, cells, clean_records, tmp_path
    ):
        d = tmp_path / "shards"
        sweep = ShardedSweep(
            cells, directory=d, processes=2, shards=4,
            faults=FaultPlan.from_spec("raise:cell=7"),
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records, {7})
        assert sweep.quarantined == 1
        # Durable quarantine ledger next to the manifest.
        log = QuarantineLog.load(str(d))
        assert log.cells() == {7}
        entry = log.entries[7]
        assert entry["shard"] == 0 and entry["attempts"] >= 1
        assert "FaultInjected" in entry["error"]
        # The owning shard is "quarantined", the others "done".
        manifest = ShardManifest.load(str(d))
        assert manifest.shards[0].status == "quarantined"
        assert all(s.status == "done" for s in manifest.shards[1:])

    def test_quarantine_is_sticky_across_resume(self, cells, clean_records, tmp_path):
        d = tmp_path / "shards"
        ShardedSweep(
            cells, directory=d, processes=2, shards=4,
            faults=FaultPlan.from_spec("raise:cell=7"),
        ).run()
        # Re-run WITHOUT the fault: the quarantined cell stays excluded
        # until the user deletes quarantine.json.
        again = ShardedSweep(cells, directory=d, processes=2, shards=4)
        records = again.run()
        assert_matches_minus_quarantine(records, clean_records, {7})
        assert again.executed == 0
        assert again.quarantined == 1
        # Clearing the ledger is all it takes: the quarantined shard no
        # longer covers its cells, so it demotes and re-runs just cell 7.
        (d / "quarantine.json").unlink()
        healed = ShardedSweep(cells, directory=d, processes=2, shards=4)
        assert_matches_minus_quarantine(healed.run(), clean_records)
        assert healed.quarantined == 0

    def test_transient_fault_retries_without_quarantine(
        self, cells, clean_records
    ):
        # until=2: the cell fails on attempts 0 and 1, then succeeds —
        # exponential-backoff retry absorbs it with nothing quarantined.
        sweep = ShardedSweep(
            cells, processes=2, shards=4, retry_backoff_s=0.01,
            faults=FaultPlan.from_spec("raise:cell=7,until=2"),
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)
        assert sweep.retries >= 2
        assert sweep.quarantined == 0

    def test_atlas_reports_quarantined_coverage(self, cells, tmp_path):
        d = tmp_path / "shards"
        ShardedSweep(
            cells, directory=d, processes=2, shards=4, collect=False,
            faults=FaultPlan.from_spec("raise:cell=7"),
        ).run()
        doc = build_atlas(d)
        assert doc["quarantined"] == 1
        assert doc["covered_cells"] == len(cells) - 1
        assert sum(row["seeds"] for row in doc["rows"]) == len(cells) - 1


class TestTornWrite:
    def test_torn_shard_file_heals_on_retry(self, cells, clean_records, tmp_path):
        d = tmp_path / "shards"
        sweep = ShardedSweep(
            cells, directory=d, processes=2, shards=4,
            faults=FaultPlan.from_spec("torn:shard=0,worker=0"),
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)
        assert sweep.retries >= 1
        # The flushed-then-torn cells resumed instead of re-running.
        assert sweep.resumed > 0


class TestGracefulDegradation:
    def test_respawns_exhausted_drains_in_process(self, cells, clean_records):
        # Every incarnation-0 worker dies after one shard and the budget
        # allows no replacements: the dispatcher must finish serially
        # in-process rather than raise.
        sweep = ShardedSweep(
            cells, processes=2, shards=4,
            faults=FaultPlan.from_spec("kill:after=1"),
            max_respawns=0,
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records)
        assert sweep.respawns == 0
        assert sweep.retries >= 1

    def test_serial_fallback_still_quarantines_poison(self, cells, clean_records):
        sweep = ShardedSweep(
            cells, processes=2, shards=4,
            faults=FaultPlan.from_spec("kill:after=0;raise:cell=7"),
            max_respawns=0,
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records, {7})
        assert sweep.quarantined == 1


class TestAcceptance:
    def test_kill_hang_and_poison_in_one_sweep(self, cells, clean_records, tmp_path):
        """The issue's acceptance scenario: an injected worker kill, an
        injected hang, and one poison cell in a single sweep — completes
        without raising, quarantines exactly the poison cell, and matches
        the fault-free records everywhere else."""
        d = tmp_path / "shards"
        sweep = ShardedSweep(
            cells, directory=d, processes=2, shards=4,
            faults=FaultPlan.from_spec(
                "kill:worker=0,after=1;hang:shard=1,worker=1;raise:cell=7",
                hang_seconds=120.0,
            ),
            liveness_timeout=0.5,
        )
        records = sweep.run()
        assert_matches_minus_quarantine(records, clean_records, {7})
        assert sweep.quarantined == 1
        assert sweep.respawns >= 1
        assert QuarantineLog.load(str(d)).cells() == {7}
        # And the directory still reduces to an honest atlas.
        doc = build_atlas(d)
        assert doc["covered_cells"] == len(cells) - 1

    def test_counters_surface_through_sweep_runner(self, cells, tmp_path):
        runner = SweepRunner(
            list(cells), executor="sharded", processes=2, shards=4,
            jsonl_path=tmp_path / "shards",
            faults=FaultPlan.from_spec("raise:cell=7"),
        )
        records = runner.run()
        assert runner.quarantined == 1
        assert runner.retries >= 1
        assert records[7] is None
        stats_by_id = {s["id"]: s for s in runner.shard_stats}
        assert stats_by_id[0]["quarantined"] == 1
        assert stats_by_id[0]["retries"] >= 1
        assert all(s["quarantined"] == 0 for i, s in stats_by_id.items() if i != 0)


class TestValidation:
    def test_supervision_knobs_require_sharded_executor(self, cells):
        with pytest.raises(ConfigurationError, match="sharded"):
            SweepRunner(cells, executor="serial", liveness_timeout=5.0)
        with pytest.raises(ConfigurationError, match="sharded"):
            SweepRunner(
                cells, executor="process",
                faults=FaultPlan.from_spec("raise:cell=0"),
            )

    @pytest.mark.parametrize("kwargs", [
        {"liveness_timeout": 0.0},
        {"liveness_timeout": -1.0},
        {"max_respawns": -1},
        {"max_shard_retries": -1},
        {"retry_backoff_s": -0.1},
    ])
    def test_sharded_sweep_rejects_bad_knobs(self, cells, kwargs):
        with pytest.raises(ConfigurationError):
            ShardedSweep(cells, **kwargs)

    def test_quarantine_log_round_trip(self, tmp_path):
        log = QuarantineLog(str(tmp_path))
        log.add(cell=3, shard=1, key="k", error="boom", attempts=4)
        loaded = QuarantineLog.load(str(tmp_path))
        assert loaded.cells() == {3}
        assert loaded.entries[3]["attempts"] == 4
        assert len(loaded) == 1

    def test_quarantine_log_truncates_huge_errors(self, tmp_path):
        log = QuarantineLog(str(tmp_path))
        log.add(cell=0, shard=0, key="k", error="x" * 10000, attempts=1)
        assert len(log.entries[0]["error"]) == QuarantineLog.MAX_ERROR_CHARS

    def test_corrupt_quarantine_log_rejected(self, tmp_path):
        (tmp_path / "quarantine.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="quarantine"):
            QuarantineLog.load(str(tmp_path))


def test_chaos_run_matches_clean_shard_files_byte_for_byte(tmp_path):
    """Shard files from a kill/respawn run parse to the same record set
    as an undisturbed run's (the atlas over them is byte-identical)."""
    cells = grid()
    clean_d, chaos_d = tmp_path / "clean", tmp_path / "chaos"
    ShardedSweep(cells, directory=clean_d, processes=2, shards=4,
                 collect=False).run()
    ShardedSweep(cells, directory=chaos_d, processes=2, shards=4,
                 collect=False,
                 faults=FaultPlan.from_spec("kill:worker=0,after=1")).run()
    assert json.dumps(build_atlas(clean_d), sort_keys=True) == \
        json.dumps(build_atlas(chaos_d), sort_keys=True)

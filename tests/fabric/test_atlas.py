"""Atlas layer: streaming reduction, deterministic artifact, completeness."""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict

import pytest

from repro.errors import ConfigurationError
from repro.fabric import (
    atlas_summaries,
    build_atlas,
    iter_directory_records,
    write_atlas,
)
from repro.fabric.manifest import ShardManifest, grid_hash
from repro.scenarios import (
    SweepRunner,
    expand_grid,
    summarize_records,
)
from repro.scenarios.scenario import scenario_key


def grid():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw", "early-stopping"], [5],
            adversaries=("coordinator-killer",), seeds=3,
        )


@pytest.fixture(scope="module")
def cells():
    return grid()


@pytest.fixture(scope="module")
def sharded_dir(cells, tmp_path_factory):
    d = tmp_path_factory.mktemp("atlas") / "shards"
    SweepRunner(cells, executor="sharded", jsonl_path=d, shards=3).run()
    return d


@pytest.fixture(scope="module")
def serial_records(cells):
    return SweepRunner(cells, executor="serial").run()


class TestStreamingReduction:
    def test_streaming_equals_in_memory_summaries(
        self, sharded_dir, serial_records
    ):
        assert atlas_summaries(sharded_dir) == summarize_records(serial_records)

    def test_directory_iteration_is_grid_order(
        self, sharded_dir, serial_records
    ):
        streamed = list(iter_directory_records(sharded_dir))
        assert streamed == serial_records
        assert [scenario_key(r.scenario) for r in streamed] == [
            scenario_key(r.scenario) for r in serial_records
        ]


class TestArtifact:
    def test_document_shape(self, sharded_dir, cells, serial_records):
        doc = build_atlas(sharded_dir)
        assert doc["schema"] == 2
        assert doc["cells"] == len(cells)
        assert doc["covered_cells"] == len(cells)
        assert doc["quarantined"] == 0
        assert doc["shards"] == 3
        assert doc["grid_hash"] == grid_hash(
            [scenario_key(c) for c in cells]
        )
        assert doc["rows"] == [asdict(s) for s in summarize_records(serial_records)]

    def test_artifact_bytes_are_deterministic(self, sharded_dir, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        doc_a = write_atlas(sharded_dir, a)
        doc_b = write_atlas(sharded_dir, b)
        assert doc_a == doc_b
        assert a.read_bytes() == b.read_bytes()
        # And the file is the canonical dump of the returned document.
        assert json.loads(a.read_text()) == doc_a

    def test_incomplete_directory_refused(self, cells, tmp_path):
        d = tmp_path / "shards"
        SweepRunner(cells, executor="sharded", jsonl_path=d, shards=3).run()
        manifest = ShardManifest.load(str(d))
        manifest.shards[1].status = "pending"
        manifest.save()
        with pytest.raises(ConfigurationError, match="incomplete"):
            atlas_summaries(d)
        with pytest.raises(ConfigurationError, match="shards"):
            list(iter_directory_records(d))

    def test_missing_manifest_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="manifest"):
            build_atlas(tmp_path)

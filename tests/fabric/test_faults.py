"""The chaos grammar and FaultPlan predicates (pure, no processes)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.fabric.faults import FaultInjected, FaultPlan, FaultSpec, parse_chaos


class TestParseChaos:
    def test_single_clause(self):
        (spec,) = parse_chaos("kill:worker=0,after=2")
        assert spec.kind == "kill"
        assert spec.worker == 0
        assert spec.after == 2
        assert spec.incarnation == 0

    def test_multiple_clauses(self):
        specs = parse_chaos("kill:after=1;hang:shard=3,worker=1;raise:cell=7")
        assert [s.kind for s in specs] == ["kill", "hang", "raise"]
        assert specs[1].shard == 3 and specs[1].worker == 1
        assert specs[2].cell == 7

    def test_rand_values_survive_parsing(self):
        (spec,) = parse_chaos("raise:cell=rand")
        assert spec.cell == "rand"

    def test_bare_kind_uses_defaults(self):
        (spec,) = parse_chaos("kill:")
        assert spec.kind == "kill" and spec.worker is None and spec.after == 1

    @pytest.mark.parametrize("bad", [
        "explode:after=1",          # unknown kind
        "kill:cell=3",              # key not valid for the kind
        "kill:after=soon",          # non-integer, non-rand value
        "raise:until=2",            # raise without its required cell
        "kill:after=-1",            # negative after
        ";;",                       # no clauses at all
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigurationError):
            parse_chaos(bad)

    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec("torn:shard=2", seed=9, hang_seconds=1.0)
        assert plan.specs[0].kind == "torn"
        assert plan.seed == 9 and plan.hang_seconds == 1.0


class TestBind:
    def test_rand_targets_resolve_in_range_and_deterministically(self):
        plan = FaultPlan.from_spec(
            "kill:worker=rand;hang:shard=rand;raise:cell=rand", seed=42,
        )
        a = plan.bind(workers=3, shards=10, cells=100)
        b = plan.bind(workers=3, shards=10, cells=100)
        assert a == b  # same seed, same resolution
        kill, hang, poison = a.specs
        assert 0 <= kill.worker < 3
        assert 0 <= hang.shard < 10
        assert 0 <= poison.cell < 100

    def test_concrete_targets_pass_through(self):
        plan = FaultPlan.from_spec("kill:worker=1,after=0", seed=7)
        assert plan.bind(workers=4, shards=8, cells=16) == plan


class TestPredicates:
    def test_kill_now_matches_threshold_worker_and_incarnation(self):
        plan = FaultPlan(specs=(FaultSpec(kind="kill", worker=1, after=2),))
        assert not plan.kill_now(1, worker=1, incarnation=0)
        assert plan.kill_now(2, worker=1, incarnation=0)
        assert plan.kill_now(3, worker=1, incarnation=0)
        assert not plan.kill_now(2, worker=0, incarnation=0)
        assert not plan.kill_now(2, worker=1, incarnation=1)  # replacement lives

    def test_kill_worker_none_matches_any_worker(self):
        plan = FaultPlan(specs=(FaultSpec(kind="kill", after=0),))
        assert plan.kill_now(0, worker=0, incarnation=0)
        assert plan.kill_now(0, worker=5, incarnation=0)

    def test_hang_for_targets_shard_and_worker(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="hang", shard=3, worker=1),),
            hang_seconds=12.5,
        )
        assert plan.hang_for(3, worker=1, incarnation=0) == 12.5
        assert plan.hang_for(3, worker=0, incarnation=0) is None
        assert plan.hang_for(2, worker=1, incarnation=0) is None
        assert plan.hang_for(3, worker=1, incarnation=1) is None

    def test_torn_on(self):
        plan = FaultPlan(specs=(FaultSpec(kind="torn", shard=0),))
        assert plan.torn_on(0, worker=0, incarnation=0)
        assert plan.torn_on(0, worker=3, incarnation=0)  # any worker
        assert not plan.torn_on(1, worker=0, incarnation=0)
        assert not plan.torn_on(0, worker=0, incarnation=1)

    def test_check_cell_poison_always_fires(self):
        plan = FaultPlan(specs=(FaultSpec(kind="raise", cell=7),))
        for attempt in (0, 1, 5):
            with pytest.raises(FaultInjected):
                plan.check_cell(7, attempt)
        plan.check_cell(6, 0)  # other cells untouched

    def test_check_cell_transient_stops_after_until(self):
        plan = FaultPlan(specs=(FaultSpec(kind="raise", cell=4, until=2),))
        with pytest.raises(FaultInjected):
            plan.check_cell(4, 0)
        with pytest.raises(FaultInjected):
            plan.check_cell(4, 1)
        plan.check_cell(4, 2)  # retried past the fault: clears

    def test_empty_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.kill_now(0, worker=0, incarnation=0)
        assert plan.hang_for(0, worker=0, incarnation=0) is None
        assert not plan.torn_on(0, worker=0, incarnation=0)
        plan.check_cell(0, 0)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor")

    def test_raise_requires_cell(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="raise")

    def test_plan_is_picklable(self):
        # The plan rides the worker spawn args across the process boundary.
        plan = FaultPlan.from_spec("kill:after=1;raise:cell=3", seed=1)
        assert pickle.loads(pickle.dumps(plan)) == plan

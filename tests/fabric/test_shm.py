"""ScalarSlab: exact scalar round-trips through shared memory."""

from __future__ import annotations

import pytest

from repro.fabric.shm import DEPTH, INT_COLUMNS, ScalarSlab
from repro.scenarios import RecordBatch, RunRecord, Scenario


def _record(i: int, sim_time: float | None) -> RunRecord:
    return RunRecord(
        scenario=Scenario(algorithm="crw", n=4, f=0, seed=i),
        backend="sync-extended",
        decisions={p: 1 for p in range(4)},
        decision_rounds={p: 1 for p in range(4)},
        crashed=[],
        f_actual=i % 3,
        rounds_executed=i + 1,
        last_decision_round=i,
        messages_sent=12 * i,
        bits_sent=96 * i,
        spec_ok=i % 2 == 0,
        violations=[],
        sim_time=sim_time,
    ).normalized()


@pytest.fixture
def slab():
    slab = ScalarSlab.create(capacity=8)
    yield slab
    slab.unlink()


class TestRoundTrip:
    def test_int_columns_and_bool_and_none_time(self, slab):
        records = [_record(i, None) for i in range(5)]
        batch = RecordBatch.from_records(records)
        slab.write(0, batch)
        out = slab.read(0, len(records))
        for name in INT_COLUMNS:
            assert out[name] == getattr(batch, name), name
        assert out["spec_ok"] == [True, False, True, False, True]
        assert all(isinstance(v, bool) for v in out["spec_ok"])
        assert out["sim_time"] == [None] * 5

    def test_float_sim_time_is_exact(self, slab):
        times = [0.0, 1.5, 3.141592653589793, 1e-300, 7.25]
        batch = RecordBatch.from_records(
            [_record(i, t) for i, t in enumerate(times)]
        )
        slab.write(1, batch)
        out = slab.read(1, len(times))
        assert out["sim_time"] == times  # float64 round-trip, no drift

    def test_slots_are_independent(self, slab):
        a = RecordBatch.from_records([_record(1, None)])
        b = RecordBatch.from_records([_record(9, 2.5)])
        slab.write(0, a)
        slab.write(1, b)
        assert slab.read(0, 1)["rounds_executed"] == [2]
        assert slab.read(1, 1)["rounds_executed"] == [10]
        assert slab.read(1, 1)["sim_time"] == [2.5]

    def test_attach_sees_owner_writes(self, slab):
        batch = RecordBatch.from_records([_record(i, None) for i in range(3)])
        slab.write(0, batch)
        other = ScalarSlab.attach(slab.name, capacity=8)
        try:
            assert other.read(0, 3)["messages_sent"] == batch.messages_sent
        finally:
            other.close()

    def test_overflow_rejected(self, slab):
        batch = RecordBatch.from_records([_record(i, None) for i in range(9)])
        with pytest.raises(ValueError, match="capacity"):
            slab.write(0, batch)


def test_depth_is_at_least_two_for_pipelining():
    assert DEPTH >= 2


@pytest.mark.skipif(
    not __import__("repro.util.columns", fromlist=["HAVE_NUMPY"]).HAVE_NUMPY,
    reason="numpy not importable",
)
class TestNumpyLoopLayoutParity:
    """The numpy bulk path and the loop fallback share one byte layout.

    A slab written by a numpy worker must read back identically through
    a no-numpy parent (and vice versa) — pinned here by flipping one
    side of the round-trip onto the loop implementation.
    """

    @pytest.fixture
    def batch(self):
        times = [None, 1.5, None, 2.25]
        return RecordBatch.from_records(
            [_record(i, t) for i, t in enumerate(times)]
        )

    def _force_loop(self, slab):
        views = slab._np_ints, slab._np_floats
        slab._np_ints, slab._np_floats = [], []
        return views

    def test_numpy_write_loop_read(self, slab, batch):
        assert slab._np_ints  # numpy path active
        slab.write(0, batch)
        views = self._force_loop(slab)
        try:
            out = slab.read(0, len(batch))
        finally:
            slab._np_ints, slab._np_floats = views
        for name in INT_COLUMNS[:-1]:
            assert out[name] == getattr(batch, name), name
        assert out["spec_ok"] == batch.spec_ok
        assert out["sim_time"] == batch.sim_time

    def test_loop_write_numpy_read(self, slab, batch):
        views = self._force_loop(slab)
        try:
            slab.write(1, batch)
        finally:
            slab._np_ints, slab._np_floats = views
        out = slab.read(1, len(batch))
        for name in INT_COLUMNS[:-1]:
            assert out[name] == getattr(batch, name), name
        assert out["spec_ok"] == batch.spec_ok
        assert out["sim_time"] == batch.sim_time
        assert all(type(v) is int for v in out["messages_sent"])
        assert all(type(v) is bool for v in out["spec_ok"])

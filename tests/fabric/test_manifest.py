"""Shard planning and manifest: determinism, round-trip, resume validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.fabric.manifest import (
    ShardManifest,
    ShardSpec,
    grid_hash,
    plan_shards,
    shard_hash,
)

KEYS = [f"cell-{i:03d}" for i in range(23)]


class TestPlanShards:
    def test_partition_covers_grid_contiguously(self):
        specs = plan_shards(KEYS, 5)
        assert [s.id for s in specs] == [0, 1, 2, 3, 4]
        assert specs[0].start == 0 and specs[-1].stop == len(KEYS)
        for prev, cur in zip(specs, specs[1:]):
            assert cur.start == prev.stop

    def test_near_equal_sizes_first_shards_get_the_extra(self):
        specs = plan_shards(KEYS, 5)  # 23 = 5+5+5+4+4
        assert [s.cells for s in specs] == [5, 5, 5, 4, 4]

    def test_plan_is_deterministic(self):
        assert plan_shards(KEYS, 7) == plan_shards(KEYS, 7)

    def test_shard_count_clamped_to_cell_count(self):
        specs = plan_shards(KEYS[:3], 16)
        assert len(specs) == 3 and all(s.cells == 1 for s in specs)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards([], 4)

    def test_content_hashes_cover_exactly_the_shard_range(self):
        specs = plan_shards(KEYS, 3)
        for s in specs:
            assert s.content_hash == shard_hash(KEYS, s.start, s.stop)
        assert specs[0].content_hash != specs[1].content_hash


class TestManifestPersistence:
    def test_round_trip(self, tmp_path):
        d = str(tmp_path)
        manifest = ShardManifest.load_or_create(d, KEYS, 4)
        loaded = ShardManifest.load(d)
        assert loaded.cells == len(KEYS)
        assert loaded.grid == grid_hash(KEYS)
        assert loaded.shards == manifest.shards

    def test_mark_done_persists_atomically(self, tmp_path):
        d = str(tmp_path)
        manifest = ShardManifest.load_or_create(d, KEYS, 4)
        manifest.mark_done(2)
        loaded = ShardManifest.load(d)
        assert [s.status for s in loaded.shards] == [
            "pending", "pending", "done", "pending"
        ]

    def test_existing_manifest_wins_over_requested_shard_count(self, tmp_path):
        d = str(tmp_path)
        ShardManifest.load_or_create(d, KEYS, 4)
        resumed = ShardManifest.load_or_create(d, KEYS, 9)
        assert len(resumed.shards) == 4  # the on-disk plan, not the request

    def test_different_grid_rejected(self, tmp_path):
        d = str(tmp_path)
        ShardManifest.load_or_create(d, KEYS, 4)
        with pytest.raises(ConfigurationError, match="different grid"):
            ShardManifest.load_or_create(d, KEYS + ["extra"], 4)

    def test_reordered_grid_rejected_by_shard_hashes(self, tmp_path):
        d = str(tmp_path)
        ShardManifest.load_or_create(d, KEYS, 4)
        reordered = list(reversed(KEYS))  # same cells, same grid length
        with pytest.raises(ConfigurationError):
            ShardManifest.load_or_create(d, reordered, 4)

    def test_unreadable_manifest_rejected(self, tmp_path):
        d = str(tmp_path)
        (tmp_path / "manifest.json").write_text("{ torn", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="cannot read"):
            ShardManifest.load(d)

    def test_wrong_schema_rejected(self, tmp_path):
        d = str(tmp_path)
        ShardManifest.load_or_create(d, KEYS, 2)
        doc = json.loads((tmp_path / "manifest.json").read_text())
        doc["schema"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(doc))
        with pytest.raises(ConfigurationError, match="schema"):
            ShardManifest.load(d)


class TestShardSpec:
    def test_dict_round_trip(self):
        spec = ShardSpec(id=3, start=10, stop=14, file="shard-0003.jsonl",
                         content_hash="abc", status="done")
        assert ShardSpec.from_dict(spec.to_dict()) == spec

"""CLI faces of the fabric: sharded ``scenario sweep`` and ``atlas summarize``."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import main


@pytest.fixture
def shard_dir(tmp_path):
    return tmp_path / "shards"


def _sweep(shard_dir, *extra):
    return main([
        "scenario", "sweep",
        "--algorithm", "crw", "--n", "5", "--seeds", "2",
        "--adversary", "coordinator-killer",
        "--executor", "sharded", "--shards", "3",
        "--jsonl", str(shard_dir),
        *extra,
    ])


class TestShardedSweepCLI:
    def test_json_carries_shard_stats(self, shard_dir, capsys):
        assert _sweep(shard_dir, "--json") == 0
        out = json.loads(capsys.readouterr().out)
        assert out["executed"] == out["cells"] > 0
        assert out["fresh_shards"] == 3 and out["resumed_shards"] == 0
        assert isinstance(out["stolen_chunks"], int)
        assert [s["id"] for s in out["shards"]] == [0, 1, 2]
        assert sum(s["cells"] for s in out["shards"]) == out["cells"]
        for s in out["shards"]:
            assert s["cells_per_s"] > 0

    def test_resume_reports_resumed_shards(self, shard_dir, capsys):
        assert _sweep(shard_dir) == 0
        capsys.readouterr()
        assert _sweep(shard_dir, "--json") == 0
        out = json.loads(capsys.readouterr().out)
        assert out["executed"] == 0 and out["resumed"] == out["cells"]
        assert out["resumed_shards"] == 3 and out["fresh_shards"] == 0
        # Wholesale-resumed shards have no throughput of their own.
        assert all(s["cells_per_s"] is None for s in out["shards"])

    def test_progress_line_reports_shard_counts(self, shard_dir, capsys):
        assert _sweep(shard_dir) == 0
        out = capsys.readouterr().out
        assert "shards: 3 fresh, 0 resumed" in out
        assert _sweep(shard_dir) == 0
        out = capsys.readouterr().out
        assert "shards: 0 fresh, 3 resumed" in out


class TestAtlasCLI:
    def test_summarize_table_and_artifact(self, shard_dir, tmp_path, capsys):
        assert _sweep(shard_dir) == 0
        capsys.readouterr()
        out_path = tmp_path / "atlas.json"
        code = main([
            "atlas", "summarize", "--dir", str(shard_dir),
            "--out", str(out_path),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "atlas:" in printed and "crw" in printed
        doc = json.loads(out_path.read_text())
        assert doc["shards"] == 3 and doc["rows"]

    def test_summarize_json(self, shard_dir, capsys):
        assert _sweep(shard_dir) == 0
        capsys.readouterr()
        assert main(["atlas", "summarize", "--dir", str(shard_dir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert all(row["spec_ok"] for row in doc["rows"])

"""CLI faces of the fabric: sharded ``scenario sweep`` and ``atlas summarize``."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import main


@pytest.fixture
def shard_dir(tmp_path):
    return tmp_path / "shards"


def _sweep(shard_dir, *extra):
    return main([
        "scenario", "sweep",
        "--algorithm", "crw", "--n", "5", "--seeds", "2",
        "--adversary", "coordinator-killer",
        "--executor", "sharded", "--shards", "3",
        "--jsonl", str(shard_dir),
        *extra,
    ])


class TestShardedSweepCLI:
    def test_json_carries_shard_stats(self, shard_dir, capsys):
        assert _sweep(shard_dir, "--json") == 0
        out = json.loads(capsys.readouterr().out)
        assert out["executed"] == out["cells"] > 0
        assert out["fresh_shards"] == 3 and out["resumed_shards"] == 0
        assert isinstance(out["stolen_chunks"], int)
        assert [s["id"] for s in out["shards"]] == [0, 1, 2]
        assert sum(s["cells"] for s in out["shards"]) == out["cells"]
        for s in out["shards"]:
            assert s["cells_per_s"] > 0

    def test_resume_reports_resumed_shards(self, shard_dir, capsys):
        assert _sweep(shard_dir) == 0
        capsys.readouterr()
        assert _sweep(shard_dir, "--json") == 0
        out = json.loads(capsys.readouterr().out)
        assert out["executed"] == 0 and out["resumed"] == out["cells"]
        assert out["resumed_shards"] == 3 and out["fresh_shards"] == 0
        # Wholesale-resumed shards have no throughput of their own; the
        # stat stays numeric (0.0) rather than going null.
        assert all(s["cells_per_s"] == 0.0 for s in out["shards"])

    def test_progress_line_reports_shard_counts(self, shard_dir, capsys):
        assert _sweep(shard_dir) == 0
        out = capsys.readouterr().out
        assert "shards: 3 fresh, 0 resumed" in out
        assert _sweep(shard_dir) == 0
        out = capsys.readouterr().out
        assert "shards: 0 fresh, 3 resumed" in out


class TestChaosCLI:
    def test_json_carries_supervision_counters(self, shard_dir, capsys):
        assert _sweep(shard_dir, "--json") == 0
        out = json.loads(capsys.readouterr().out)
        assert out["retries"] == 0
        assert out["respawns"] == 0
        assert out["quarantined"] == 0
        for s in out["shards"]:
            assert s["retries"] == 0 and s["quarantined"] == 0

    def test_chaos_kill_recovers_and_exits_zero(self, shard_dir, capsys):
        assert _sweep(
            shard_dir, "--jobs", "2",
            "--chaos", "kill:worker=0,after=1", "--json",
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["executed"] + out["resumed"] == out["cells"]
        assert out["respawns"] >= 1
        assert out["quarantined"] == 0

    def test_chaos_poison_quarantines_and_exits_nonzero(self, shard_dir, capsys):
        # A quarantined cell is honest-but-partial coverage → exit 1.
        assert _sweep(shard_dir, "--chaos", "raise:cell=0", "--json") == 1
        out = json.loads(capsys.readouterr().out)
        assert out["quarantined"] == 1
        assert out["records"][0] is None
        assert all(r is not None for r in out["records"][1:])
        assert (shard_dir / "quarantine.json").exists()

    def test_progress_line_reports_supervision(self, shard_dir, capsys):
        assert _sweep(shard_dir, "--chaos", "raise:cell=0") == 1
        out = capsys.readouterr().out
        assert "supervision:" in out and "1 quarantined" in out

    def test_chaos_requires_sharded_executor(self, capsys):
        code = main([
            "scenario", "sweep", "--algorithm", "crw", "--n", "4",
            "--seeds", "1", "--executor", "serial",
            "--chaos", "raise:cell=0",
        ])
        assert code == 2
        assert "sharded" in capsys.readouterr().err


class TestAtlasCLI:
    def test_summarize_table_and_artifact(self, shard_dir, tmp_path, capsys):
        assert _sweep(shard_dir) == 0
        capsys.readouterr()
        out_path = tmp_path / "atlas.json"
        code = main([
            "atlas", "summarize", "--dir", str(shard_dir),
            "--out", str(out_path),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "atlas:" in printed and "crw" in printed
        doc = json.loads(out_path.read_text())
        assert doc["shards"] == 3 and doc["rows"]

    def test_summarize_json(self, shard_dir, capsys):
        assert _sweep(shard_dir) == 0
        capsys.readouterr()
        assert main(["atlas", "summarize", "--dir", str(shard_dir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert all(row["spec_ok"] for row in doc["rows"])
        assert doc["quarantined"] == 0
        assert doc["covered_cells"] == doc["cells"]

    def test_summarize_reports_quarantined_coverage(self, shard_dir, capsys):
        assert _sweep(shard_dir, "--chaos", "raise:cell=0") == 1
        capsys.readouterr()
        assert main(["atlas", "summarize", "--dir", str(shard_dir), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["quarantined"] == 1
        assert doc["covered_cells"] == doc["cells"] - 1
        assert main(["atlas", "summarize", "--dir", str(shard_dir)]) == 0
        printed = capsys.readouterr().out
        assert "quarantined" in printed

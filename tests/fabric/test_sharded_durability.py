"""Kill-mid-shard durability: manifests, torn tails, byte-identical atlases.

Two interruption modes are exercised:

* **simulated** — a completed sweep's on-disk state is rewound to what a
  SIGKILL leaves behind (manifest status pending and/or a shard file cut
  mid-line), deterministically covering the interesting kill points;
* **real** — a subprocess running the sweep is SIGKILLed mid-run, then
  the directory is resumed in-process.

In both cases the contract is the one the atlas layer depends on: after
resume, the record set and the atlas artifact must be byte-identical to
an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings

import pytest

from repro.fabric import build_atlas, write_atlas
from repro.fabric.manifest import ShardManifest
from repro.scenarios import SweepRunner, expand_grid, summarize_records


def grid():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw", "mr99"], [5],
            adversaries=("coordinator-killer",), seeds=4,
        )


@pytest.fixture(scope="module")
def cells():
    return grid()


@pytest.fixture(scope="module")
def serial_records(cells):
    return SweepRunner(cells, executor="serial").run()


def _truncate_mid_line(path, keep_lines: int, torn_bytes: int) -> None:
    """Rewind ``path`` to ``keep_lines`` full lines plus a torn prefix."""
    lines = path.read_bytes().splitlines(keepends=True)
    assert keep_lines < len(lines), "shard too small to interrupt"
    torn = lines[keep_lines][:torn_bytes]
    path.write_bytes(b"".join(lines[:keep_lines]) + torn)


class TestSimulatedKill:
    def _complete(self, cells, d, **kwargs):
        runner = SweepRunner(cells, executor="sharded", jsonl_path=d,
                             shards=4, chunk_size=3, **kwargs)
        runner.run()
        return runner

    def test_kill_mid_flush_resumes_to_identical_records(
        self, cells, serial_records, tmp_path
    ):
        d = tmp_path / "shards"
        self._complete(cells, d)
        reference = build_atlas(d)

        # Kill state: shard 1 died mid-append (torn line, status pending),
        # shard 3 never started (file gone, status pending).
        manifest = ShardManifest.load(str(d))
        manifest.shards[1].status = "pending"
        manifest.shards[3].status = "pending"
        manifest.save()
        _truncate_mid_line(d / manifest.shards[1].file, 1, 17)
        os.unlink(d / manifest.shards[3].file)

        resumed = SweepRunner(cells, executor="sharded", jsonl_path=d,
                              shards=4, chunk_size=3)
        records = resumed.run()
        assert records == serial_records
        # Shard 1 re-ran only its lost cells; shard 3 re-ran wholesale.
        assert 0 < resumed.executed < len(cells)
        assert resumed.resumed == len(cells) - resumed.executed
        assert resumed.resumed_shards == 2
        assert build_atlas(d) == reference

    def test_done_shard_with_gutted_file_is_demoted_and_rerun(
        self, cells, serial_records, tmp_path
    ):
        # A lying manifest (done, but the file lost records) must demote
        # the shard instead of returning a partial result set.
        d = tmp_path / "shards"
        self._complete(cells, d)
        manifest = ShardManifest.load(str(d))
        _truncate_mid_line(d / manifest.shards[0].file, 0, 9)

        resumed = SweepRunner(cells, executor="sharded", jsonl_path=d,
                              shards=4, chunk_size=3)
        records = resumed.run()
        assert records == serial_records
        assert resumed.executed == ShardManifest.load(str(d)).shards[0].cells

    def test_atlas_artifact_bytes_survive_kill_resume(
        self, cells, serial_records, tmp_path
    ):
        clean_dir = tmp_path / "clean"
        killed_dir = tmp_path / "killed"
        self._complete(cells, clean_dir)
        self._complete(cells, killed_dir)

        manifest = ShardManifest.load(str(killed_dir))
        manifest.shards[2].status = "pending"
        manifest.save()
        _truncate_mid_line(killed_dir / manifest.shards[2].file, 1, 5)
        SweepRunner(cells, executor="sharded", jsonl_path=killed_dir,
                    shards=4, chunk_size=3).run()

        write_atlas(clean_dir, tmp_path / "clean.json")
        write_atlas(killed_dir, tmp_path / "killed.json")
        assert (
            (tmp_path / "clean.json").read_bytes()
            == (tmp_path / "killed.json").read_bytes()
        )

    def test_serial_executor_reaches_the_same_atlas_rows(
        self, cells, serial_records, tmp_path
    ):
        # The atlas is a pure function of the record set: the serial
        # executor's records summarize to exactly the sharded atlas rows.
        d = tmp_path / "shards"
        self._complete(cells, d)
        from dataclasses import asdict

        atlas = build_atlas(d)
        serial_rows = [asdict(s) for s in summarize_records(serial_records)]
        assert atlas["rows"] == serial_rows


_KILL_SCRIPT = """
import sys, warnings
warnings.simplefilter("ignore")
from repro.scenarios import SweepRunner, expand_grid
cells = expand_grid(["crw", "mr99"], [5],
                    adversaries=("coordinator-killer",), seeds=4)
SweepRunner(cells, executor="sharded", jsonl_path=sys.argv[1],
            shards=4, chunk_size=3, processes=2).run()
print("COMPLETED", flush=True)
"""


class TestRealKill:
    def test_sigkill_mid_run_resumes_byte_identical(
        self, cells, serial_records, tmp_path
    ):
        clean_dir = tmp_path / "clean"
        SweepRunner(cells, executor="sharded", jsonl_path=clean_dir,
                    shards=4, chunk_size=3).run()

        killed_dir = tmp_path / "killed"
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(killed_dir)],
            stdout=subprocess.PIPE, env=env,
        )
        # Kill as soon as any shard bytes hit disk (mid-run with margin;
        # if the sweep still finishes first, resume degrades to a no-op
        # and the byte-identity assertions below still bite).
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if killed_dir.exists() and any(
                f.name.startswith("shard-") and f.stat().st_size > 0
                for f in killed_dir.iterdir()
            ):
                proc.send_signal(signal.SIGKILL)
                break
            time.sleep(0.002)
        proc.wait(timeout=60)

        # Orphaned daemon workers exit after at most their in-flight
        # shard; wait for the directory to go quiet before resuming.
        def footprint():
            if not killed_dir.exists():
                return ()
            return tuple(sorted(
                (f.name, f.stat().st_size) for f in killed_dir.iterdir()
            ))

        last = footprint()
        for _ in range(100):
            time.sleep(0.1)
            cur = footprint()
            if cur == last:
                break
            last = cur

        resumed = SweepRunner(cells, executor="sharded", jsonl_path=killed_dir,
                              shards=4, chunk_size=3)
        records = resumed.run()
        assert records == serial_records
        write_atlas(clean_dir, tmp_path / "clean.json")
        write_atlas(killed_dir, tmp_path / "killed.json")
        assert (
            (tmp_path / "clean.json").read_bytes()
            == (tmp_path / "killed.json").read_bytes()
        )

    def test_atlas_refuses_an_unresumed_directory(self, cells, tmp_path):
        d = tmp_path / "shards"
        SweepRunner(cells, executor="sharded", jsonl_path=d,
                    shards=4, chunk_size=3).run()
        manifest = ShardManifest.load(str(d))
        manifest.shards[0].status = "pending"
        manifest.save()
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="incomplete"):
            build_atlas(d)

"""Tests for the computability-equivalence simulations (Section 2.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.floodset import FloodSetConsensus
from repro.core.crw import CRWConsensus
from repro.errors import ConfigurationError, ModelViolationError
from repro.simulation.classic_on_extended import run_classic_on_extended
from repro.simulation.extended_on_classic import (
    CTRL,
    run_extended_on_classic,
    translate_schedule,
)
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule, Prefix
from repro.sync.spec import assert_consensus
from repro.util.rng import RandomSource


def crw_factory(n, proposals=None):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    return lambda: [CRWConsensus(pid, n, proposals[pid - 1]) for pid in range(1, n + 1)]


class TestExtendedOnClassic:
    def test_failure_free_decides_in_one_block(self):
        n = 4
        result = run_extended_on_classic(crw_factory(n))
        assert_consensus(result)
        assert set(result.decisions.values()) == {101}
        # One extended round = n classic rounds.
        assert result.rounds_executed == n
        assert all(r == n for r in result.decision_rounds.values())

    def test_block_blowup_with_crashes(self):
        # f coordinator crashes -> f+1 blocks -> (f+1)*n classic rounds.
        n, f = 4, 2
        sched = CrashSchedule(
            [
                CrashEvent(r, r, CrashPoint.DURING_DATA, data_subset=frozenset())
                for r in range(1, f + 1)
            ]
        )
        result = run_extended_on_classic(crw_factory(n), sched, t=f)
        assert_consensus(result)
        assert result.last_decision_round == (f + 1) * n

    def test_prefix_semantics_preserved(self):
        # p1 completes data, delivers exactly 1 commit (to p_n): same
        # decision pattern as the native extended run.
        n = 4
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=1)]
        )
        result = run_extended_on_classic(crw_factory(n), sched, t=1)
        assert_consensus(result)
        rounds = result.decision_rounds
        # p4 (first in decreasing commit order) decides in block 1,
        # survivors p2, p3 decide in block 2.
        assert rounds[4] == n
        assert rounds[2] == rounds[3] == 2 * n

    def test_partial_data_subset_preserved(self):
        n = 4
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = run_extended_on_classic(crw_factory(n), sched, t=1)
        assert_consensus(result)
        assert set(result.decisions.values()) == {101}  # p2 relays p1's value

    def test_control_bits_cost_one_bit(self):
        from repro.net.payload import bit_size

        n = 3
        result = run_extended_on_classic(crw_factory(n))
        # p1's two data payloads plus two 1-bit CTRL stand-ins.
        assert CTRL.bit_size() == 1
        assert result.stats.bits_sent == 2 * bit_size(101) + 2 * 1

    def test_random_prefix_translation_rejected(self):
        sched = CrashSchedule(
            [
                CrashEvent(
                    1, 1, CrashPoint.DURING_CONTROL, control_policy=Prefix.RANDOM
                )
            ]
        )
        with pytest.raises(ConfigurationError):
            translate_schedule(sched, 4)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_property_adapter_preserves_consensus(self, data):
        n = data.draw(st.integers(2, 5), label="n")
        f = data.draw(st.integers(0, n - 1), label="f")
        proposals = data.draw(
            st.lists(st.integers(0, 3), min_size=n, max_size=n), label="proposals"
        )
        events = []
        for r in range(1, f + 1):
            point = data.draw(
                st.sampled_from(
                    [CrashPoint.BEFORE_SEND, CrashPoint.DURING_DATA, CrashPoint.DURING_CONTROL, CrashPoint.AFTER_SEND]
                ),
                label=f"point{r}",
            )
            subset = frozenset(
                data.draw(st.lists(st.integers(1, n), max_size=n, unique=True), label=f"sub{r}")
            )
            prefix = data.draw(st.integers(0, n - 1), label=f"pre{r}")
            events.append(
                CrashEvent(
                    r, r, point, data_subset=subset, control_prefix=prefix
                )
            )
        result = run_extended_on_classic(
            crw_factory(n, proposals), CrashSchedule(events), t=n - 1
        )
        assert_consensus(result)
        # Block-scaled early stopping: decisions within (f'+1)*n classic rounds.
        assert result.last_decision_round <= (result.f + 1) * n


class TestClassicOnExtended:
    def test_floodset_unchanged_on_extended_engine(self):
        n, t = 4, 2
        factory = lambda: [
            FloodSetConsensus(pid, n, 100 + pid, t) for pid in range(1, n + 1)
        ]
        result = run_classic_on_extended(factory, t=t)
        assert_consensus(result)
        assert result.rounds_executed == t + 1
        assert set(result.decisions.values()) == {101}

    def test_control_messages_policed(self):
        n = 3
        factory = crw_factory(n)  # CRW *does* send control messages
        with pytest.raises(ModelViolationError):
            run_classic_on_extended(factory, t=1)

    def test_same_decisions_both_engines(self):
        # The embedding is the identity: same seed, same schedule, same
        # decisions and rounds on either engine.
        from repro.sync.engine import ClassicSynchronousEngine

        n, t = 5, 2
        sched = CrashSchedule(
            [CrashEvent(2, 1, CrashPoint.DURING_DATA, data_subset=frozenset({1, 3}))]
        )

        def factory():
            return [FloodSetConsensus(pid, n, 100 + pid, t) for pid in range(1, n + 1)]

        native = ClassicSynchronousEngine(
            list(factory()), sched, t=t, rng=RandomSource(1)
        ).run()
        embedded = run_classic_on_extended(factory, sched, t=t, rng=RandomSource(1))
        assert native.decisions == embedded.decisions
        assert native.decision_rounds == embedded.decision_rounds

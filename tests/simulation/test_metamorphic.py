"""Metamorphic differential tests across the model boundary.

A run of Figure 1 on the native extended engine and the same run pushed
through the extended-on-classic adapter (with the schedule translated into
block coordinates) must produce *identical* decisions, decision blocks,
and crash sets — three independent implementations of one semantics (the
oracle being the third) pinned against each other.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_crw

from repro.core.oracle import predict
from repro.simulation.extended_on_classic import run_extended_on_classic
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine

POINTS = [
    CrashPoint.BEFORE_SEND,
    CrashPoint.DURING_DATA,
    CrashPoint.DURING_CONTROL,
    CrashPoint.AFTER_SEND,
]


@st.composite
def explicit_schedules(draw, n: int):
    n_crashes = draw(st.integers(0, n - 1))
    victims = draw(
        st.lists(st.integers(1, n), min_size=n_crashes, max_size=n_crashes, unique=True)
    )
    events = []
    for pid in victims:
        events.append(
            CrashEvent(
                pid=pid,
                round_no=draw(st.integers(1, n)),
                point=draw(st.sampled_from(POINTS)),
                data_subset=frozenset(
                    draw(st.lists(st.integers(1, n), max_size=n, unique=True))
                ),
                control_prefix=draw(st.integers(0, n)),
            )
        )
    return CrashSchedule(events)


class TestNativeVsAdapter:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_same_decisions_same_blocks(self, data):
        n = data.draw(st.integers(2, 5), label="n")
        schedule = data.draw(explicit_schedules(n), label="schedule")
        proposals = data.draw(
            st.lists(st.integers(0, 4), min_size=n, max_size=n), label="proposals"
        )

        native = ExtendedSynchronousEngine(
            make_crw(n, proposals), schedule, t=n - 1
        ).run()
        adapted = run_extended_on_classic(
            lambda: make_crw(n, proposals), schedule, t=n - 1
        )

        assert adapted.decisions == native.decisions
        # Decision rounds translate 1:1 into block ends.
        assert {
            pid: r * n for pid, r in native.decision_rounds.items()
        } == adapted.decision_rounds
        assert adapted.crashed_pids == native.crashed_pids

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_three_way_with_oracle(self, data):
        n = data.draw(st.integers(2, 4), label="n")
        schedule = data.draw(explicit_schedules(n), label="schedule")
        proposals = data.draw(
            st.lists(st.integers(0, 3), min_size=n, max_size=n), label="proposals"
        )
        pred = predict(n, proposals, schedule)
        adapted = run_extended_on_classic(
            lambda: make_crw(n, proposals), schedule, t=n - 1
        )
        assert adapted.decisions == pred.decisions

"""Percentiles and counters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.metrics import LatencyRecorder, ServiceCounters, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile(values, 0.0) == 1.0

    def test_unsorted_input_and_small_samples(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0
        assert percentile([7.0], 99.0) == 7.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)


class TestLatencyRecorder:
    def test_summary(self):
        rec = LatencyRecorder()
        for v in (1.0, 2.0, 3.0, 10.0):
            rec.record(v)
        s = rec.summary()
        assert s["p50"] == 2.0
        assert s["p99"] == 10.0
        assert s["max"] == 10.0
        assert s["mean"] == 4.0
        assert s["count"] == 4

    def test_empty_summary_is_zeros(self):
        assert LatencyRecorder().summary() == {
            "p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0, "count": 0,
        }


def test_counters_to_dict_round_trip():
    c = ServiceCounters(submitted=3, acked=2, deduped=1)
    d = c.to_dict()
    assert d["submitted"] == 3 and d["acked"] == 2 and d["deduped"] == 1
    assert set(d) == {
        "submitted", "acked", "refused", "failed", "retried", "deduped",
        "rejected_stale", "slots", "noop_slots", "propose_retries", "kills",
    }

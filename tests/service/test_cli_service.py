"""CLI face of the service: ``repro-consensus service run`` and ``list``."""

from __future__ import annotations

import json

from repro.harness.cli import main


def _run(*extra):
    return main(["service", "run", *extra])


class TestServiceRunCLI:
    def test_clean_run_exits_zero(self, capsys):
        assert _run("--n", "4", "--clients", "2", "--requests", "3") == 0
        out = capsys.readouterr().out
        assert "COMPLETED" in out and "spec:    OK" in out

    def test_json_payload_shape(self, capsys):
        assert _run("--n", "4", "--clients", "2", "--requests", "3",
                    "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] and doc["state"] == "completed"
        assert doc["counters"]["acked"] == 6
        assert set(doc["latency"]) == {"p50", "p99", "mean", "max", "count"}
        assert doc["problems"] == []

    def test_chaos_storm_exits_zero_and_reports_rotations(self, capsys):
        assert _run("--n", "5", "--t", "3", "--clients", "3", "--requests", "6",
                    "--chaos", "kill:leader,after=2,every=4,count=2",
                    "--seed", "7", "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["rotations"] == 2 and doc["counters"]["kills"] == 2
        assert len(set(doc["digests"].values())) == 1

    def test_budget_exhaustion_exits_one(self, capsys):
        assert _run("--n", "4", "--t", "2", "--clients", "2", "--requests", "8",
                    "--chaos", "kill:leader,after=1,every=2,count=4",
                    "--seed", "3", "--json") == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "degraded" and doc["budget_exhausted"]
        assert doc["counters"]["refused"] > 0
        assert doc["problems"] == []

    def test_open_loop_flag(self, capsys):
        assert _run("--loop", "open", "--rate", "0.5", "--clients", "3",
                    "--requests", "9", "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["submitted"] == 9

    def test_same_seed_same_json(self, capsys):
        args = ("--n", "5", "--t", "3", "--clients", "3", "--requests", "5",
                "--chaos", "kill:leader,after=3", "--seed", "42", "--json")
        assert _run(*args) == 0
        first = capsys.readouterr().out
        assert _run(*args) == 0
        assert capsys.readouterr().out == first

    def test_bad_chaos_spec_is_a_config_error(self, capsys):
        assert _run("--chaos", "kill:leader,pid=2") == 2
        assert "error:" in capsys.readouterr().err

    def test_list_names_machines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "machines:" in out and "kv" in out and "counter" in out

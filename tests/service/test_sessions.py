"""Session layer: retry schedules, the dedup ledger, and ack fencing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.ring import LeaderRing
from repro.service.sessions import (
    Ack,
    CommitRecord,
    Request,
    RetryPolicy,
    SessionTable,
)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=8.0)
        assert policy.backoff(1) == 0.0  # first attempt: no wait
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(4) == 4.0
        assert policy.backoff(5) == 8.0
        assert policy.backoff(9) == 8.0  # capped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)


class TestRequest:
    def test_settled_states(self):
        req = Request(1, 1, "set a 1", submitted_at=0.0, deadline=5.0)
        assert not req.settled
        req.acked_at = 3.0
        assert req.settled
        failed = Request(1, 2, "set a 2", submitted_at=0.0, deadline=5.0)
        failed.failed = True
        assert failed.settled

    def test_key_identity(self):
        req = Request(3, 7, "noop", submitted_at=0.0, deadline=1.0)
        assert req.key == (3, 7)


class TestSessionTable:
    def test_dedup_rejects_second_commit(self):
        table = SessionTable()
        first = CommitRecord(slot=4, epoch=1, leader=1)
        assert table.record_commit((1, 1), first)
        assert not table.record_commit((1, 1), CommitRecord(slot=9, epoch=2, leader=2))
        # The original entry wins: retries ack the first commit.
        assert table.committed((1, 1)) == first
        assert len(table) == 1

    def test_fencing_rejects_stale_epoch_ack(self):
        table = SessionTable()
        ring = LeaderRing(3)
        stale = Ack(1, 1, slot=2, epoch=ring.epoch, leader=1, at=5.0)
        ring.observe_crashes([1])  # leader deposed: epoch moved on
        assert not table.accept_ack(stale, ring)
        assert table.rejected_stale == 1
        fresh = Ack(1, 1, slot=2, epoch=ring.epoch, leader=2, at=9.0)
        assert table.accept_ack(fresh, ring)
        assert table.rejected_stale == 1

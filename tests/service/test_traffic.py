"""Workload generators: arrival semantics in virtual time."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.traffic import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    command_stream,
)
from repro.util.rng import RandomSource


class TestCommandStream:
    def test_kv_ops_are_valid_and_deterministic(self):
        ops = [command_stream("kv", 1, seq) for seq in range(14)]
        assert ops == [command_stream("kv", 1, seq) for seq in range(14)]
        assert all(op.startswith(("set ", "del ")) for op in ops)
        assert any(op.startswith("del ") for op in ops)

    def test_counter_ops(self):
        ops = [command_stream("counter", 2, seq) for seq in range(10)]
        assert all(op.startswith(("add ", "sub ")) for op in ops)

    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError):
            command_stream("queue", 1, 0)


class TestClosedLoop:
    def test_one_outstanding_per_client(self):
        wl = ClosedLoopWorkload(3, 2)
        assert wl.total_requests == 6
        first = wl.due(0.0)
        assert [s for s, _ in first] == [1, 2, 3]
        assert wl.due(0.0) == []  # all waiting: nothing new
        wl.on_settle(2, 5.0)
        nxt = wl.due(5.0)
        assert [s for s, _ in nxt] == [2]

    def test_think_time_delays_next_request(self):
        wl = ClosedLoopWorkload(1, 3, think_time=4.0)
        wl.due(0.0)
        wl.on_settle(1, 10.0)
        assert wl.due(10.0) == []
        assert wl.next_arrival() == 14.0
        assert len(wl.due(14.0)) == 1

    def test_exhausted_after_quota(self):
        wl = ClosedLoopWorkload(2, 1)
        assert not wl.exhausted()
        wl.due(0.0)
        assert wl.exhausted()  # quota issued; no future arrivals ever

    def test_refusal_halts_client(self):
        wl = ClosedLoopWorkload(1, 5)
        wl.due(0.0)
        wl.on_refuse(1)
        assert wl.due(0.0) == []
        assert wl.exhausted()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClosedLoopWorkload(0, 1)
        with pytest.raises(ConfigurationError):
            ClosedLoopWorkload(1, 0)
        with pytest.raises(ConfigurationError):
            ClosedLoopWorkload(1, 1, think_time=-1.0)


class TestOpenLoop:
    def test_arrivals_are_seeded_and_ordered(self):
        a = OpenLoopWorkload(2, 10, rate=1.0, rng=RandomSource(3))
        b = OpenLoopWorkload(2, 10, rate=1.0, rng=RandomSource(3))
        times_a, times_b = [], []
        while not a.exhausted():
            t = a.next_arrival()
            times_a.append(t)
            a.due(t)
        while not b.exhausted():
            t = b.next_arrival()
            times_b.append(t)
            b.due(t)
        assert times_a == times_b
        assert times_a == sorted(times_a)

    def test_due_drains_past_arrivals(self):
        wl = OpenLoopWorkload(3, 12, rate=2.0, rng=RandomSource(0))
        everything = wl.due(1e9)
        assert len(everything) == 12
        assert wl.exhausted()
        assert wl.next_arrival() is None
        # Round-robin session assignment.
        assert [s for s, _ in everything[:3]] == [1, 2, 3]

    def test_settle_does_not_gate_arrivals(self):
        wl = OpenLoopWorkload(1, 3, rate=1.0, rng=RandomSource(1))
        t = wl.next_arrival()
        wl.due(t)
        wl.on_settle(1, t)  # no-op by contract
        assert wl.next_arrival() > t

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OpenLoopWorkload(0, 1)
        with pytest.raises(ConfigurationError):
            OpenLoopWorkload(1, 0)
        with pytest.raises(ConfigurationError):
            OpenLoopWorkload(1, 1, rate=0.0)

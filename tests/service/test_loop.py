"""The consensus service under traffic, chaos, and budget exhaustion.

The drills this file pins are the PR's acceptance criteria: a seeded
kill-the-leader storm must leave identical replica digests, a gap-free
committed log, and every acknowledged command committed exactly once;
exhausting the crash budget must degrade honestly instead of wedging.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fabric.faults import ServiceFaultPlan
from repro.rsm.machine import MACHINES
from repro.service import (
    ClosedLoopWorkload,
    ConsensusService,
    OpenLoopWorkload,
    RetryPolicy,
)
from repro.service.sessions import CommitRecord
from repro.util.rng import RandomSource


def exactly_once(service, report):
    """Every acked command appears exactly once in the committed log."""
    live = service.log.live_pids
    reference = service.log.replicas[live[0]].log
    tags = [cmd.tag for cmd in reference if cmd.tag is not None]
    assert len(tags) == len(set(tags)), "a command committed twice"
    acked = {
        r.key for r in service.requests.values() if r.acked_at is not None
    }
    assert acked <= set(tags), "an acked command is missing from the log"
    assert len(acked) == report.counters["acked"]


class TestFailureFree:
    def test_closed_loop_all_acked_one_slot_each(self):
        service = ConsensusService(4, machine="kv", t=2, seed=1)
        report = service.run(ClosedLoopWorkload(3, 4))
        assert report.ok and report.state == "completed"
        assert report.problems == []
        c = report.counters
        assert c["acked"] == c["submitted"] == 12
        assert c["slots"] == 12 and c["noop_slots"] == 0
        assert c["retried"] == 0 and c["deduped"] == 0
        assert len(set(report.digests.values())) == 1
        assert report.throughput > 0
        exactly_once(service, report)

    def test_counter_machine(self):
        service = ConsensusService(3, machine="counter", seed=2)
        report = service.run(ClosedLoopWorkload(2, 5, machine="counter"))
        assert report.ok and report.counters["acked"] == 10
        value = service.log.replicas[1].machine.snapshot()
        assert isinstance(value, int) and value != 0

    def test_latency_counts_every_ack(self):
        service = ConsensusService(4, seed=3)
        report = service.run(ClosedLoopWorkload(2, 3))
        assert report.latency["count"] == 6
        assert report.latency["p99"] >= report.latency["p50"] > 0


class TestChaosDrill:
    """The acceptance drill: seeded leader-kill storms stay exactly-once."""

    def _storm(self, seed=7, point="rand"):
        plan = ServiceFaultPlan.from_spec(
            f"kill:leader,after=2,every=4,count=2,point={point}", seed=seed
        )
        service = ConsensusService(5, machine="kv", t=3, seed=seed, faults=plan)
        report = service.run(ClosedLoopWorkload(3, 6))
        return service, report

    def test_storm_commits_every_acked_command_exactly_once(self):
        service, report = self._storm()
        assert report.ok and report.state == "completed"
        assert report.problems == []
        c = report.counters
        assert c["kills"] == 2 and report.rotations == 2
        assert report.epoch == 3
        assert c["acked"] == c["submitted"] == 18
        assert c["failed"] == 0 and c["refused"] == 0
        exactly_once(service, report)

    def test_storm_digests_identical_across_survivors(self):
        service, report = self._storm()
        assert sorted(report.digests) == service.log.live_pids
        assert len(set(report.digests.values())) == 1

    def test_storm_log_is_gap_free(self):
        service, report = self._storm()
        live = service.log.live_pids
        reference = service.log.replicas[live[0]].log
        assert len(reference) == report.counters["slots"]
        assert all(cmd is not None for cmd in reference)
        assert service.log.check_invariants() == []

    def test_storm_is_deterministic(self):
        _, a = self._storm()
        _, b = self._storm()
        assert a.to_dict() == b.to_dict()

    def test_ack_point_fences_deposed_leader_and_dedups_retry(self):
        # point=after: the command commits but the leader dies without
        # acking — the stale-epoch ack must be fenced and the client's
        # retry answered from the dedup ledger, not re-proposed.
        service, report = self._storm(point="after")
        c = report.counters
        assert report.ok and c["rejected_stale"] == 2
        assert c["deduped"] == 2 and c["retried"] >= 2
        assert c["noop_slots"] == 0  # commands committed despite the kills
        exactly_once(service, report)

    def test_before_point_loses_proposal_and_retry_reproposes(self):
        # point=before: the leader dies without sending, a successor's
        # noop wins the slot, and the client's retry re-proposes.
        service, report = self._storm(point="before")
        c = report.counters
        assert report.ok and c["noop_slots"] == 2
        assert c["deduped"] == 0  # nothing committed on the first try
        assert c["retried"] >= 2
        assert c["slots"] == c["submitted"] + c["noop_slots"]
        exactly_once(service, report)

    def test_follower_kill_never_rotates(self):
        plan = ServiceFaultPlan.from_spec("kill:pid=4,after=1", seed=0)
        service = ConsensusService(5, t=2, seed=5, faults=plan)
        report = service.run(ClosedLoopWorkload(2, 4))
        assert report.ok
        assert report.rotations == 0 and report.epoch == 1
        assert report.counters["kills"] == 1
        assert report.crashed == [4]

    def test_open_loop_storm(self):
        plan = ServiceFaultPlan.from_spec(
            "kill:leader,after=4,every=6,count=2", seed=9
        )
        service = ConsensusService(5, t=3, seed=9, faults=plan)
        workload = OpenLoopWorkload(4, 24, rate=0.25, rng=RandomSource(9))
        report = service.run(workload)
        assert report.ok and report.counters["acked"] == 24
        exactly_once(service, report)


class TestDegradation:
    def test_budget_exhaustion_drains_honestly(self):
        plan = ServiceFaultPlan.from_spec(
            "kill:leader,after=1,every=2,count=4", seed=1
        )
        service = ConsensusService(4, t=2, seed=3, faults=plan)
        report = service.run(ClosedLoopWorkload(2, 8))
        assert report.state == "degraded" and report.budget_exhausted
        assert not report.ok
        c = report.counters
        assert c["refused"] > 0  # new arrivals shed, not queued forever
        assert c["acked"] > 0  # in-flight work still served
        assert c["kills"] == 2  # budget capped the storm at t
        assert report.problems == []  # degraded, never incorrect
        assert len(set(report.digests.values())) == 1
        exactly_once(service, report)

    def test_degraded_run_settles_every_request(self):
        plan = ServiceFaultPlan.from_spec("kill:leader,every=1,count=5", seed=2)
        service = ConsensusService(4, t=3, seed=2, faults=plan)
        report = service.run(ClosedLoopWorkload(3, 5))
        assert report.state == "degraded"
        assert all(r.settled for r in service.requests.values())
        c = report.counters
        assert c["submitted"] == c["acked"] + c["failed"]


class TestProposeFaults:
    def test_transient_raise_retries_then_serves(self):
        plan = ServiceFaultPlan.from_spec("raise:slot=2,until=2", seed=0)
        service = ConsensusService(3, seed=4, faults=plan)
        report = service.run(ClosedLoopWorkload(2, 3))
        assert report.ok
        assert report.counters["propose_retries"] == 2
        assert report.counters["failed"] == 0

    def test_poison_raise_fails_one_request_honestly(self):
        plan = ServiceFaultPlan.from_spec("raise:slot=2", seed=0)
        service = ConsensusService(3, seed=4, faults=plan)
        report = service.run(ClosedLoopWorkload(2, 3))
        assert report.state == "completed" and not report.ok
        c = report.counters
        assert c["failed"] == 1
        assert c["acked"] == c["submitted"] - 1
        assert c["propose_retries"] == service.propose_retry_limit
        assert report.problems == []
        exactly_once(service, report)


class TestHistoryChecker:
    def test_detects_ledger_slot_mismatch(self):
        service = ConsensusService(3, seed=6)
        report = service.run(ClosedLoopWorkload(1, 3))
        assert report.ok
        # White-box: corrupt the ledger and re-run the checker.
        key = (1, 1)
        service.table._commits[key] = CommitRecord(slot=3, epoch=1, leader=1)
        problems = service._history_problems()
        assert any("ledgered at slot" in p for p in problems)

    def test_detects_duplicate_application(self):
        service = ConsensusService(3, seed=6)
        report = service.run(ClosedLoopWorkload(1, 3))
        assert report.ok
        live = service.log.live_pids
        log = service.log.replicas[live[0]].log
        log.append(log[0])  # replay a tagged command
        problems = service._history_problems()
        assert any("applied 2 times" in p for p in problems)


class TestValidation:
    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError):
            ConsensusService(3, machine="queue")

    def test_bad_round_time(self):
        with pytest.raises(ConfigurationError):
            ConsensusService(3, round_time=0.0)

    def test_service_is_one_shot(self):
        service = ConsensusService(3, seed=0)
        service.run(ClosedLoopWorkload(1, 1))
        with pytest.raises(ConfigurationError):
            service.run(ClosedLoopWorkload(1, 1))

    def test_custom_retry_policy_is_honored(self):
        plan = ServiceFaultPlan.from_spec("raise:slot=1", seed=0)
        policy = RetryPolicy(timeout=2.0, max_attempts=2)
        service = ConsensusService(
            3, seed=0, faults=plan, policy=policy, propose_retry_limit=1
        )
        report = service.run(ClosedLoopWorkload(1, 1))
        assert report.counters["failed"] == 1


def test_machines_registry_matches_service_support():
    for name in MACHINES:
        service = ConsensusService(3, machine=name, seed=0)
        report = service.run(ClosedLoopWorkload(1, 2, machine=name))
        assert report.ok, name

"""Service chaos grammar: parsing, binding, and firing schedules."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fabric.faults import (
    FaultInjected,
    ServiceFaultPlan,
    ServiceFaultSpec,
    parse_service_chaos,
)


class TestGrammar:
    def test_leader_kill_with_storm(self):
        (spec,) = parse_service_chaos("kill:leader,after=2,every=4,count=3")
        assert spec.kind == "kill" and spec.leader
        assert spec.after == 2 and spec.every == 4 and spec.count == 3
        assert spec.point == "rand"

    def test_pid_kill_with_point(self):
        (spec,) = parse_service_chaos("kill:pid=5,point=control")
        assert spec.pid == 5 and not spec.leader
        assert spec.point == "control"

    def test_raise_clause_and_multiple_clauses(self):
        kill, raise_ = parse_service_chaos("kill:leader;raise:slot=7,until=2")
        assert kill.kind == "kill"
        assert raise_.kind == "raise" and raise_.slot == 7 and raise_.until == 2

    def test_rand_targets_survive_parsing(self):
        (spec,) = parse_service_chaos("kill:pid=rand,point=rand")
        assert spec.pid == "rand" and spec.point == "rand"

    @pytest.mark.parametrize(
        "bad",
        [
            "kill:leader,pid=2",  # both targets
            "kill:after=1",  # neither target
            "kill:leader,count=2",  # count without every
            "kill:leader,point=sideways",  # unknown point word
            "raise:until=2",  # raise without slot
            "raise:slot=0",  # slots are 1-based
            "hang:shard=1",  # fabric vocabulary, not service
            "kill:leader,worker=1",  # fabric key on a service clause
            "",  # no clauses
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigurationError):
            parse_service_chaos(bad)

    def test_spec_validation_direct(self):
        with pytest.raises(ConfigurationError):
            ServiceFaultSpec(kind="warp")
        with pytest.raises(ConfigurationError):
            ServiceFaultSpec(kind="kill", leader=True, every=0)


class TestPlan:
    def test_bind_resolves_rand_deterministically(self):
        plan = ServiceFaultPlan.from_spec("kill:pid=rand;raise:slot=rand", seed=11)
        a = plan.bind(replicas=6, slots=40)
        b = plan.bind(replicas=6, slots=40)
        assert a == b
        assert 1 <= a.specs[0].pid <= 6
        assert 1 <= a.specs[1].slot <= 40

    def test_single_kill_fires_once(self):
        plan = ServiceFaultPlan.from_spec("kill:leader,after=2")
        fired = [s for s in range(1, 10) if plan.kills_for(s)]
        assert fired == [3]

    def test_storm_fires_on_period_capped_by_count(self):
        plan = ServiceFaultPlan.from_spec("kill:leader,after=1,every=3,count=3")
        fired = [s for s in range(1, 20) if plan.kills_for(s)]
        assert fired == [2, 5, 8]

    def test_uncapped_storm_keeps_firing(self):
        plan = ServiceFaultPlan.from_spec("kill:leader,every=2")
        fired = [s for s in range(1, 8) if plan.kills_for(s)]
        assert fired == [1, 3, 5, 7]

    def test_transient_raise_stops_after_until(self):
        plan = ServiceFaultPlan.from_spec("raise:slot=4,until=2")
        with pytest.raises(FaultInjected):
            plan.check_slot(4, 0)
        with pytest.raises(FaultInjected):
            plan.check_slot(4, 1)
        plan.check_slot(4, 2)  # retried past until: clean
        plan.check_slot(5, 0)  # other slots never fire

    def test_poison_raise_never_stops(self):
        plan = ServiceFaultPlan.from_spec("raise:slot=2")
        for attempt in range(6):
            with pytest.raises(FaultInjected):
                plan.check_slot(2, attempt)

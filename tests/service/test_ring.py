"""Leader ring: rotation determinism and epoch fencing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.ring import LeaderRing


class TestLeaderRing:
    def test_initial_leader_is_lowest_pid(self):
        ring = LeaderRing(5)
        assert ring.leader == 1
        assert ring.epoch == 1
        assert ring.alive == {1, 2, 3, 4, 5}

    def test_needs_two_replicas(self):
        with pytest.raises(ConfigurationError):
            LeaderRing(1)

    def test_leader_crash_rotates_and_bumps_epoch(self):
        ring = LeaderRing(4)
        assert ring.observe_crashes([1])
        assert ring.leader == 2
        assert ring.epoch == 2
        assert ring.rotations == 1

    def test_follower_crash_keeps_leader_and_epoch(self):
        ring = LeaderRing(4)
        assert not ring.observe_crashes([3])
        assert ring.leader == 1
        assert ring.epoch == 1
        assert ring.rotations == 0

    def test_multi_crash_bumps_epoch_once(self):
        ring = LeaderRing(5)
        assert ring.observe_crashes([1, 2, 4])
        assert ring.leader == 3
        assert ring.epoch == 2  # one rotation, however many died

    def test_successor_wraps_over_dead_pids(self):
        ring = LeaderRing(5)
        ring.observe_crashes([2, 3])
        assert ring.successor(1) == 4
        assert ring.successor(5) == 1
        ring.observe_crashes([1, 4])
        assert ring.successor(5) == 5  # only itself left

    def test_fences_only_current_epoch(self):
        ring = LeaderRing(3)
        stamped = ring.epoch
        assert ring.fences(stamped)
        ring.observe_crashes([1])
        assert not ring.fences(stamped)
        assert ring.fences(ring.epoch)

    def test_observe_is_idempotent_for_known_crashes(self):
        ring = LeaderRing(3)
        ring.observe_crashes([1])
        epoch = ring.epoch
        assert not ring.observe_crashes([1])
        assert ring.epoch == epoch

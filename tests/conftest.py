"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

# pytest's `pythonpath` ini option puts src/ on *this* process's path, but
# subprocess-based tests (examples, CLI smoke) need the child to see it too.
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = (
        _SRC + os.pathsep + os.environ["PYTHONPATH"]
        if os.environ.get("PYTHONPATH")
        else _SRC
    )

from repro.core.crw import CRWConsensus
from repro.sync.crash import CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.util.rng import RandomSource


@pytest.fixture
def rng() -> RandomSource:
    """A fixed-seed random source; tests needing other seeds spawn children."""
    return RandomSource(20060810)  # ICPP'06 flavoured seed


def make_crw(n: int, proposals: list | None = None) -> list[CRWConsensus]:
    """Build n CRW processes with default proposals 100+pid."""
    if proposals is None:
        proposals = [100 + pid for pid in range(1, n + 1)]
    return [CRWConsensus(pid, n, proposals[pid - 1]) for pid in range(1, n + 1)]


def run_crw(
    n: int,
    schedule: CrashSchedule | None = None,
    t: int | None = None,
    proposals: list | None = None,
    rng: RandomSource | None = None,
    max_rounds: int | None = None,
):
    """Run CRW on the extended engine and return the RunResult."""
    engine = ExtendedSynchronousEngine(
        make_crw(n, proposals),
        schedule,
        t=t if t is not None else n - 1,
        rng=rng or RandomSource(1),
    )
    return engine.run(max_rounds)

"""Tests for FIFO channels and the channel network."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.channel import ChannelNetwork, FifoChannel
from repro.net.message import Message, MessageKind


def _msg(s, d, payload=0):
    return Message(MessageKind.DATA, s, d, 1, payload=payload)


class TestFifoChannel:
    def test_no_self_channel(self):
        with pytest.raises(ConfigurationError):
            FifoChannel(1, 1)

    def test_fifo_order(self):
        ch = FifoChannel(1, 2)
        for k in range(5):
            ch.send(_msg(1, 2, payload=k))
        got = [ch.deliver().payload for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_wrong_endpoints_rejected(self):
        ch = FifoChannel(1, 2)
        with pytest.raises(SimulationError):
            ch.send(_msg(2, 1))

    def test_deliver_empty_rejected(self):
        with pytest.raises(SimulationError):
            FifoChannel(1, 2).deliver()

    def test_peek_nondestructive(self):
        ch = FifoChannel(1, 2)
        ch.send(_msg(1, 2, payload=9))
        assert ch.peek().payload == 9
        assert len(ch) == 1

    def test_peek_empty(self):
        assert FifoChannel(1, 2).peek() is None

    def test_in_transit_snapshot(self):
        ch = FifoChannel(1, 2)
        ch.send(_msg(1, 2, payload=1))
        ch.send(_msg(1, 2, payload=2))
        assert [m.payload for m in ch.in_transit] == [1, 2]

    def test_delivered_count(self):
        ch = FifoChannel(1, 2)
        ch.send(_msg(1, 2))
        ch.deliver()
        assert ch.delivered_count == 1


class TestChannelNetwork:
    def test_requires_two_processes(self):
        with pytest.raises(ConfigurationError):
            ChannelNetwork(1)

    def test_full_matrix(self):
        net = ChannelNetwork(4)
        assert len(net.incoming(1)) == 3
        assert len(net.outgoing(1)) == 3

    def test_unknown_channel_rejected(self):
        net = ChannelNetwork(3)
        with pytest.raises(ConfigurationError):
            net.channel(1, 4)
        with pytest.raises(ConfigurationError):
            net.channel(2, 2)

    def test_routing(self):
        net = ChannelNetwork(3)
        net.send(_msg(1, 3))
        assert len(net.channel(1, 3)) == 1
        assert len(net.channel(3, 1)) == 0

    def test_nonempty_and_total(self):
        net = ChannelNetwork(3)
        net.send(_msg(1, 2))
        net.send(_msg(1, 3))
        assert net.total_in_transit() == 2
        assert {(c.sender, c.dest) for c in net.nonempty()} == {(1, 2), (1, 3)}

    def test_nonempty_index_tracks_send_and_deliver(self):
        net = ChannelNetwork(3)
        assert net.nonempty() == [] and net.total_in_transit() == 0
        net.send(_msg(2, 1))
        net.send(_msg(2, 1))
        net.send(_msg(3, 1))
        assert net.total_in_transit() == 3
        assert [(c.sender, c.dest) for c in net.nonempty()] == [(2, 1), (3, 1)]
        net.channel(2, 1).deliver()
        # One message left on (2,1): still indexed nonempty.
        assert net.total_in_transit() == 2
        assert [(c.sender, c.dest) for c in net.nonempty()] == [(2, 1), (3, 1)]
        net.channel(2, 1).deliver()
        assert [(c.sender, c.dest) for c in net.nonempty()] == [(3, 1)]
        net.channel(3, 1).deliver()
        assert net.nonempty() == [] and net.total_in_transit() == 0

    def test_index_correct_via_directly_held_channel(self):
        # The index must stay right when callers bypass ChannelNetwork.send
        # and drive a FifoChannel they obtained from the network.
        net = ChannelNetwork(3)
        ch = net.channel(1, 2)
        ch.send(_msg(1, 2))
        assert net.total_in_transit() == 1
        assert net.nonempty() == [ch]
        ch.deliver()
        assert net.total_in_transit() == 0 and net.nonempty() == []

    def test_nonempty_order_is_stable(self):
        # Same (sender, dest) ascending order as the full-matrix scan,
        # regardless of traffic order.
        net = ChannelNetwork(4)
        for s, d in [(3, 1), (1, 4), (2, 3), (1, 2)]:
            net.send(_msg(s, d))
        assert [(c.sender, c.dest) for c in net.nonempty()] == [
            (1, 2), (1, 4), (2, 3), (3, 1),
        ]

    def test_incoming_outgoing_order_unchanged(self):
        net = ChannelNetwork(4)
        net.send(_msg(3, 1))
        assert [(c.sender, c.dest) for c in net.incoming(1)] == [(2, 1), (3, 1), (4, 1)]
        assert [(c.sender, c.dest) for c in net.outgoing(1)] == [(1, 2), (1, 3), (1, 4)]

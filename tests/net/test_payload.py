"""Tests for payload bit-sizing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net.payload import SizedValue, bit_size


class TestBitSize:
    def test_none_is_zero(self):
        assert bit_size(None) == 0

    def test_bool_is_one(self):
        assert bit_size(True) == 1
        assert bit_size(False) == 1

    def test_int_width(self):
        assert bit_size(0) == 2  # 1 magnitude bit + sign
        assert bit_size(1) == 2
        assert bit_size(255) == 9
        assert bit_size(-255) == 9

    def test_float_is_64(self):
        assert bit_size(3.14) == 64

    def test_str_utf8(self):
        assert bit_size("ab") == 16
        assert bit_size("é") == 16  # two UTF-8 bytes

    def test_bytes(self):
        assert bit_size(b"abc") == 24

    def test_tuple_framing(self):
        assert bit_size((True, True)) == 8 + 2

    def test_dict_framing(self):
        assert bit_size({True: False}) == 8 + 2

    def test_nested(self):
        inner = bit_size((1, 2))
        assert bit_size(((1, 2),)) == 8 + inner

    def test_unsizable_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_size(object())

    def test_object_with_bit_size_method(self):
        class Custom:
            def bit_size(self):
                return 17

        assert bit_size(Custom()) == 17

    @given(st.integers())
    def test_int_symmetry(self, v):
        assert bit_size(v) == bit_size(-v)


class TestMemoization:
    """bit_size caches leaf/sized payloads without conflating equal values."""

    def test_bool_int_float_never_share_a_slot(self):
        # True == 1 == 1.0 in Python; the type-qualified cache key must
        # keep their different widths apart in either query order.
        assert bit_size(True) == 1
        assert bit_size(1) == 2
        assert bit_size(1.0) == 64
        assert bit_size(True) == 1  # still right after the others cached

    def test_container_equality_does_not_leak(self):
        # (1, 1) == (True, True) with equal hashes; containers are sized
        # structurally every time precisely so this cannot collide.
        assert bit_size((1, 1)) == 8 + 4
        assert bit_size((True, True)) == 8 + 2
        assert bit_size((1, 1)) == 8 + 4

    def test_repeated_sized_value_stable(self):
        v = SizedValue("proposal", 1024)
        assert bit_size(v) == bit_size(v) == 1024

    def test_unhashable_payload_falls_through(self):
        assert bit_size([1, 2]) == 8 + 2 + 3
        assert bit_size({1: "a"}) == 8 + 2 + 8
        assert bit_size({1, 2}) == 8 + 2 + 3

    def test_unhashable_sized_object(self):
        class UnhashableSized:
            __hash__ = None  # type: ignore[assignment]

            def bit_size(self):
                return 7

        assert bit_size(UnhashableSized()) == 7

    def test_int_subclass_not_cached_as_int(self):
        class WideInt(int):
            def bit_size(self):
                return 4096

        assert bit_size(WideInt(1)) == 4096
        assert bit_size(1) == 2


class TestSizedValue:
    def test_declared_width_wins(self):
        assert bit_size(SizedValue("anything", 1024)) == 1024

    def test_width_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SizedValue(1, 0)

    def test_equality_semantic(self):
        assert SizedValue(5, 64) == SizedValue(5, 64)
        assert SizedValue(5, 64) != SizedValue(6, 64)
        assert SizedValue(5, 64) != SizedValue(5, 32)

    def test_hashable(self):
        assert len({SizedValue(1, 8), SizedValue(1, 8)}) == 1

    def test_inside_containers(self):
        assert bit_size((SizedValue(1, 100),)) == 108

"""Tests for MessageStats accounting."""

from __future__ import annotations

from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.net.payload import SizedValue


def _data(bits=8):
    return Message(MessageKind.DATA, 1, 2, 1, payload=SizedValue(0, bits))


def _control():
    return Message(MessageKind.CONTROL, 1, 2, 1)


class TestMessageStats:
    def test_send_vs_deliver_separated(self):
        s = MessageStats()
        s.on_send(_data())
        assert (s.data_sent, s.data_delivered) == (1, 0)
        s.on_deliver(_data())
        assert (s.data_sent, s.data_delivered) == (1, 1)

    def test_bits_accumulate(self):
        s = MessageStats()
        s.on_send(_data(10))
        s.on_send(_control())
        assert s.bits_sent == 11
        assert s.bits_delivered == 0

    def test_kind_routing(self):
        s = MessageStats()
        s.on_send(Message(MessageKind.ASYNC, 1, 2, 1, payload=SizedValue(0, 8), tag="x"))
        s.on_send(Message(MessageKind.MARKER, 1, 2))
        s.on_send(_control())
        s.on_send(_data())
        assert s.async_sent == 1
        assert s.marker_sent == 1
        assert s.control_sent == 1
        assert s.data_sent == 1
        assert s.messages_sent == 4

    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.on_send(_data(8))
        b.on_send(_control())
        b.on_deliver(_control())
        a.merge(b)
        assert a.messages_sent == 2
        assert a.control_delivered == 1
        assert a.bits_sent == 9

    def test_str_smoke(self):
        s = MessageStats()
        s.on_send(_data())
        assert "data 1/0" in str(s)

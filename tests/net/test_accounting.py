"""Tests for MessageStats accounting."""

from __future__ import annotations

from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.net.payload import SizedValue


def _data(bits=8):
    return Message(MessageKind.DATA, 1, 2, 1, payload=SizedValue(0, bits))


def _control():
    return Message(MessageKind.CONTROL, 1, 2, 1)


class TestMessageStats:
    def test_send_vs_deliver_separated(self):
        s = MessageStats()
        s.on_send(_data())
        assert (s.data_sent, s.data_delivered) == (1, 0)
        s.on_deliver(_data())
        assert (s.data_sent, s.data_delivered) == (1, 1)

    def test_bits_accumulate(self):
        s = MessageStats()
        s.on_send(_data(10))
        s.on_send(_control())
        assert s.bits_sent == 11
        assert s.bits_delivered == 0

    def test_kind_routing(self):
        s = MessageStats()
        s.on_send(Message(MessageKind.ASYNC, 1, 2, 1, payload=SizedValue(0, 8), tag="x"))
        s.on_send(Message(MessageKind.MARKER, 1, 2))
        s.on_send(_control())
        s.on_send(_data())
        assert s.async_sent == 1
        assert s.marker_sent == 1
        assert s.control_sent == 1
        assert s.data_sent == 1
        assert s.messages_sent == 4

    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.on_send(_data(8))
        b.on_send(_control())
        b.on_deliver(_control())
        a.merge(b)
        assert a.messages_sent == 2
        assert a.control_delivered == 1
        assert a.bits_sent == 9

    def test_str_smoke(self):
        s = MessageStats()
        s.on_send(_data())
        assert "data 1/0" in str(s)


class TestBulkInterface:
    """The batch counters must be totals-equivalent to the per-message API."""

    def test_bulk_data_matches_per_message(self):
        per_msg, bulk = MessageStats(), MessageStats()
        payloads = [SizedValue(0, 8), SizedValue(1, 8), SizedValue(2, 24)]
        for i, payload in enumerate(payloads):
            msg = Message(MessageKind.DATA, 1, 2 + i, 1, payload=payload)
            per_msg.on_send(msg)
            per_msg.on_deliver(msg)
        bulk.bulk_data(3, 8 + 8 + 24)
        bulk.bulk_data(3, 8 + 8 + 24, delivered=True)
        assert bulk == per_msg

    def test_bulk_data_sent_only(self):
        s = MessageStats()
        s.bulk_data(5, 40)
        assert (s.data_sent, s.data_delivered) == (5, 0)
        assert (s.bits_sent, s.bits_delivered) == (40, 0)

    def test_bulk_control_matches_per_message(self):
        per_msg, bulk = MessageStats(), MessageStats()
        for dest in (2, 3, 4):
            msg = Message(MessageKind.CONTROL, 1, dest, 1)
            per_msg.on_send(msg)
            if dest != 4:  # one control message dropped
                per_msg.on_deliver(msg)
        bulk.bulk_control(sent=3, delivered=2)
        assert bulk == per_msg

    def test_bulk_merge_roundtrip(self):
        a, b = MessageStats(), MessageStats()
        a.bulk_data(2, 16)
        b.bulk_control(4, 4)
        a.merge(b)
        assert a.messages_sent == 6
        assert a.bits_sent == 20
        assert a.bits_delivered == 4

"""Tests for Message bit accounting per kind."""

from __future__ import annotations

from repro.net.message import Message, MessageKind
from repro.net.payload import SizedValue


class TestMessageBits:
    def test_control_is_one_bit(self):
        # Theorem 2: a commit message costs exactly one bit.
        msg = Message(MessageKind.CONTROL, 1, 2, 1)
        assert msg.bits() == 1

    def test_marker_is_one_bit(self):
        assert Message(MessageKind.MARKER, 1, 2).bits() == 1

    def test_data_costs_payload(self):
        msg = Message(MessageKind.DATA, 1, 2, 1, payload=SizedValue(7, 64))
        assert msg.bits() == 64

    def test_async_carries_round_header(self):
        # Section 4: asynchronous messages must carry their round number.
        data = Message(MessageKind.DATA, 1, 2, 5, payload=SizedValue(7, 64))
        asy = Message(MessageKind.ASYNC, 1, 2, 5, payload=SizedValue(7, 64), tag="EST")
        assert asy.bits() == data.bits() + 40

    def test_no_stray_attributes(self):
        # Message is treat-as-immutable but no longer `frozen` (the async
        # hot path builds one per message; see the class docstring).  The
        # slots layout still rejects unknown attributes, so typos fail
        # loudly and instances cannot grow hidden state.
        msg = Message(MessageKind.DATA, 1, 2, 1, payload=1)
        try:
            msg.paylod = 2  # type: ignore[attr-defined]
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_hashes_by_value(self):
        a = Message(MessageKind.DATA, 1, 2, 1, payload=1)
        b = Message(MessageKind.DATA, 1, 2, 1, payload=1)
        assert a == b and hash(a) == hash(b)

    def test_str_mentions_endpoints(self):
        s = str(Message(MessageKind.DATA, 3, 4, 2, payload=9))
        assert "3->4" in s and "r2" in s

"""Smoke tests: every example script must run clean from a fresh process.

Examples are part of the public deliverable; breaking one is a regression
even when the library tests stay green.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three examples"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script: pathlib.Path):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} printed nothing"


def test_quickstart_mentions_bound():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert "f+1" in proc.stdout

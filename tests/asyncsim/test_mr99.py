"""Tests for MR99 — the Section-4 bridge target."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asyncsim.failure_detector import DetectorSpec
from repro.asyncsim.mr99 import BOT, MR99Consensus
from repro.asyncsim.network import GstDelay, LogNormalDelay, UniformDelay
from repro.asyncsim.runner import AsyncCrash, AsyncRunner
from repro.errors import ConfigurationError
from repro.util.rng import RandomSource


def run_mr99(
    n,
    t,
    proposals=None,
    crashes=(),
    delay_model=None,
    detector_spec=None,
    seed=1,
    until=10_000.0,
):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    procs = [MR99Consensus(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)]
    runner = AsyncRunner(
        procs,
        t=t,
        crashes=crashes,
        delay_model=delay_model,
        detector_spec=detector_spec,
        rng=RandomSource(seed),
    )
    return runner.run(until=until)


class TestConstruction:
    def test_majority_required(self):
        with pytest.raises(ConfigurationError):
            MR99Consensus(1, 4, 0, t=2)  # t < n/2 violated

    def test_coordinator_rotation(self):
        assert MR99Consensus.coordinator(1, 5) == 1
        assert MR99Consensus.coordinator(5, 5) == 5
        assert MR99Consensus.coordinator(6, 5) == 1

    def test_bot_singleton(self):
        from repro.asyncsim.mr99 import _Bot

        assert _Bot() is BOT
        assert BOT.bit_size() == 1


class TestFailureFree:
    def test_decides_first_coordinator_value(self):
        result = run_mr99(5, t=2)
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {101}

    def test_single_round_when_detector_accurate(self):
        result = run_mr99(5, t=2)
        assert all(r == 1 for r in result.decision_rounds.values())

    def test_two_step_structure_message_count(self):
        # Round 1, no crash: 1 EST broadcast (n-1 wire messages: self-delivery
        # is local) + n AUX broadcasts (n*(n-1)) + n DECIDE floods (n*(n-1)).
        n = 4
        result = run_mr99(n, t=1)
        expected = (n - 1) + n * (n - 1) + n * (n - 1)
        assert result.stats.async_sent == expected


class TestCrashes:
    def test_dead_coordinator_skipped_via_suspicion(self):
        # p1 crashes before starting: everyone eventually suspects it,
        # aux = ⊥ in round 1, and round 2's coordinator (p2) decides.
        result = run_mr99(5, t=2, crashes=[AsyncCrash(1, 0.0)])
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {102}

    def test_cascade_of_dead_coordinators(self):
        result = run_mr99(
            7, t=3, crashes=[AsyncCrash(1, 0.0), AsyncCrash(2, 0.0), AsyncCrash(3, 0.0)]
        )
        assert result.check_consensus() == []
        assert set(result.decisions.values()) == {104}
        # At most t+1 rounds when crashes are immediate and the FD accurate.
        assert max(result.decision_rounds.values()) <= 4

    def test_late_crash_after_decision_harmless(self):
        result = run_mr99(5, t=2, crashes=[AsyncCrash(2, 5000.0)])
        assert result.check_consensus() == []

    def test_decide_flood_unblocks_laggards(self):
        # Crash mid-protocol with slow heavy-tailed delays: the DECIDE flood
        # must still get every correct process out.
        result = run_mr99(
            5,
            t=2,
            crashes=[AsyncCrash(3, 1.0)],
            delay_model=LogNormalDelay(mu=0.5, sigma=1.0),
            seed=9,
        )
        assert result.check_consensus() == []


class TestIndulgence:
    def test_false_suspicions_cost_rounds_not_safety(self):
        # Aggressive churn before stabilization: wrong coordinators get
        # suspected, rounds are wasted, but agreement and validity hold.
        spec = DetectorSpec(
            stabilization_time=30.0,
            detection_latency=1.0,
            churn_rate=2.0,
            false_suspicion_duration=3.0,
        )
        result = run_mr99(
            5,
            t=2,
            detector_spec=spec,
            delay_model=GstDelay(gst=30.0, wild=10.0, bound=1.0),
            seed=5,
        )
        assert result.check_consensus() == []

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_property_uniform_consensus_under_chaos(self, data):
        n = data.draw(st.sampled_from([3, 4, 5, 7]), label="n")
        t = (n - 1) // 2
        f = data.draw(st.integers(0, t), label="f")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        proposals = data.draw(
            st.lists(st.integers(0, 2), min_size=n, max_size=n), label="proposals"
        )
        crash_times = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=20.0),
                min_size=f,
                max_size=f,
            ),
            label="crash_times",
        )
        victims = data.draw(
            st.lists(st.integers(1, n), min_size=f, max_size=f, unique=True),
            label="victims",
        )
        spec = DetectorSpec(
            stabilization_time=25.0,
            detection_latency=1.0,
            churn_rate=0.5,
            false_suspicion_duration=2.0,
        )
        result = run_mr99(
            n,
            t,
            proposals=proposals,
            crashes=[AsyncCrash(p, at) for p, at in zip(victims, crash_times)],
            delay_model=GstDelay(gst=25.0, wild=5.0, bound=1.0),
            detector_spec=spec,
            seed=seed,
        )
        assert result.check_consensus() == [], result.decisions


class TestDecideFloodRound:
    """Regression: the DECIDE flood must carry the original deciding round."""

    class _FakeCtx:
        """Just enough ProcessContext for one handler invocation."""

        def __init__(self, n):
            self.n = n
            self.now = 42.0
            self.broadcasts = []

        def broadcast(self, tag, payload, round_no=0):
            self.broadcasts.append((tag, payload, round_no))

        def suspects(self, pid):
            return False

    def test_flood_learner_records_original_round(self):
        from repro.net.message import Message, MessageKind

        p = MR99Consensus(2, 5, 100, t=2)
        p.ctx = self._FakeCtx(5)
        # p sits in round 1; a DECIDE from a process that decided in
        # round 7 arrives through the flood.
        p.on_message(Message(MessageKind.ASYNC, 4, 2, 7, payload=104, tag="DECIDE"))
        assert p.decided and p.decision == 104
        # Previously: decision_round == p.r == 1 (the relayer's own round).
        assert p.decision_round == 7

    def test_relay_propagates_round_unchanged(self):
        from repro.net.message import Message, MessageKind

        p = MR99Consensus(3, 5, 100, t=2)
        p.ctx = self._FakeCtx(5)
        p.on_message(Message(MessageKind.ASYNC, 4, 3, 7, payload=104, tag="DECIDE"))
        assert p.ctx.broadcasts == [("DECIDE", 104, 7)]

    def test_run_level_flood_round_consistency(self):
        # Slow heavy-tailed delays + a mid-protocol crash: laggards learn
        # through the flood.  Every process must record the same deciding
        # round as the originator (pre-fix, learners stamped their own).
        result = run_mr99(
            5,
            t=2,
            crashes=[AsyncCrash(3, 1.0)],
            delay_model=LogNormalDelay(mu=0.5, sigma=1.0),
            seed=9,
        )
        assert result.check_consensus() == []
        assert len(set(result.decision_rounds.values())) == 1

    def test_flood_round_consistency_across_seeds(self):
        spec = DetectorSpec(
            stabilization_time=15.0,
            detection_latency=1.0,
            churn_rate=1.0,
            false_suspicion_duration=2.0,
        )
        for seed in range(10):
            result = run_mr99(
                5,
                t=2,
                crashes=[AsyncCrash(1, 0.0), AsyncCrash(5, 3.0)],
                delay_model=GstDelay(gst=15.0, wild=5.0, bound=1.0),
                detector_spec=spec,
                seed=seed,
            )
            assert result.check_consensus() == []
            assert len(set(result.decisions.values())) == 1
            # One decision propagated by the flood: every learner records
            # the originator's round (pre-fix these scenarios produced
            # two or three distinct recorded rounds).
            assert len(set(result.decision_rounds.values())) == 1, (
                seed,
                result.decision_rounds,
            )

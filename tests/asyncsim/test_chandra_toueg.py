"""Tests for the Chandra-Toueg ◇S consensus (paper reference [5])."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asyncsim.chandra_toueg import ChandraTouegConsensus
from repro.asyncsim.failure_detector import DetectorSpec
from repro.asyncsim.network import GstDelay, LogNormalDelay
from repro.asyncsim.runner import AsyncCrash, AsyncRunner
from repro.errors import ConfigurationError
from repro.util.rng import RandomSource


def run_ct(
    n,
    t,
    proposals=None,
    crashes=(),
    delay_model=None,
    detector_spec=None,
    seed=1,
):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    procs = [
        ChandraTouegConsensus(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)
    ]
    runner = AsyncRunner(
        procs,
        t=t,
        crashes=crashes,
        delay_model=delay_model,
        detector_spec=detector_spec or DetectorSpec(detection_latency=1.0),
        rng=RandomSource(seed),
    )
    return runner.run()


class TestConstruction:
    def test_majority_required(self):
        with pytest.raises(ConfigurationError):
            ChandraTouegConsensus(1, 4, 0, t=2)

    def test_coordinator_rotation(self):
        assert ChandraTouegConsensus.coordinator(1, 5) == 1
        assert ChandraTouegConsensus.coordinator(6, 5) == 1


class TestFailureFree:
    def test_decides_first_coordinator_pick(self):
        result = run_ct(5, t=2)
        assert result.check_consensus() == []
        # Round 1, all timestamps 0: the max-ts pick is among the first
        # majority of estimates to arrive; any proposal is valid, but all
        # deciders must agree.
        assert len(set(result.decisions.values())) == 1

    def test_every_correct_process_decides(self):
        result = run_ct(7, t=3)
        assert sorted(result.decisions) == list(range(1, 8))


class TestCrashes:
    def test_dead_first_coordinator(self):
        result = run_ct(5, t=2, crashes=[AsyncCrash(1, 0.0)])
        assert result.check_consensus() == []
        assert 1 not in result.decisions

    def test_coordinator_cascade(self):
        result = run_ct(7, t=3, crashes=[AsyncCrash(pid, 0.0) for pid in (1, 2, 3)])
        assert result.check_consensus() == []
        # p4 is the first live coordinator; decision = its round-4 pick.
        assert set(result.decisions.values()) <= {104, 105, 106, 107}

    def test_crash_after_try_broadcast(self):
        # The coordinator dies mid-protocol at an arbitrary time; the relay
        # discipline on DECIDE and the next rounds must keep things uniform.
        result = run_ct(
            5,
            t=2,
            crashes=[AsyncCrash(1, 2.0)],
            delay_model=LogNormalDelay(mu=0.0, sigma=0.8),
            seed=11,
        )
        assert result.check_consensus() == []


class TestIndulgence:
    def test_churn_wastes_rounds_not_safety(self):
        spec = DetectorSpec(
            stabilization_time=25.0,
            detection_latency=1.0,
            churn_rate=1.5,
            false_suspicion_duration=2.5,
        )
        result = run_ct(
            5,
            t=2,
            detector_spec=spec,
            delay_model=GstDelay(gst=25.0, wild=6.0, bound=1.0),
            seed=3,
        )
        assert result.check_consensus() == []

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_property_uniform_consensus_under_chaos(self, data):
        n = data.draw(st.sampled_from([3, 5, 7]), label="n")
        t = (n - 1) // 2
        f = data.draw(st.integers(0, t), label="f")
        seed = data.draw(st.integers(0, 2**32), label="seed")
        victims = data.draw(
            st.lists(st.integers(1, n), min_size=f, max_size=f, unique=True),
            label="victims",
        )
        times = data.draw(
            st.lists(st.floats(0.0, 15.0), min_size=f, max_size=f), label="times"
        )
        spec = DetectorSpec(
            stabilization_time=20.0,
            detection_latency=1.0,
            churn_rate=0.4,
            false_suspicion_duration=2.0,
        )
        result = run_ct(
            n,
            t,
            crashes=[AsyncCrash(p, at) for p, at in zip(victims, times)],
            delay_model=GstDelay(gst=20.0, wild=4.0, bound=1.0),
            detector_spec=spec,
            seed=seed,
        )
        assert result.check_consensus() == [], result.decisions


class TestBridgeComparison:
    def test_ct_and_mr99_realize_the_same_lock(self):
        """Both asynchronous algorithms decide a single locked value under
        the same failure scenario — the paper's family claim."""
        from repro.asyncsim.mr99 import MR99Consensus

        n, t = 5, 2
        crashes = [AsyncCrash(1, 0.0)]
        ct = run_ct(n, t, crashes=list(crashes))
        mr_procs = [MR99Consensus(pid, n, 100 + pid, t) for pid in range(1, n + 1)]
        mr = AsyncRunner(
            mr_procs,
            t=t,
            crashes=list(crashes),
            detector_spec=DetectorSpec(detection_latency=1.0),
            rng=RandomSource(1),
        ).run()
        assert ct.check_consensus() == []
        assert mr.check_consensus() == []
        assert len(set(ct.decisions.values())) == 1
        assert len(set(mr.decisions.values())) == 1

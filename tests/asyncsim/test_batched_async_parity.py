"""Batched columnar tables vs per-object stepping: byte-identical runs.

The async analogue of ``tests/sync/test_batched_parity.py``: for every
algorithm with a registered :class:`repro.asyncsim.process.AsyncBatchedTable`,
driving the run through the table (raw tuple deliveries, guarded progress
re-evaluation, no ``Message`` objects) must be observably identical to
per-object stepping — decisions, decision times *and rounds*, crash map,
simulated time, executed event count, and every stats counter.  This grid
is the contract the fast path's wake-condition guards are verified
against: a guard that wrongly skips a ``_progress`` call shows up here as
a diverging record.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.asyncsim.chandra_toueg import ChandraTouegConsensus
from repro.asyncsim.failure_detector import DetectorSpec
from repro.asyncsim.mr99 import MR99Consensus
from repro.asyncsim.network import (
    ConstantDelay,
    GstDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.asyncsim.runner import AsyncCrash, AsyncRunner
from repro.errors import ConfigurationError
from repro.util.rng import RandomSource

ALGORITHMS = {
    "mr99": MR99Consensus,
    "chandra-toueg": ChandraTouegConsensus,
}

DELAY_MODELS = {
    "uniform": UniformDelay(),
    "constant": ConstantDelay(1.0),
    "lognormal": LogNormalDelay(mu=0.5, sigma=1.0),
    "gst": GstDelay(gst=20.0, wild=4.0, bound=1.0),
}

ADVERSARIES = {
    "none": [],
    "coordinator-killer": [AsyncCrash(1, 0.0), AsyncCrash(2, 0.0)],
    "staggered": [AsyncCrash(7, 0.0), AsyncCrash(6, 1.0), AsyncCrash(5, 2.0)],
    "late": [AsyncCrash(3, 6.5)],
}

CHURNY = DetectorSpec(
    stabilization_time=20.0,
    detection_latency=1.0,
    churn_rate=0.4,
    false_suspicion_duration=2.0,
)


def _run(cls, batched, *, seed, crashes, delay_model, n=7, t=3):
    procs = [cls(pid, n, 100 + pid, t) for pid in range(1, n + 1)]
    runner = AsyncRunner(
        procs,
        t=t,
        crashes=list(crashes),
        delay_model=delay_model,
        detector_spec=CHURNY,
        rng=RandomSource(seed),
        batched=batched,
    )
    return runner.run()


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
@pytest.mark.parametrize("delay", sorted(DELAY_MODELS))
@pytest.mark.parametrize("adversary", sorted(ADVERSARIES))
def test_batched_equals_per_object(algorithm, delay, adversary):
    cls = ALGORITHMS[algorithm]
    for seed in range(5):
        batched = _run(
            cls,
            None,  # auto-detects the registered table
            seed=seed,
            crashes=ADVERSARIES[adversary],
            delay_model=DELAY_MODELS[delay],
        )
        reference = _run(
            cls,
            False,
            seed=seed,
            crashes=ADVERSARIES[adversary],
            delay_model=DELAY_MODELS[delay],
        )
        assert dataclasses.asdict(batched) == dataclasses.asdict(reference), (
            algorithm,
            delay,
            adversary,
            seed,
        )


def test_batched_runs_actually_use_the_table():
    procs = [MR99Consensus(pid, 5, pid, 2) for pid in range(1, 6)]
    runner = AsyncRunner(procs, t=2, rng=RandomSource(0))
    assert runner._table is not None  # auto-detection engaged
    runner.run()
    # The table is the authoritative state carrier; decisions were
    # mirrored back onto the process objects.
    assert all(p.decided for p in procs)
    assert len({p.decision for p in procs}) == 1


def test_batched_true_requires_a_table():
    from repro.asyncsim.process import AsyncProcess

    class Bare(AsyncProcess):
        def on_start(self):
            self.decide(0)

        def on_message(self, msg):
            pass

    procs = [Bare(pid, 3) for pid in range(1, 4)]
    with pytest.raises(ConfigurationError):
        AsyncRunner(procs, t=0, rng=RandomSource(0), batched=True)


def test_legacy_custom_delay_model_still_receives_messages():
    # Backward compatibility: a subclass written against the documented
    # delay(msg, now, rng) signature — without knowing about the
    # per_message flag — must keep receiving real Message objects.  The
    # flag defaults to True on the base class; only models that opt out
    # (all built-ins do) ride the pooled tuple path.
    from repro.asyncsim.network import DelayModel

    class PayloadDelay(DelayModel):
        def delay(self, msg, now, rng):
            return 0.001 * len(str(msg.payload))  # inspects the message

    assert PayloadDelay.per_message is True
    procs = [MR99Consensus(pid, 5, pid, 2) for pid in range(1, 6)]
    runner = AsyncRunner(procs, t=2, delay_model=PayloadDelay(), rng=RandomSource(3))
    assert runner._table is None  # pooling (and thus batching) stays off
    result = runner.run()
    assert result.check_consensus() == []


def test_per_message_delay_model_falls_back_to_objects():
    class Nosy(UniformDelay):
        per_message = True  # inspects the message: pooled path must stay off

        def delay(self, msg, now, rng):
            assert msg is not None  # the contract the flag buys
            return super().delay(msg, now, rng)

    procs = [MR99Consensus(pid, 5, pid, 2) for pid in range(1, 6)]
    runner = AsyncRunner(
        procs, t=2, delay_model=Nosy(), rng=RandomSource(1), batched=None
    )
    assert runner._table is None  # table unavailable without pooling
    result = runner.run()
    assert result.check_consensus() == []


def test_mixed_process_types_fall_back():
    procs = [
        MR99Consensus(1, 3, 1, 1),
        MR99Consensus(2, 3, 2, 1),
        ChandraTouegConsensus(3, 3, 3, 1),
    ]
    runner = AsyncRunner(procs, t=1, rng=RandomSource(0))
    assert runner._table is None

"""Tests for delay models, the async network, and the simulated detector."""

from __future__ import annotations

import pytest

from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import DetectorSpec, SimulatedDiamondS
from repro.asyncsim.network import (
    AsyncNetwork,
    ConstantDelay,
    GstDelay,
    LogNormalDelay,
    UniformDelay,
)
from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.util.rng import RandomSource


def amsg(s=1, d=2, tag="T"):
    return Message(MessageKind.ASYNC, s, d, 1, payload=0, tag=tag)


class TestDelayModels:
    def test_constant(self):
        assert ConstantDelay(2.0).delay(amsg(), 0.0, RandomSource(1)) == 2.0

    def test_constant_validates(self):
        with pytest.raises(ConfigurationError):
            ConstantDelay(-1.0)

    def test_uniform_bounds(self):
        m = UniformDelay(1.0, 2.0)
        for k in range(50):
            d = m.delay(amsg(), 0.0, RandomSource(k))
            assert 1.0 <= d <= 2.0

    def test_uniform_validates(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(2.0, 1.0)

    def test_lognormal_positive(self):
        m = LogNormalDelay()
        assert all(m.delay(amsg(), 0.0, RandomSource(k)) > 0 for k in range(20))

    def test_gst_regimes(self):
        m = GstDelay(gst=10.0, wild=50.0, bound=1.0)
        late = [m.delay(amsg(), 11.0, RandomSource(k)) for k in range(50)]
        assert all(d <= 1.0 for d in late)

    def test_gst_validates(self):
        with pytest.raises(ConfigurationError):
            GstDelay(gst=-1)


class TestAsyncNetwork:
    def test_delivery_after_delay(self):
        q = EventQueue()
        got = []
        net = AsyncNetwork(q, ConstantDelay(3.0), RandomSource(1), got.append)
        net.send(amsg())
        q.run()
        assert len(got) == 1 and q.now == 3.0
        assert net.stats.async_sent == net.stats.async_delivered == 1

    def test_rejects_non_async(self):
        q = EventQueue()
        net = AsyncNetwork(q, ConstantDelay(1.0), RandomSource(1), lambda m: None)
        with pytest.raises(ConfigurationError):
            net.send(Message(MessageKind.DATA, 1, 2, 1, payload=0))


class TestSimulatedDiamondS:
    def test_completeness(self):
        # A crash is eventually reported to every observer.
        q = EventQueue()
        fd = SimulatedDiamondS(3, q, DetectorSpec(detection_latency=1.0), RandomSource(1))
        fd.notify_crash(2)
        q.run()
        assert fd.suspects(1, 2) and fd.suspects(3, 2)

    def test_latency_bound(self):
        q = EventQueue()
        fd = SimulatedDiamondS(3, q, DetectorSpec(detection_latency=1.0), RandomSource(1))
        q.schedule(5.0, lambda: fd.notify_crash(2))
        q.run()
        assert q.now <= 6.0  # detection within latency of the crash

    def test_accuracy_after_stabilization(self):
        # No churn configured: nothing but real crashes is ever suspected.
        q = EventQueue()
        fd = SimulatedDiamondS(4, q, DetectorSpec(), RandomSource(1))
        q.run()
        for obs in range(1, 5):
            assert fd.suspected(obs) == frozenset()

    def test_churn_produces_and_retracts_false_suspicions(self):
        q = EventQueue()
        changes = []
        fd = SimulatedDiamondS(
            4,
            q,
            DetectorSpec(
                stabilization_time=50.0,
                churn_rate=1.0,
                false_suspicion_duration=2.0,
            ),
            RandomSource(3),
            on_change=changes.append,
        )
        q.run(until=100.0)
        assert changes, "churn should have produced suspicion changes"
        # After stabilization + duration, all false suspicions retracted.
        for obs in range(1, 5):
            assert fd.suspected(obs) == frozenset()

    def test_on_change_fired_for_real_crash(self):
        q = EventQueue()
        changes = []
        fd = SimulatedDiamondS(
            3, q, DetectorSpec(detection_latency=0.5), RandomSource(1), changes.append
        )
        fd.notify_crash(3)
        q.run()
        assert set(changes) == {1, 2}

    def test_ground_truth_exposed(self):
        q = EventQueue()
        fd = SimulatedDiamondS(3, q, DetectorSpec(), RandomSource(1))
        fd.notify_crash(1)
        assert fd.ground_truth_crashed == frozenset({1})

"""Validation and edge cases for the async runner."""

from __future__ import annotations

import pytest

from repro.asyncsim.mr99 import MR99Consensus
from repro.asyncsim.process import AsyncProcess, ProcessContext
from repro.asyncsim.runner import AsyncCrash, AsyncRunner
from repro.errors import ConfigurationError, ModelViolationError
from repro.util.rng import RandomSource


def mr99(n, t):
    return [MR99Consensus(pid, n, pid, t) for pid in range(1, n + 1)]


class TestRunnerValidation:
    def test_needs_processes(self):
        with pytest.raises(ConfigurationError):
            AsyncRunner([], t=0)

    def test_pids_must_cover_range(self):
        procs = mr99(5, 2)
        with pytest.raises(ConfigurationError):
            AsyncRunner(procs[:-1], t=2)

    def test_crash_budget(self):
        with pytest.raises(ConfigurationError):
            AsyncRunner(
                mr99(5, 2),
                t=2,
                crashes=[AsyncCrash(pid, 0.0) for pid in (1, 2, 3)],
            )

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncRunner(
                mr99(5, 2),
                t=2,
                crashes=[AsyncCrash(1, 0.0), AsyncCrash(1, 5.0)],
            )

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncCrash(1, -1.0)

    def test_double_attach_rejected(self):
        procs = mr99(3, 1)
        runner = AsyncRunner(procs, t=1)
        with pytest.raises(ConfigurationError):
            procs[0].attach(
                ProcessContext(1, 3, runner.queue, runner.network, runner.detector, lambda m: None)
            )


class TestDecisionDiscipline:
    def test_idempotent_same_value(self):
        class Once(AsyncProcess):
            def on_start(self):
                self.decide(7)
                self.decide(7)  # same value: tolerated (reliable-broadcast relays)

            def on_message(self, msg):
                pass

        procs = [Once(pid, 2) for pid in (1, 2)]
        result = AsyncRunner(procs, t=0, rng=RandomSource(1)).run()
        assert result.decisions == {1: 7, 2: 7}

    def test_conflicting_decide_raises(self):
        class Flip(AsyncProcess):
            def on_start(self):
                self.decide(1)
                self.decide(2)

            def on_message(self, msg):
                pass

        procs = [Flip(pid, 2) for pid in (1, 2)]
        runner = AsyncRunner(procs, t=0, rng=RandomSource(1))
        with pytest.raises(ModelViolationError):
            runner.run()

    def test_bad_destination_raises(self):
        class Wild(AsyncProcess):
            def on_start(self):
                self.ctx.send(99, "X", None)

            def on_message(self, msg):
                pass

        procs = [Wild(pid, 2) for pid in (1, 2)]
        runner = AsyncRunner(procs, t=0, rng=RandomSource(1))
        with pytest.raises(ModelViolationError):
            runner.run()


class TestDeterminism:
    def test_same_seed_same_run(self):
        def once(seed):
            result = AsyncRunner(
                mr99(5, 2),
                t=2,
                crashes=[AsyncCrash(1, 0.5)],
                rng=RandomSource(seed),
            ).run()
            return (result.decisions, result.sim_time, result.stats.async_sent)

        assert once(9) == once(9)

    def test_stats_sent_geq_delivered(self):
        result = AsyncRunner(
            mr99(5, 2), t=2, crashes=[AsyncCrash(2, 1.0)], rng=RandomSource(3)
        ).run()
        assert result.stats.async_sent >= result.stats.async_delivered

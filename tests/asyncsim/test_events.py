"""Tests for the discrete-event core."""

from __future__ import annotations

import pytest

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError, SimulationError


class TestEventQueue:
    def test_chronological_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run()
        assert log == ["a", "b", "c"]

    def test_tie_break_is_insertion_order(self):
        q = EventQueue()
        log = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: log.append(n))
        q.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(2.5, lambda: seen.append(q.now))
        end = q.run()
        assert seen == [2.5]
        assert end == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule_at(1.0, lambda: None))
        with pytest.raises(ConfigurationError):
            q.run()

    def test_nested_scheduling(self):
        q = EventQueue()
        log = []

        def outer():
            log.append(q.now)
            q.schedule(1.0, lambda: log.append(q.now))

        q.schedule(1.0, outer)
        q.run()
        assert log == [1.0, 2.0]

    def test_until_horizon(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(10.0, lambda: log.append(10))
        end = q.run(until=5.0)
        assert log == [1]
        assert end == 5.0
        assert len(q) == 1  # late event still queued

    def test_stop_predicate(self):
        q = EventQueue()
        log = []
        for k in range(5):
            q.schedule(float(k + 1), lambda k=k: log.append(k))
        q.run(stop=lambda: len(log) >= 2)
        assert len(log) == 2

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        log = []
        token = q.schedule(1.0, lambda: log.append("x"))
        q.cancel(token)
        q.run()
        assert log == []
        assert q.executed == 0

    def test_event_budget(self):
        q = EventQueue()

        def respawn():
            q.schedule(1.0, respawn)

        q.schedule(1.0, respawn)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_action_argument_passthrough(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, log.append, "arg")
        q.schedule(2.0, lambda: log.append("closure"))
        q.run()
        assert log == ["arg", "closure"]


class TestCancellation:
    def test_cancel_is_idempotent_and_accounting_exact(self):
        q = EventQueue()
        log = []
        keep = q.schedule(1.0, lambda: log.append("keep"))
        drop = q.schedule(2.0, lambda: log.append("drop"))
        q.cancel(drop)
        q.cancel(drop)  # idempotent: dead count must not double
        assert len(q) == 1
        q.run()
        assert log == ["keep"]
        assert q.executed == 1  # tombstones never count as executed
        assert len(q) == 0

    def test_cancel_unknown_token_is_noop(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.cancel(999)
        q.cancel(-1)
        assert len(q) == 1
        assert q.run() == 1.0
        assert q.executed == 1

    def test_cancel_after_execution_is_noop(self):
        """A stale token (event already ran) must not skew the accounting."""
        q = EventQueue()
        first = q.schedule(1.0, lambda: None)
        for i in range(3):
            q.schedule(float(i + 2), lambda: None)
        q.run(until=1.5)  # executes only `first`
        q.cancel(first)  # stale: the entry left the heap when it ran
        assert len(q) == 3  # the three live events are all still counted
        end = q.run()
        assert end == 4.0
        assert q.executed == 4
        assert len(q) == 0  # would previously underflow to -1 and raise

    def test_majority_dead_heap_compacts(self):
        """Cancelled events no longer sit in the heap until drain."""
        q = EventQueue()
        live = [q.schedule(float(100 + i), lambda: None) for i in range(10)]
        dead = [q.schedule(float(i + 1), lambda: None) for i in range(11)]
        for token in dead:
            q.cancel(token)
        # More than half the entries were tombstoned -> the heap itself
        # shrank to the live entries; nothing waits for drain to be freed.
        assert len(q._heap) == len(live)
        assert len(q) == len(live)
        q.run()
        assert q.executed == len(live)

    def test_below_threshold_tombstones_drop_unrun(self):
        q = EventQueue()
        log = []
        for i in range(10):
            q.schedule(float(i + 1), lambda i=i: log.append(i))
        victim = q.schedule(0.5, lambda: log.append("victim"))
        q.cancel(victim)  # 1 of 11 dead: stays as a tombstone
        assert len(q._heap) == 11
        assert len(q) == 10
        q.run()
        assert "victim" not in log
        assert q.executed == 10

    def test_determinism_under_cancellation(self):
        """Cancelling events must not perturb the order of the survivors."""

        def run(cancel: bool) -> list[str]:
            q = EventQueue()
            log: list[str] = []
            tokens = {}
            # Interleave same-time events so seq tie-breaks matter.
            for name in "abcdef":
                tokens[name] = q.schedule(1.0, lambda n=name: log.append(n))
            for name in "uvwxyz":
                tokens[name] = q.schedule(2.0, lambda n=name: log.append(n))
            if cancel:
                for name in ("b", "e", "u", "y"):
                    q.cancel(tokens[name])
            q.run()
            return log

        full = run(cancel=False)
        pruned = run(cancel=True)
        assert full == list("abcdef") + list("uvwxyz")
        # Survivors keep exactly their original relative order.
        assert pruned == [n for n in full if n not in ("b", "e", "u", "y")]

    def test_cancellation_respects_until_horizon(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append("early"))
        late = q.schedule(10.0, lambda: log.append("late"))
        q.cancel(late)
        end = q.run(until=5.0)
        # The cancelled late event is consumed (not pushed back at the
        # horizon), so the queue drains and time rests at the last action.
        assert log == ["early"] and end == 1.0
        assert len(q) == 0

    def test_cancel_mid_run_from_action(self):
        q = EventQueue()
        log = []
        second = q.schedule(2.0, lambda: log.append("second"))
        q.schedule(1.0, lambda: (log.append("first"), q.cancel(second)))
        q.run()
        assert log == ["first"]
        assert q.executed == 1


class TestClockMonotonicity:
    """Regression: ``run(until=past)`` must never rewind the clock."""

    def test_past_horizon_does_not_rewind_clock(self):
        q = EventQueue()
        q.schedule(15.0, lambda: None)
        q.run()
        assert q.now == 15.0
        end = q.run(until=5.0)  # previously set _now = 5.0
        assert end == 15.0
        assert q.now == 15.0

    def test_past_horizon_executes_nothing(self):
        q = EventQueue()
        log = []
        q.schedule(15.0, lambda: log.append("x"))
        q.run()
        q.schedule(1.0, lambda: log.append("y"))  # due at t=16
        q.run(until=3.0)  # horizon clamps to now=15; the t=16 event waits
        assert log == ["x"]
        assert len(q) == 1
        assert q.run() == 16.0
        assert log == ["x", "y"]

    def test_now_never_decreases_across_runs(self):
        q = EventQueue()
        observed = []
        for when in (1.0, 4.0, 9.0):
            q.schedule_at(when, lambda: observed.append(q.now))
        q.run(until=5.0)
        for until in (2.0, 0.0, 5.0):
            before = q.now
            q.run(until=until)
            assert q.now >= before
        q.run()
        assert observed == [1.0, 4.0, 9.0]

    def test_horizon_still_advances_clock_forward(self):
        # The normal case is untouched: stopping at a future horizon
        # moves the clock to exactly the horizon.
        q = EventQueue()
        q.schedule(10.0, lambda: None)
        assert q.run(until=4.0) == 4.0
        assert q.now == 4.0


class TestPerRunEventBudget:
    """Regression: ``max_events`` is a per-``run()`` budget, not cumulative."""

    def test_budget_not_charged_for_earlier_runs(self):
        q = EventQueue()
        for i in range(3):
            q.schedule(float(i + 1), lambda: None)
        q.run()  # 3 events executed
        assert q.executed == 3
        q.schedule(1.0, lambda: None)  # due at t=4: now is 3.0 after the run
        # Previously raised immediately: cumulative executed (3) > 2.
        assert q.run(max_events=2) == 4.0
        assert q.executed == 4

    def test_budget_is_exact_not_off_by_one(self):
        def make_queue(k):
            q = EventQueue()
            for i in range(k):
                q.schedule(float(i + 1), lambda: None)
            return q

        # Exactly max_events pending: drains cleanly.
        q = make_queue(5)
        q.run(max_events=5)
        assert q.executed == 5 and len(q) == 0
        # One more than the budget: raises, and the 6th event is *not*
        # executed (previously a budget of 5 admitted a 6th event).
        q = make_queue(6)
        with pytest.raises(SimulationError):
            q.run(max_events=5)
        assert q.executed == 5
        assert len(q) == 1  # the unexecuted event stays queued

    def test_budget_raise_preserves_remaining_event(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        with pytest.raises(SimulationError):
            q.run(max_events=1)
        assert log == ["a"]
        # The second event survived the raise and runs on the next call.
        q.run(max_events=1)
        assert log == ["a", "b"]

    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EventQueue().run(max_events=0)


class TestStopSet:
    def test_stops_when_collection_drains(self):
        q = EventQueue()
        waiting = {1, 2}
        log = []
        q.schedule(1.0, lambda: (log.append("a"), waiting.discard(1)))
        q.schedule(2.0, lambda: (log.append("b"), waiting.discard(2)))
        q.schedule(3.0, lambda: log.append("c"))
        q.run(stop_set=waiting)
        assert log == ["a", "b"]  # stop checked between events
        assert len(q) == 1

    def test_empty_stop_set_runs_nothing(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run(stop_set=set())
        assert q.executed == 0 and len(q) == 1


class TestReset:
    def test_reset_restores_fresh_state(self):
        q = EventQueue()
        token = q.schedule(5.0, lambda: None)
        q.schedule(1.0, lambda: None)
        q.cancel(token)
        q.run()
        assert q.now == 1.0 and q.executed == 1
        q.reset()
        assert q.now == 0.0 and q.executed == 0 and len(q) == 0
        # Seq restarts: tokens are allocated exactly like a fresh queue's.
        fresh = EventQueue()
        assert q.schedule(1.0, lambda: None) == fresh.schedule(1.0, lambda: None)

    def test_fanout_matches_individual_schedules(self):
        empty = EventQueue()
        empty.schedule_fanout(lambda _: None, [], [])  # empty fanout is a no-op
        assert len(empty) == 0

        a = EventQueue()
        log_a: list = []
        a.schedule_fanout(log_a.append, [2.0, 1.0, 1.0], ["x", "y", "z"])
        a.schedule(1.5, log_a.append, "w")
        a.run()
        b = EventQueue()
        log_b: list = []
        for delay, arg in ((2.0, "x"), (1.0, "y"), (1.0, "z")):
            b.schedule(delay, log_b.append, arg)
        b.schedule(1.5, log_b.append, "w")
        b.run()
        # Same times, same insertion-order tie-breaks, same interleaving.
        assert log_a == log_b == ["y", "z", "w", "x"]

class TestFanoutBlocks:
    """Same-instant fanout runs collapse to one heap entry, same semantics."""

    def test_constant_delays_form_one_block(self):
        q = EventQueue()
        log: list = []
        q.schedule_fanout(log.append, [1.0] * 5, list("abcde"), grouped=True)
        assert len(q._heap) == 1  # one block entry...
        assert len(q) == 5  # ...but five pending events
        q.run()
        assert log == list("abcde")
        assert q.executed == 5 and len(q) == 0

    def test_blocked_and_unblocked_interleaving_identical(self):
        # Mixed delays: equal-delay runs become blocks, and an unrelated
        # event between two runs of the same time still slots by seq.
        blocked = EventQueue()
        log_blocked: list = []
        blocked.schedule_fanout(
            log_blocked.append, [2.0, 2.0, 1.0, 2.0, 2.0], list("abcde"),
            grouped=True,
        )
        blocked.schedule(2.0, log_blocked.append, "w")
        blocked.run()

        flat = EventQueue()
        log_flat: list = []
        for delay, arg in zip([2.0, 2.0, 1.0, 2.0, 2.0], "abcde"):
            flat.schedule(delay, log_flat.append, arg)
        flat.schedule(2.0, log_flat.append, "w")
        flat.run()
        assert log_blocked == log_flat == ["c", "a", "b", "d", "e", "w"]
        assert blocked.executed == flat.executed == 6

    def test_stop_set_checked_between_block_items(self):
        q = EventQueue()
        waiting = {1}
        log: list = []

        def deliver(tag):
            log.append(tag)
            if tag == "b":
                waiting.discard(1)  # settles mid-block

        q.schedule_fanout(deliver, [1.0] * 4, list("abcd"), grouped=True)
        q.run(stop_set=waiting)
        assert log == ["a", "b"]  # c and d never ran...
        assert q.executed == 2
        assert len(q) == 2  # ...and stay queued, exactly like plain events
        q.run()
        assert log == ["a", "b", "c", "d"]

    def test_budget_raise_mid_block_preserves_the_tail(self):
        q = EventQueue()
        log: list = []
        q.schedule_fanout(log.append, [1.0] * 4, list("abcd"), grouped=True)
        with pytest.raises(SimulationError):
            q.run(max_events=3)
        assert log == ["a", "b", "c"]
        assert q.executed == 3 and len(q) == 1
        q.run()
        assert log == list("abcd")
        assert q.executed == 4 and len(q) == 0

    def test_single_item_tail_requeues_as_plain_entry(self):
        q = EventQueue()
        log: list = []
        action = log.append
        q.schedule_fanout(action, [1.0, 1.0], ["a", "b"], grouped=True)
        with pytest.raises(SimulationError):
            q.run(max_events=1)
        assert log == ["a"] and len(q) == 1
        assert q._heap[0][2] is action  # degenerated to a plain entry
        q.run()
        assert log == ["a", "b"]

    def test_horizon_leaves_whole_block_queued(self):
        q = EventQueue()
        log: list = []
        q.schedule_fanout(log.append, [5.0] * 3, list("abc"), grouped=True)
        assert q.run(until=2.0) == 2.0
        assert log == [] and len(q) == 3
        q.run()
        assert log == list("abc") and q.now == 5.0

    def test_seq_tokens_stay_aligned_after_blocks(self):
        # Cancellable entries scheduled after a fanout must get the same
        # tokens as in the per-entry world (one seq per block item).
        q = EventQueue()
        q.schedule_fanout(lambda _: None, [1.0] * 3, [1, 2, 3], grouped=True)
        token = q.schedule(2.0, lambda: None)
        assert token == 3
        q.cancel(token)
        q.run()
        assert q.executed == 3

    def test_reset_clears_block_accounting(self):
        q = EventQueue()
        q.schedule_fanout(lambda _: None, [1.0] * 4, [1, 2, 3, 4], grouped=True)
        assert len(q) == 4
        q.reset()
        assert len(q) == 0
        q.schedule_fanout(lambda _: None, [1.0] * 2, [1, 2], grouped=True)
        q.run()
        assert q.executed == 2 and len(q) == 0

    def test_broadcast_heap_traffic_shrinks_under_constant_delay(self):
        # The structural claim behind the same-instant kernel: a pooled
        # constant-delay broadcast occupies one wire block + one local
        # self-delivery entry instead of n heap entries.
        from repro.asyncsim.network import AsyncNetwork, ConstantDelay
        from repro.net.accounting import MessageStats
        from repro.util.rng import RandomSource

        delivered: list = []
        q = EventQueue()
        net = AsyncNetwork(
            q, ConstantDelay(1.0), RandomSource(0), lambda m: None,
            stats=MessageStats(), deliver_entry=delivered.append,
        )
        net.broadcast(2, 8, "EST", 42, 1, None)
        assert len(q) == 8  # eight deliveries pending...
        assert len(q._heap) == 3  # ...in [pre-self block][self][post-self block]
        q.run()
        # The sender's local copy (zero delay) lands first; the wire
        # fan-out then arrives in destination order at the shared instant.
        assert [e[2] for e in delivered] == [2, 1, 3, 4, 5, 6, 7, 8]

    def test_handler_exception_mid_block_preserves_the_tail(self):
        # A raising handler consumes its own item (exactly like a plain
        # popped entry) but must leave the rest of the block queued.
        q = EventQueue()
        log: list = []

        def deliver(tag):
            if tag == "b":
                raise RuntimeError("boom")
            log.append(tag)

        q.schedule_fanout(deliver, [1.0] * 4, list("abcd"), grouped=True)
        with pytest.raises(RuntimeError):
            q.run()
        assert log == ["a"]
        assert q.executed == 1  # the raising item never counts as executed
        assert len(q) == 2  # c and d survived the raise
        q.run()
        assert log == ["a", "c", "d"]

"""Tests for the discrete-event core."""

from __future__ import annotations

import pytest

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError, SimulationError


class TestEventQueue:
    def test_chronological_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run()
        assert log == ["a", "b", "c"]

    def test_tie_break_is_insertion_order(self):
        q = EventQueue()
        log = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: log.append(n))
        q.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(2.5, lambda: seen.append(q.now))
        end = q.run()
        assert seen == [2.5]
        assert end == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule_at(1.0, lambda: None))
        with pytest.raises(ConfigurationError):
            q.run()

    def test_nested_scheduling(self):
        q = EventQueue()
        log = []

        def outer():
            log.append(q.now)
            q.schedule(1.0, lambda: log.append(q.now))

        q.schedule(1.0, outer)
        q.run()
        assert log == [1.0, 2.0]

    def test_until_horizon(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(10.0, lambda: log.append(10))
        end = q.run(until=5.0)
        assert log == [1]
        assert end == 5.0
        assert len(q) == 1  # late event still queued

    def test_stop_predicate(self):
        q = EventQueue()
        log = []
        for k in range(5):
            q.schedule(float(k + 1), lambda k=k: log.append(k))
        q.run(stop=lambda: len(log) >= 2)
        assert len(log) == 2

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append("x"))
        ev.cancel()
        q.run()
        assert log == []
        assert q.executed == 0

    def test_event_budget(self):
        q = EventQueue()

        def respawn():
            q.schedule(1.0, respawn)

        q.schedule(1.0, respawn)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

"""Tests for the Section 2.2 round-cost model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timing.model import RoundCost, crossover_d, timing_series


class TestRoundCost:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoundCost(D=0, d=1)
        with pytest.raises(ConfigurationError):
            RoundCost(D=1, d=-1)
        with pytest.raises(ConfigurationError):
            RoundCost(D=1, d=0).crw_time(-1)
        with pytest.raises(ConfigurationError):
            RoundCost(D=1, d=0).ffd_time(0, -1.0)

    def test_paper_formulas(self):
        cost = RoundCost(D=100.0, d=5.0)
        assert cost.crw_time(0) == 105.0  # 1 round
        assert cost.crw_time(2) == 3 * 105.0
        assert cost.early_stopping_time(0) == 200.0  # f+2 rounds
        assert cost.early_stopping_time(3, t=2) == 300.0  # min(f+2, t+1)
        assert cost.floodset_time(4) == 500.0
        assert cost.ffd_time(2, d_fd=1.0) == 100.0 + 2.0 + 1.0

    def test_extended_wins_when_d_small(self):
        cost = RoundCost(D=100.0, d=1.0)
        for f in range(6):
            assert cost.extended_wins(f)

    def test_extended_loses_when_d_huge(self):
        cost = RoundCost(D=100.0, d=120.0)
        assert not cost.extended_wins(0)  # 220 > 200

    def test_crossover_boundary_exact(self):
        # d == D/(f+1) is the tie: strictly "wins" must be False.
        D, f = 100.0, 3
        cost = RoundCost(D=D, d=crossover_d(D, f))
        assert not cost.extended_wins(f)
        cost_eps = RoundCost(D=D, d=crossover_d(D, f) - 1e-9)
        assert cost_eps.extended_wins(f)


class TestCrossover:
    def test_formula(self):
        assert crossover_d(100.0, 0) == 100.0
        assert crossover_d(100.0, 1) == 50.0
        assert crossover_d(100.0, 4) == 20.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            crossover_d(0.0, 1)
        with pytest.raises(ConfigurationError):
            crossover_d(1.0, -1)

    @given(st.floats(min_value=0.1, max_value=1e6), st.integers(0, 50))
    def test_crossover_consistent_with_extended_wins(self, D, f):
        threshold = crossover_d(D, f)
        below = RoundCost(D=D, d=threshold * 0.99)
        above = RoundCost(D=D, d=threshold * 1.01)
        assert below.extended_wins(f)
        assert not above.extended_wins(f)


class TestSeries:
    def test_shape(self):
        series = timing_series(100.0, f_values=(0, 1), d_fractions=(0.0, 0.5, 1.5))
        assert len(series) == 6

    def test_winner_flips_along_d_axis(self):
        series = [p for p in timing_series(100.0, f_values=(1,)) if p.f == 1]
        wins = [p.extended_wins for p in series]
        # Starts winning at d=0, eventually loses: exactly one flip.
        assert wins[0] is True
        assert wins[-1] is False
        flips = sum(1 for a, b in zip(wins, wins[1:]) if a != b)
        assert flips == 1

    def test_f0_crossover_at_d_equals_D(self):
        # For f=0: 1*(D+d) vs 2D -> tie exactly at d = D.
        pts = {p.d_over_D: p for p in timing_series(100.0, f_values=(0,))}
        assert pts[0.75].extended_wins
        assert not pts[1.0].extended_wins  # tie is not a win
        assert not pts[1.25].extended_wins

"""Tests for the vectorized timing grid (validated against the scalar model)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.timing.grid import crossover_curve, timing_grid
from repro.timing.model import RoundCost, crossover_d


class TestTimingGrid:
    def test_shapes(self):
        grid = timing_grid(100.0, [0.0, 0.5, 1.0], [0, 1])
        assert grid["crw"].shape == (2, 3)
        assert grid["extended_wins"].dtype == bool

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            timing_grid(0.0, [0.1], [0])
        with pytest.raises(ConfigurationError):
            timing_grid(1.0, [[0.1]], [0])
        with pytest.raises(ConfigurationError):
            timing_grid(1.0, [-0.1], [0])
        with pytest.raises(ConfigurationError):
            timing_grid(1.0, [0.1], [-1])

    @settings(max_examples=50, deadline=None)
    @given(
        D=st.floats(min_value=1.0, max_value=1e4),
        frac=st.floats(min_value=0.0, max_value=2.0),
        f=st.integers(0, 30),
    )
    def test_matches_scalar_model(self, D, frac, f):
        grid = timing_grid(D, [frac], [f])
        cost = RoundCost(D=D, d=frac * D)
        assert grid["crw"][0, 0] == pytest.approx(cost.crw_time(f))
        assert grid["early_stopping"][0, 0] == pytest.approx(cost.early_stopping_time(f))
        assert bool(grid["extended_wins"][0, 0]) == cost.extended_wins(f)

    def test_win_region_monotone(self):
        # For fixed f the win mask is a prefix of the d axis.
        grid = timing_grid(100.0, np.linspace(0, 2, 201), [0, 1, 2, 4, 8])
        wins = grid["extended_wins"]
        for row in wins:
            flips = np.sum(row[:-1] != row[1:])
            assert flips <= 1
            assert row[0]  # d=0 always wins

    def test_margin_sign_agrees_with_mask(self):
        grid = timing_grid(50.0, np.linspace(0, 1.5, 31), [0, 3])
        assert np.array_equal(grid["margin"] > 0, grid["extended_wins"])


class TestCrossoverCurve:
    def test_values(self):
        curve = crossover_curve(100.0, [0, 1, 4])
        assert np.allclose(curve, [1.0, 0.5, 0.2])

    def test_matches_scalar(self):
        for f in range(10):
            assert crossover_curve(77.0, [f])[0] == pytest.approx(
                crossover_d(77.0, f) / 77.0
            )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            crossover_curve(0.0, [1])
        with pytest.raises(ConfigurationError):
            crossover_curve(1.0, [-1])

    def test_grid_flip_happens_at_curve(self):
        # The last winning d/D along each row is just below 1/(f+1).
        fracs = np.linspace(0, 2, 2001)
        f_values = [0, 1, 2, 4]
        grid = timing_grid(100.0, fracs, f_values)
        curve = crossover_curve(100.0, f_values)
        for row, threshold in zip(grid["extended_wins"], curve):
            last_win = fracs[row][-1]
            assert threshold - 2e-3 <= last_win < threshold

"""Tests for the value-locking analysis (Lemma 2 made executable)."""

from __future__ import annotations

import pytest

from tests.conftest import make_crw, run_crw

from repro.core.locking import analyze_locking
from repro.errors import ConfigurationError
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.util.rng import RandomSource


class TestAnalyzeLocking:
    def test_failure_free_locks_round_one(self):
        result = run_crw(4)
        report = analyze_locking(result)
        assert report.locking_round == 1
        assert report.locked_value == 101
        assert report.decisions_consistent

    def test_data_step_crash_does_not_lock(self):
        # p1 dies during line 4 -> r0 moves to round 2 (p2 completes).
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset())]
        )
        result = run_crw(4, sched, t=2)
        report = analyze_locking(result)
        assert report.locking_round == 2
        assert report.locked_value == 102

    def test_control_step_crash_still_locks(self):
        # Dying during line 5 means line 4 completed: value locked in round 1.
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=0)]
        )
        result = run_crw(4, sched, t=2)
        report = analyze_locking(result)
        assert report.locking_round == 1
        assert report.locked_value == 101
        assert report.decisions_consistent

    def test_partial_data_crash_locks_later_with_adopted_value(self):
        # p1 delivers to p2 only, then p2 imposes the adopted 101 in round 2:
        # the lock happens at round 2 but with p1's value.
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = run_crw(4, sched, t=2)
        report = analyze_locking(result)
        assert report.locking_round == 2
        assert report.locked_value == 101

    def test_no_lock_while_every_coordinator_so_far_died_in_data_step(self):
        # Truncate the run before the first surviving coordinator's round:
        # within the executed prefix no line 4 ever completed, so no lock.
        n = 3
        sched = CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset()),
                CrashEvent(2, 2, CrashPoint.DURING_DATA, data_subset=frozenset()),
            ]
        )
        result = run_crw(n, sched, t=n - 1, max_rounds=2)
        report = analyze_locking(result)
        assert report.locking_round is None
        assert report.decisions_consistent  # vacuous: nobody decided
        assert result.decisions == {}

    def test_last_survivor_locks_vacuously_and_decides(self):
        # Claim C1 in the extreme: the first t coordinators die in their data
        # steps; p_n completes line 4 vacuously (no higher ids) and decides.
        n = 3
        sched = CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset()),
                CrashEvent(2, 2, CrashPoint.DURING_DATA, data_subset=frozenset()),
            ]
        )
        result = run_crw(n, sched, t=n - 1)
        report = analyze_locking(result)
        assert report.locking_round == 3
        assert report.locked_value == 103
        assert result.decisions == {3: 103}

    def test_requires_trace(self):
        procs = make_crw(3)
        engine = ExtendedSynchronousEngine(procs, t=1, rng=RandomSource(1), trace=False)
        result = engine.run()
        with pytest.raises(ConfigurationError):
            analyze_locking(result)

    def test_after_send_coordinator_with_no_witnesses_synthetic(self):
        # A coordinator that completes its send phase while its entire
        # audience dies in the same round leaves only drop events behind.
        # Under t <= n-1 this needs n crashes and cannot be produced by the
        # engine; analyze_locking still handles hand-built traces of it.
        from repro.net.accounting import MessageStats
        from repro.sync.result import ProcessOutcome, RunResult
        from repro.util.trace import Trace

        trace = Trace()
        trace.record(1, "crash", 1, point="after_send", data_subset=(2,), control_prefix=1)
        trace.record(1, "crash", 2, point="before_send", data_subset=(), control_prefix=0)
        trace.record(1, "drop.data", 1, dest=2, payload=101)
        trace.record(1, "drop.control", 1, dest=2)
        outcomes = {
            1: ProcessOutcome(1, 101, False, None, 0, True, 1),
            2: ProcessOutcome(2, 102, False, None, 0, True, 1),
        }
        result = RunResult(
            n=2, t=1, model="extended", outcomes=outcomes,
            rounds_executed=1, completed=True, stats=MessageStats(), trace=trace,
        )
        report = analyze_locking(result)
        assert report.locking_round == 1
        assert report.locked_value == 101

    def test_eager_variant_breaks_consistency(self):
        from repro.core.variants import EagerCRW

        n = 4
        procs = [EagerCRW(pid, n, 100 + pid) for pid in range(1, n + 1)]
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = ExtendedSynchronousEngine(procs, sched, t=3, rng=RandomSource(1)).run()
        report = analyze_locking(result)
        assert not report.decisions_consistent
        assert 2 in report.conflicting  # p2 decided the never-locked value

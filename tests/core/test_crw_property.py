"""Property-based certification of CRW: uniform consensus + f+1 bound
under *arbitrary* hypothesis-generated crash schedules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_crw

from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.spec import assert_consensus
from repro.util.rng import RandomSource

POINTS = [
    CrashPoint.BEFORE_SEND,
    CrashPoint.DURING_DATA,
    CrashPoint.DURING_CONTROL,
    CrashPoint.AFTER_SEND,
]


@st.composite
def crash_schedules(draw, n: int):
    """Arbitrary schedule: victims, rounds, points, explicit subsets/prefixes."""
    n_crashes = draw(st.integers(0, n - 1))
    victims = draw(
        st.lists(
            st.integers(1, n), min_size=n_crashes, max_size=n_crashes, unique=True
        )
    )
    events = []
    for pid in victims:
        round_no = draw(st.integers(1, n))
        point = draw(st.sampled_from(POINTS))
        subset = frozenset(
            draw(st.lists(st.integers(1, n), max_size=n, unique=True))
        )
        prefix = draw(st.integers(0, n))
        events.append(
            CrashEvent(
                pid=pid,
                round_no=round_no,
                point=point,
                data_subset=subset,
                control_prefix=prefix,
            )
        )
    return CrashSchedule(events)


@st.composite
def proposal_lists(draw, n: int):
    return draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))


class TestCRWProperties:
    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_uniform_consensus_and_early_stopping(self, data):
        n = data.draw(st.integers(2, 7), label="n")
        schedule = data.draw(crash_schedules(n), label="schedule")
        proposals = data.draw(proposal_lists(n), label="proposals")

        procs = make_crw(n, proposals)
        engine = ExtendedSynchronousEngine(
            procs, schedule, t=n - 1, rng=RandomSource(0)
        )
        result = engine.run()
        assert_consensus(result, require_early_stopping=True)

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_decision_is_first_locking_coordinator_estimate(self, data):
        """Lemma 2 computationally: all decisions equal the locked value."""
        from repro.core.locking import analyze_locking

        n = data.draw(st.integers(2, 6), label="n")
        schedule = data.draw(crash_schedules(n), label="schedule")
        proposals = data.draw(proposal_lists(n), label="proposals")

        procs = make_crw(n, proposals)
        result = ExtendedSynchronousEngine(
            procs, schedule, t=n - 1, rng=RandomSource(0)
        ).run()
        report = analyze_locking(result)
        assert report.decisions_consistent, (
            f"decisions {result.decisions} conflict with locked value "
            f"{report.locked_value!r} at round {report.locking_round}"
        )
        # If anyone decided, some coordinator completed line 4 (claim C1).
        if result.decisions:
            assert report.locking_round is not None

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_one_round_when_p1_survives_round_one(self, data):
        n = data.draw(st.integers(2, 7), label="n")
        schedule = data.draw(crash_schedules(n), label="schedule")
        proposals = data.draw(proposal_lists(n), label="proposals")
        ev = schedule.event_for(1)
        if ev is not None and ev.round_no == 1:
            return  # p1 dies in round 1: not this property's scope

        procs = make_crw(n, proposals)
        result = ExtendedSynchronousEngine(
            procs, schedule, t=n - 1, rng=RandomSource(0)
        ).run()
        # p1 coordinates round 1 without crashing: every surviving process
        # decides p1's proposal in round 1.
        assert result.last_decision_round == 1
        assert set(result.decisions.values()) == {proposals[0]}

"""Tests for the deliberately broken/reordered variants."""

from __future__ import annotations

import pytest

from repro.core.variants import (
    EagerCRW,
    IncreasingCommitCRW,
    SilentProcess,
    TruncatedCRW,
)
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.spec import check_consensus
from repro.util.rng import RandomSource


def run(procs, schedule=None, t=None):
    n = procs[0].n
    engine = ExtendedSynchronousEngine(
        procs, schedule, t=t if t is not None else n - 1, rng=RandomSource(3)
    )
    return engine.run()


class TestEagerCRW:
    def test_agreement_violation_exists(self):
        # p1 crashes mid-data delivering only to p2.  Eager p2 decides p1's
        # value; p2 halts; later coordinator p3 imposes its own value on the
        # rest: split brain.
        n = 4
        procs = [EagerCRW(pid, n, 100 + pid) for pid in range(1, n + 1)]
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = run(procs, sched)
        report = check_consensus(result)
        assert any("agreement" in v for v in report.violations)
        assert result.decisions[2] == 101
        assert result.decisions[3] == 103

    def test_correct_when_failure_free(self):
        # Eagerness is only wrong under partial data delivery.
        n = 4
        procs = [EagerCRW(pid, n, 100 + pid) for pid in range(1, n + 1)]
        result = run(procs)
        assert check_consensus(result).ok


class TestTruncatedCRW:
    def test_deadline_decision_splits_brains(self):
        # Theorem 3's object: an algorithm that always decides by round
        # k = t has an agreement-violating run.
        n, k = 4, 1
        procs = [TruncatedCRW(pid, n, 100 + pid, k=k) for pid in range(1, n + 1)]
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2}))]
        )
        result = run(procs, sched, t=1)
        report = check_consensus(result)
        assert any("agreement" in v for v in report.violations)

    def test_always_decides_by_k(self):
        n, k = 5, 2
        procs = [TruncatedCRW(pid, n, 100 + pid, k=k) for pid in range(1, n + 1)]
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset())]
        )
        result = run(procs, sched, t=2)
        assert result.last_decision_round <= k
        assert all(o.decided for o in result.outcomes.values() if not o.crashed)

    def test_correct_when_k_large_enough(self):
        # With k > t the deadline never binds before the real protocol ends.
        n, t = 4, 2
        procs = [TruncatedCRW(pid, n, 100 + pid, k=t + 1) for pid in range(1, n + 1)]
        sched = CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset()),
                CrashEvent(2, 2, CrashPoint.DURING_DATA, data_subset=frozenset()),
            ]
        )
        result = run(procs, sched, t=t)
        assert check_consensus(result).ok


class TestIncreasingCommitCRW:
    def test_commit_order_ablation_breaks_f_plus_one(self):
        # Same single-crash schedule; the only change is commit order.
        # Decreasing order (paper): everyone decides by round f+1 = 2.
        # Increasing order: the early decider is the *lowest* id (p2), which
        # then never coordinates, and p3..pn wait until round 3.
        n = 5
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=1)]
        )

        from repro.core.crw import CRWConsensus

        good = run([CRWConsensus(p, n, 100 + p) for p in range(1, n + 1)], sched)
        assert check_consensus(good, require_early_stopping=True).ok
        assert good.last_decision_round == 2

        bad = run(
            [IncreasingCommitCRW(p, n, 100 + p) for p in range(1, n + 1)],
            CrashSchedule(
                [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=1)]
            ),
        )
        report = check_consensus(bad, require_early_stopping=True)
        # Safety survives; the early-stopping bound does not.
        assert any("early stopping" in v for v in report.violations)
        assert not any("agreement" in v for v in report.violations)
        assert bad.last_decision_round == 3

    def test_failure_free_equivalent_to_paper_order(self):
        n = 5
        procs = [IncreasingCommitCRW(p, n, 100 + p) for p in range(1, n + 1)]
        result = run(procs)
        assert check_consensus(result).ok
        assert result.last_decision_round == 1


class TestSilentProcess:
    def test_termination_violation_detected(self):
        n = 3
        procs = [SilentProcess(pid, n, pid) for pid in range(1, n + 1)]
        result = run(procs)
        report = check_consensus(result)
        assert any("termination" in v for v in report.violations)
        assert not result.completed

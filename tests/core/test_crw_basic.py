"""Basic behaviour of the paper's Figure-1 algorithm."""

from __future__ import annotations

import pytest

from tests.conftest import make_crw, run_crw

from repro.core.crw import CRWConsensus
from repro.errors import ModelViolationError
from repro.sync.api import RoundInbox
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.spec import assert_consensus


class TestSendPlans:
    def test_coordinator_plan_shape(self):
        p = CRWConsensus(3, 6, proposal="v")
        plan = p.send_phase(3)
        # Line 4: DATA to higher ids only.
        assert set(plan.data) == {4, 5, 6}
        assert all(v == "v" for v in plan.data.values())
        # Line 5: COMMIT in decreasing id order, p_n first.
        assert plan.control == (6, 5, 4)

    def test_last_process_plan_is_empty(self):
        p = CRWConsensus(4, 4, proposal="v")
        plan = p.send_phase(4)
        assert not plan.data and not plan.control

    def test_non_coordinator_is_silent(self):
        p = CRWConsensus(3, 6, proposal="v")
        plan = p.send_phase(1)
        assert not plan.data and not plan.control

    def test_round_beyond_own_id_is_cannot_happen(self):
        p = CRWConsensus(2, 4, proposal="v")
        with pytest.raises(ModelViolationError):
            p.send_phase(3)


class TestComputePhase:
    def test_adopt_then_decide_on_commit(self):
        p = CRWConsensus(3, 4, proposal="mine")
        p.compute_phase(1, RoundInbox(data={1: "coord"}, control=frozenset({1})))
        assert p.decided and p.decision == "coord"

    def test_adopt_without_commit_keeps_running(self):
        p = CRWConsensus(3, 4, proposal="mine")
        p.compute_phase(1, RoundInbox(data={1: "coord"}))
        assert not p.decided
        assert p.est == "coord"

    def test_nothing_received_keeps_estimate(self):
        p = CRWConsensus(3, 4, proposal="mine")
        p.compute_phase(1, RoundInbox())
        assert p.est == "mine" and not p.decided

    def test_commit_without_data_is_engine_bug(self):
        p = CRWConsensus(3, 4, proposal="mine")
        with pytest.raises(ModelViolationError):
            p.compute_phase(1, RoundInbox(control=frozenset({1})))

    def test_coordinator_decides_own_estimate(self):
        p = CRWConsensus(2, 4, proposal="mine")
        p.compute_phase(1, RoundInbox(data={1: "coord"}))  # adopt in round 1
        p.compute_phase(2, RoundInbox())  # own round
        assert p.decided and p.decision == "coord"


class TestFailureFreeRun:
    def test_single_round_decision(self):
        # "If the first coordinator does not crash, the decision is obtained
        #  in one round, whatever the number of faulty processes."
        result = run_crw(6)
        assert_consensus(result, require_early_stopping=True)
        assert result.rounds_executed == 1
        assert all(r == 1 for r in result.decision_rounds.values())
        assert set(result.decisions.values()) == {101}  # p1's proposal

    def test_two_processes(self):
        result = run_crw(2)
        assert_consensus(result)
        assert result.rounds_executed == 1

    def test_message_pattern_best_case(self):
        # Only p1 sends: n-1 DATA + n-1 COMMIT.
        n = 8
        result = run_crw(n)
        assert result.stats.data_sent == n - 1
        assert result.stats.control_sent == n - 1


class TestDecisionValue:
    def test_first_surviving_coordinator_value_wins(self):
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.BEFORE_SEND)]
        )
        result = run_crw(5, sched, t=2)
        assert_consensus(result, require_early_stopping=True)
        assert set(result.decisions.values()) == {102}  # p2's proposal

    def test_partial_data_adoption_changes_estimates(self):
        # p1 crashes mid-data delivering only to p2; p2 then coordinates
        # round 2 and imposes p1's old value.
        sched = CrashSchedule(
            [
                CrashEvent(
                    1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({2})
                )
            ]
        )
        result = run_crw(5, sched, t=2)
        assert_consensus(result, require_early_stopping=True)
        assert set(result.decisions.values()) == {101}
        assert result.last_decision_round == 2

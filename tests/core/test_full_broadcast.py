"""Tests for the FullBroadcastCRW ablation (drop the higher-ids-only rule)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crw import CRWConsensus
from repro.core.variants import FullBroadcastCRW
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.spec import assert_consensus
from repro.util.rng import RandomSource


def run(cls, n, schedule=None, proposals=None):
    proposals = proposals or [100 + pid for pid in range(1, n + 1)]
    procs = [cls(pid, n, proposals[pid - 1]) for pid in range(1, n + 1)]
    engine = ExtendedSynchronousEngine(procs, schedule, t=n - 1, rng=RandomSource(1))
    return engine.run()


class TestFullBroadcast:
    def test_failure_free_same_rounds_more_messages(self):
        n = 6
        lean = run(CRWConsensus, n)
        fat = run(FullBroadcastCRW, n)
        assert lean.decisions == fat.decisions
        assert lean.rounds_executed == fat.rounds_executed == 1
        # Round 1 coordinator is p1: higher-ids-only == everyone, so the
        # failure-free bill is identical...
        assert lean.stats.messages_sent == fat.stats.messages_sent

    def test_cascade_shows_the_waste(self):
        # ...the waste appears when later coordinators lead: p_r addresses
        # r-1 dead-or-decided lower ids for nothing.
        n, f = 6, 3
        sched = lambda: CrashSchedule(
            [
                CrashEvent(r, r, CrashPoint.DURING_DATA, data_subset=frozenset())
                for r in range(1, f + 1)
            ]
        )
        lean = run(CRWConsensus, n, sched())
        fat = run(FullBroadcastCRW, n, sched())
        assert lean.last_decision_round == fat.last_decision_round == f + 1
        assert fat.stats.messages_sent > lean.stats.messages_sent
        # Round r = f+1 completes: lean sends 2(n-r) there, fat 2(n-1).
        assert fat.stats.messages_sent - lean.stats.messages_sent == 2 * f

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_property_still_uniform_consensus(self, data):
        n = data.draw(st.integers(2, 6), label="n")
        f = data.draw(st.integers(0, n - 1), label="f")
        proposals = data.draw(
            st.lists(st.integers(0, 3), min_size=n, max_size=n), label="proposals"
        )
        events = []
        for r in range(1, f + 1):
            subset = frozenset(
                data.draw(st.lists(st.integers(1, n), max_size=n, unique=True), label=f"s{r}")
            )
            prefix = data.draw(st.integers(0, n), label=f"p{r}")
            point = data.draw(
                st.sampled_from(
                    [CrashPoint.DURING_DATA, CrashPoint.DURING_CONTROL, CrashPoint.AFTER_SEND]
                ),
                label=f"pt{r}",
            )
            events.append(
                CrashEvent(r, r, point, data_subset=subset, control_prefix=prefix)
            )
        result = run(FullBroadcastCRW, n, CrashSchedule(events), proposals)
        assert_consensus(result, require_early_stopping=True)

"""Differential testing: closed-form oracle vs the round engine.

The oracle (`repro.core.oracle`) and the engine implement Figure 1's
semantics twice, independently.  Agreement across randomized explicit
schedules certifies both.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_crw

from repro.core.oracle import predict
from repro.errors import ConfigurationError
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
from repro.sync.extended import ExtendedSynchronousEngine

POINTS = [
    CrashPoint.BEFORE_SEND,
    CrashPoint.DURING_DATA,
    CrashPoint.DURING_CONTROL,
    CrashPoint.AFTER_SEND,
]


@st.composite
def explicit_schedules(draw, n: int):
    n_crashes = draw(st.integers(0, n - 1))
    victims = draw(
        st.lists(st.integers(1, n), min_size=n_crashes, max_size=n_crashes, unique=True)
    )
    events = []
    for pid in victims:
        events.append(
            CrashEvent(
                pid=pid,
                round_no=draw(st.integers(1, n)),
                point=draw(st.sampled_from(POINTS)),
                data_subset=frozenset(
                    draw(st.lists(st.integers(1, n), max_size=n, unique=True))
                ),
                control_prefix=draw(st.integers(0, n)),
            )
        )
    return CrashSchedule(events)


class TestOracleValidation:
    def test_proposal_arity(self):
        with pytest.raises(ConfigurationError):
            predict(3, [1, 2], CrashSchedule.none())

    def test_random_policies_rejected(self):
        sched = CrashSchedule([CrashEvent(1, 1, CrashPoint.DURING_DATA)])
        with pytest.raises(ConfigurationError):
            predict(3, [1, 2, 3], sched)
        sched2 = CrashSchedule([CrashEvent(1, 1, CrashPoint.DURING_CONTROL)])
        with pytest.raises(ConfigurationError):
            predict(3, [1, 2, 3], sched2)


class TestKnownRuns:
    def test_failure_free(self):
        pred = predict(4, [101, 102, 103, 104], CrashSchedule.none())
        assert pred.decisions == {1: 101, 2: 101, 3: 101, 4: 101}
        assert pred.rounds_executed == 1
        assert pred.data_sent == 3 and pred.control_sent == 3
        assert pred.completed

    def test_cascade(self):
        sched = CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset()),
                CrashEvent(2, 2, CrashPoint.DURING_DATA, data_subset=frozenset()),
            ]
        )
        pred = predict(4, [101, 102, 103, 104], sched)
        assert pred.decisions == {3: 103, 4: 103}
        assert pred.rounds_executed == 3
        assert pred.crashed_rounds == {1: 1, 2: 2}

    def test_commit_split(self):
        sched = CrashSchedule(
            [CrashEvent(1, 1, CrashPoint.DURING_CONTROL, control_prefix=1)]
        )
        pred = predict(4, [101, 102, 103, 104], sched)
        assert pred.decision_rounds[4] == 1  # p4 got the first (decreasing) commit
        assert pred.decision_rounds[2] == pred.decision_rounds[3] == 2


class TestDifferential:
    @settings(max_examples=400, deadline=None)
    @given(data=st.data())
    def test_engine_matches_oracle(self, data):
        n = data.draw(st.integers(2, 8), label="n")
        schedule = data.draw(explicit_schedules(n), label="schedule")
        proposals = data.draw(
            st.lists(st.integers(0, 5), min_size=n, max_size=n), label="proposals"
        )

        pred = predict(n, proposals, schedule)
        engine = ExtendedSynchronousEngine(
            make_crw(n, proposals), schedule, t=n - 1
        )
        result = engine.run()

        assert result.decisions == pred.decisions
        assert result.decision_rounds == pred.decision_rounds
        assert {
            pid: o.crashed_round for pid, o in result.outcomes.items() if o.crashed
        } == pred.crashed_rounds
        assert result.rounds_executed == pred.rounds_executed
        assert result.stats.data_sent == pred.data_sent
        assert result.stats.control_sent == pred.control_sent
        assert result.completed == pred.completed

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_oracle_respects_theorems(self, data):
        """The oracle itself satisfies Theorem 1 (sanity of the recurrence)."""
        n = data.draw(st.integers(2, 10), label="n")
        schedule = data.draw(explicit_schedules(n), label="schedule")
        proposals = list(range(n))
        pred = predict(n, proposals, schedule)
        f = len(pred.crashed_rounds)
        if pred.decisions:
            assert max(pred.decision_rounds.values()) <= f + 1
            assert len(set(pred.decisions.values())) == 1
        assert pred.completed

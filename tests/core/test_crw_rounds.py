"""Theorem 1's round bound: no decision after round f + 1."""

from __future__ import annotations

import pytest

from tests.conftest import run_crw

from repro.sync.adversary import (
    CommitSplitter,
    CoordinatorKiller,
    RandomCrashes,
    StaggeredKiller,
)
from repro.sync.spec import assert_consensus
from repro.util.rng import RandomSource


class TestCoordinatorKillerForcesFPlusOne:
    @pytest.mark.parametrize("n,f", [(4, 1), (4, 2), (4, 3), (8, 3), (8, 5), (16, 7)])
    def test_exactly_f_plus_one_rounds(self, n, f):
        rng = RandomSource(99)
        sched = CoordinatorKiller(f).schedule(n, n - 1, rng)
        result = run_crw(n, sched, t=n - 1, rng=rng)
        assert_consensus(result, require_early_stopping=True)
        assert result.f == f
        assert result.last_decision_round == f + 1
        assert result.rounds_executed == f + 1

    def test_subset_delivery_variant_still_f_plus_one(self):
        rng = RandomSource(7)
        sched = CoordinatorKiller(3, deliver_to_none=False).schedule(8, 7, rng)
        result = run_crw(8, sched, t=7, rng=rng)
        assert_consensus(result, require_early_stopping=True)
        assert result.last_decision_round == 4


class TestBenignCrashPatterns:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_non_coordinator_crashes_decide_round_one(self, f):
        # StaggeredKiller only kills top-id processes after they've been
        # served by p1's round-1 broadcast: the survivors decide in round 1.
        rng = RandomSource(11)
        n = 8
        sched = StaggeredKiller(f).schedule(n, n - 1, rng)
        result = run_crw(n, sched, t=n - 1, rng=rng)
        assert_consensus(result, require_early_stopping=True)
        # p1 survives -> decision in one round regardless of f.
        assert result.last_decision_round == 1


class TestCommitSplitRuns:
    @pytest.mark.parametrize("prefix", [0, 1, 2, 3])
    def test_partial_commit_still_uniform(self, prefix):
        n, f = 6, 2
        rng = RandomSource(13)
        sched = CommitSplitter(f, prefix_len=prefix).schedule(n, n - 1, rng)
        result = run_crw(n, sched, t=n - 1, rng=rng)
        assert_consensus(result, require_early_stopping=True)

    def test_top_ids_decide_early_bottom_later(self):
        # Coordinator p1 delivers COMMIT only to p_n: p_n decides in round 1,
        # the rest in round 2 (served by p2).
        n = 6
        rng = RandomSource(13)
        sched = CommitSplitter(1, prefix_len=1).schedule(n, n - 1, rng)
        result = run_crw(n, sched, t=n - 1, rng=rng)
        assert_consensus(result, require_early_stopping=True)
        rounds = result.decision_rounds
        assert rounds[n] == 1
        assert all(rounds[p] == 2 for p in range(2, n))

    def test_prefix_decider_and_late_decider_agree(self):
        n = 5
        rng = RandomSource(17)
        sched = CommitSplitter(1, prefix_len=2).schedule(n, n - 1, rng)
        result = run_crw(n, sched, t=n - 1, rng=rng)
        assert len(set(result.decisions.values())) == 1


class TestRandomAdversarySweep:
    @pytest.mark.parametrize("seed", range(25))
    def test_uniform_consensus_and_bound_hold(self, seed):
        rng = RandomSource(seed)
        n = 7
        f = rng.randint(0, 4)
        sched = RandomCrashes(f).schedule(n, 5, rng)
        result = run_crw(n, sched, t=5, rng=rng)
        # The schedule *allows* f crashes but some may never fire (e.g. a
        # process decides before its crash round): the spec checker uses the
        # actual f of the run.
        assert_consensus(result, require_early_stopping=True)

"""RecordBatch / CellDelta: the columnar record currency of the sweep layer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    RecordBatch,
    RunRecord,
    Scenario,
    apply_scenario_delta,
    execute,
    jsonable,
    scenario_delta,
)


def _records(n_cells=6):
    base = Scenario(algorithm="crw", n=5, f=2, adversary="coordinator-killer")
    return [execute(base.with_(seed=seed)).normalized() for seed in range(n_cells)]


class TestCellDelta:
    def test_delta_contains_only_differing_fields(self):
        base = Scenario(algorithm="crw", n=8, f=1, adversary="coordinator-killer")
        cell = base.with_(seed=7)
        assert scenario_delta(base, cell) == {"seed": 7}
        assert scenario_delta(base, base) == {}

    def test_delta_roundtrip_every_field_kind(self):
        base = Scenario(algorithm="crw", n=8)
        cell = Scenario(
            algorithm="truncated-crw", n=6, t=5, f=2,
            adversary="staggered", workload="sized",
            workload_params={"bits": 32}, params={"k": 3}, seed=9,
            max_rounds=12,
        )
        delta = scenario_delta(base, cell)
        assert apply_scenario_delta(base, delta) == cell

    def test_none_base_is_the_full_dict(self):
        cell = Scenario(algorithm="crw", n=4, seed=3)
        assert scenario_delta(None, cell) == cell.to_dict()
        assert apply_scenario_delta(None, cell.to_dict()) == cell

    def test_delta_snapshots_dict_fields(self):
        base = Scenario(algorithm="crw", n=4)
        cell = base.with_(workload_params={"bits": 8})
        delta = scenario_delta(base, cell)
        delta["workload_params"]["bits"] = 999  # mutating the wire form...
        assert cell.workload_params == {"bits": 8}  # ...never leaks back

    def test_unknown_delta_keys_rejected(self):
        base = Scenario(algorithm="crw", n=4)
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            apply_scenario_delta(base, {"from_the_future": 1})

    def test_delta_respects_concrete_types(self):
        # 1 == 1.0 == True in Python, but the spellings serialize (and
        # resume-key) differently: the delta must carry the cell's form
        # instead of eliding the field and inheriting the base's.
        base = Scenario(algorithm="mr99", n=4, timing={"delay": "constant",
                                                       "value": 1.0})
        cell = base.with_(timing={"delay": "constant", "value": 1})
        delta = scenario_delta(base, cell)
        rebuilt = apply_scenario_delta(base, delta)
        assert rebuilt.to_json() == cell.to_json()
        assert type(rebuilt.timing["value"]) is int
        tup = base.with_(params={"marker": (1, 2)})
        lst = base.with_(params={"marker": [1, 2]})
        assert "params" in scenario_delta(tup, lst)


class TestNormalized:
    def test_equals_dict_roundtrip(self):
        record = execute(Scenario(algorithm="crw", n=6, f=2,
                                  adversary="coordinator-killer", seed=4))
        norm = record.normalized()
        assert norm == RunRecord.from_dict(record.to_dict())
        assert norm.raw is None and record.raw is not None

    def test_sized_payloads_encode(self):
        record = execute(Scenario(algorithm="crw", n=4, workload="sized",
                                  workload_params={"bits": 64}))
        norm = record.normalized()
        assert all(v == {"$sized": [101, 64]} for v in norm.decisions.values())

    def test_idempotent(self):
        record = execute(Scenario(algorithm="crw", n=4, f=1,
                                  adversary="coordinator-killer"))
        norm = record.normalized()
        assert norm.normalized() == norm
        assert norm.to_dict() == record.to_dict()


class TestRecordBatch:
    def test_roundtrip_records(self):
        records = _records()
        batch = RecordBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records

    def test_rows_match_to_dict(self):
        records = _records()
        rows = RecordBatch.from_records(records).to_rows()
        assert rows == [r.to_dict() for r in records]
        assert RecordBatch.from_rows(rows).to_records() == records

    def test_payload_roundtrip_wire_and_json(self):
        records = _records()
        batch = RecordBatch.from_records(records)
        payload = batch.to_payload()
        # Wire form (pickle-like: int pid keys survive).
        assert RecordBatch.from_payload(payload).to_records() == records
        # JSON form (pid keys become strings and come back as ints).
        decoded = json.loads(json.dumps(payload, sort_keys=True))
        assert RecordBatch.from_payload(decoded).to_records() == records

    def test_payload_stores_deltas_not_full_scenarios(self):
        records = _records()
        payload = RecordBatch.from_records(records).to_payload()
        assert payload["cells"][0] == {}  # the base cell itself
        assert all(set(cell) <= {"seed"} for cell in payload["cells"])

    def test_mixed_configuration_batch(self):
        cells = [
            Scenario(algorithm="crw", n=4, f=1, adversary="coordinator-killer"),
            Scenario(algorithm="early-stopping", n=5, f=0, adversary="none"),
            Scenario(algorithm="mr99", n=5, f=1, adversary="coordinator-killer"),
        ]
        records = [execute(c).normalized() for c in cells]
        payload = RecordBatch.from_records(records).to_payload()
        rebuilt = RecordBatch.from_payload(
            json.loads(json.dumps(payload))
        ).to_records()
        assert rebuilt == records

    def test_empty_batch(self):
        batch = RecordBatch()
        assert len(batch) == 0 and batch.to_records() == []
        assert RecordBatch.from_payload(batch.to_payload()).to_records() == []


class TestJsonableBottom:
    def test_bot_sentinels_encode_by_protocol(self):
        from repro.asyncsim.mr99 import BOT
        from repro.baselines.interactive_consistency import BOTTOM

        assert jsonable(BOT) == {"$bot": True}
        assert jsonable(BOTTOM) == {"$bot": True}

    def test_user_payload_with_bottom_repr_is_not_swallowed(self):
        class LooksLikeBot:
            def __repr__(self):
                return "⊥"

        assert jsonable(LooksLikeBot()) == {"$repr": "⊥"}

    def test_bottom_inside_containers(self):
        from repro.asyncsim.mr99 import BOT

        assert jsonable([1, BOT]) == [1, {"$bot": True}]
        assert jsonable((BOT,)) == [{"$bot": True}]

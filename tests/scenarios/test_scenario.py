"""Scenario dataclass: validation and JSON round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import Scenario, scenario_key


class TestValidation:
    def test_minimal(self):
        s = Scenario(algorithm="crw", n=4)
        assert s.t is None and s.f == 0 and s.adversary == "none"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"algorithm": "", "n": 4},
            {"algorithm": "crw", "n": 0},
            {"algorithm": "crw", "n": 4, "f": -1},
            {"algorithm": "crw", "n": 4, "t": 4},  # t must be < n
            {"algorithm": "crw", "n": 4, "t": 2, "f": 3},  # f > t
            {"algorithm": "crw", "n": 4, "seed": "zero"},
            {"algorithm": "crw", "n": "8"},  # quoted number in hand-written JSON
            {"algorithm": "crw", "n": 4, "f": "1"},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ConfigurationError):
            Scenario(**kwargs)

    def test_dict_fields_snapshotted(self):
        params = {"k": 2}
        s = Scenario(algorithm="truncated-crw", n=8, params=params)
        key_before = scenario_key(s)
        params["k"] = 3  # caller mutation must not reach the frozen scenario
        assert s.params == {"k": 2}
        assert scenario_key(s) == key_before

    def test_with_replaces_fields(self):
        base = Scenario(algorithm="crw", n=4)
        changed = base.with_(n=8, f=2, adversary="coordinator-killer")
        assert (changed.n, changed.f) == (8, 2)
        assert base.n == 4  # frozen original untouched


class TestJsonRoundTrip:
    def test_defaults_round_trip(self):
        s = Scenario(algorithm="crw", n=4)
        assert Scenario.from_json(s.to_json()) == s

    def test_full_round_trip(self):
        s = Scenario(
            algorithm="mr99",
            n=9,
            t=4,
            f=2,
            adversary="coordinator-killer",
            workload="skewed",
            workload_params={"alphabet": 2},
            timing={"delay": "lognormal", "mu": 0.0, "sigma": 0.75},
            seed=17,
            max_rounds=50,
            params={"k": 3},
            model="async",
        )
        assert Scenario.from_json(s.to_json()) == s

    def test_json_is_plain_object(self):
        data = json.loads(Scenario(algorithm="ffd", n=6, timing={"D": 50.0}).to_json())
        assert data["algorithm"] == "ffd"
        assert data["timing"] == {"D": 50.0}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"algorithm": "crw", "n": 4, "bogus": 1})

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="incomplete scenario"):
            Scenario.from_dict({"n": 4})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario.from_json("[1, 2]")

    def test_key_is_canonical(self):
        a = Scenario(algorithm="crw", n=4, seed=1)
        b = Scenario(algorithm="crw", n=4, seed=1)
        c = Scenario(algorithm="crw", n=4, seed=2)
        assert scenario_key(a) == scenario_key(b)
        assert scenario_key(a) != scenario_key(c)

"""SweepRunner: executor equivalence, JSONL persistence, resume."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    RunRecord,
    Scenario,
    SweepRunner,
    expand_grid,
    summarize_records,
)


def small_grid(seeds=3):
    return expand_grid(
        ["crw", "early-stopping"], [4],
        adversaries=("coordinator-killer",), seeds=seeds,
    )


class TestExpandGrid:
    def test_f_defaults_to_zero_to_t(self):
        cells = expand_grid(["crw"], [4], adversaries=("coordinator-killer",), seeds=2)
        assert len(cells) == 4 * 2  # f in 0..3, 2 seeds
        assert {c.f for c in cells} == {0, 1, 2, 3}

    def test_none_adversary_is_failure_free_only(self):
        cells = expand_grid(["crw"], [4], adversaries=("none",), seeds=2)
        assert {c.f for c in cells} == {0}

    def test_respects_algorithm_default_t(self):
        cells = expand_grid(["mr99"], [5], adversaries=("coordinator-killer",), seeds=1)
        assert {c.f for c in cells} == {0, 1, 2}  # t = (n-1)//2 = 2

    def test_partial_f_drop_warns(self):
        # mr99 n=5 has t=2, so f=2 survives but the crw cells keep f=2 too;
        # a grid mixing algorithms may legally cap f per algorithm, but the
        # drop must be announced.
        with pytest.warns(UserWarning, match="dropped unexpressible cells"):
            cells = expand_grid(["crw", "mr99"], [5], f_values=[0, 3],
                                adversaries=("coordinator-killer",), seeds=1)
        assert {(c.algorithm, c.f) for c in cells} == {
            ("crw", 0), ("crw", 3), ("mr99", 0),
        }

    def test_incompatible_adversary_cells_dropped_with_warning(self):
        # commit-splitter has no timed plan: the mr99 column must be
        # dropped up front instead of aborting the sweep mid-run.
        with pytest.warns(UserWarning, match="no plan"):
            cells = expand_grid(["crw", "mr99"], [5], f_values=[1],
                                adversaries=("commit-splitter",), seeds=1)
        assert {c.algorithm for c in cells} == {"crw"}

    def test_empty_grid_rejected(self):
        # Every f exceeds t=3: silently running zero cells would let a
        # mistyped sweep "pass" in CI.
        with pytest.raises(ConfigurationError, match="zero cells"):
            expand_grid(["crw"], [4], f_values=[5, 6],
                        adversaries=("coordinator-killer",), seeds=1)

    def test_ffd_summary_surfaces_sim_time(self):
        # FFD runs have no rounds; the sweep summary must expose the
        # timing metric instead of an all-zero rounds column only.
        cells = expand_grid(["ffd"], [6], f_values=[0, 2],
                            adversaries=("coordinator-killer",), seeds=2)
        rows = summarize_records(SweepRunner(cells).run())
        assert all(row.mean_sim_time is not None and row.mean_sim_time > 0
                   for row in rows)
        sync_rows = summarize_records(SweepRunner(
            expand_grid(["crw"], [4], adversaries=("none",), seeds=1)).run())
        assert sync_rows[0].mean_sim_time is None

    def test_summaries_sort_numerically(self):
        cells = expand_grid(["crw"], [4, 16], f_values=[1],
                            adversaries=("coordinator-killer",), seeds=1)
        rows = summarize_records(SweepRunner(cells).run())
        assert [row.n for row in rows] == [4, 16]  # not lexicographic '16' < '4'


class TestSweepRunner:
    def test_serial_matches_individual_execute(self):
        from repro.scenarios import execute

        cells = small_grid(seeds=2)
        records = SweepRunner(cells).run()
        assert len(records) == len(cells)
        spot = execute(cells[3])
        assert records[3].to_dict() == spot.to_dict()

    def test_process_pool_equals_serial(self):
        cells = small_grid(seeds=3)
        serial = SweepRunner(cells, executor="serial").run()
        pooled = SweepRunner(
            cells, executor="process", processes=2, chunk_size=4
        ).run()
        assert [r.to_dict() for r in pooled] == [r.to_dict() for r in serial]

    def test_bad_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner([], executor="gpu")

    def test_summarize_groups_by_cell(self):
        records = SweepRunner(small_grid(seeds=2)).run()
        rows = summarize_records(records)
        assert all(row.seeds == 2 for row in rows)
        assert all(row.spec_ok for row in rows)
        crw_worst = {row.f: row.max_last_round for row in rows if row.algorithm == "crw"}
        assert all(crw_worst[f] <= f + 1 for f in crw_worst)

    def test_summarize_merges_fresh_and_resumed_records(self, tmp_path):
        # A tuple-valued param serializes as a JSON array: records resumed
        # through json.loads carry the list form while fresh records keep
        # the caller's tuple.  Both are one configuration and must land in
        # one summary row (the group key is canonical-JSON, not repr).
        cells = [
            Scenario(algorithm="crw", n=4, f=1, adversary="coordinator-killer",
                     params={"marker": (1, 2)}, seed=seed)
            for seed in range(4)
        ]
        path = tmp_path / "mixed.jsonl"
        SweepRunner(cells[:2], jsonl_path=path).run()
        records = SweepRunner(cells, jsonl_path=path).run()
        rows = summarize_records(records)
        assert len(rows) == 1 and rows[0].seeds == 4


class TestJsonlResume:
    def test_hundred_cell_pool_sweep_with_resume(self, tmp_path):
        """ISSUE acceptance: a 100-cell sweep runs under the process pool
        and resumes from its JSONL after interruption."""
        path = tmp_path / "sweep.jsonl"
        cells = expand_grid(
            ["crw"], [4], f_values=[0, 1], adversaries=("coordinator-killer",),
            seeds=50,
        )
        assert len(cells) == 100

        # "Interrupted" first attempt: only a prefix got persisted.
        first = SweepRunner(cells[:37], executor="process", processes=2,
                            chunk_size=10, jsonl_path=path)
        first.run()
        assert first.executed == 37

        # Resumed full sweep: only the missing 63 cells execute.
        full = SweepRunner(cells, executor="process", processes=2,
                           chunk_size=10, jsonl_path=path)
        records = full.run()
        assert full.resumed == 37
        assert full.executed == 63
        assert len(records) == 100

        # Records come back in input order and match a fresh serial run.
        fresh = SweepRunner(cells, executor="serial").run()
        assert [r.to_dict() for r in records] == [r.to_dict() for r in fresh]

        # The file now covers every cell: a further rerun executes nothing.
        rerun = SweepRunner(cells, executor="serial", jsonl_path=path)
        rerun.run()
        assert rerun.executed == 0 and rerun.resumed == 100

    def test_duplicate_cells_execute_once(self):
        cell = Scenario(algorithm="crw", n=4, f=1, adversary="coordinator-killer")
        runner = SweepRunner([cell, cell, cell])
        records = runner.run()
        assert runner.executed == 1
        assert len(records) == 3  # every occurrence still gets its record
        assert records[0].to_dict() == records[2].to_dict()
        # Occurrences are independent objects: mutating one position's
        # containers must not leak into the others.
        assert records[0] is not records[2]
        records[0].decisions.clear()
        assert records[2].decisions

    def test_foreign_jsonl_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cells = small_grid(seeds=1)
        # A syntactically valid line whose scenario has an unknown key
        # (e.g. written by a newer version) must not abort the resume.
        path.write_text(
            json.dumps({"record": {"scenario": {"algorithm": "crw", "n": 4,
                                                "from_the_future": 1}}}) + "\n"
            + json.dumps({"record": {"scenario": {"n": 4}}}) + "\n"  # missing keys
            + json.dumps([1, 2, 3]) + "\n"  # valid JSON, not an object
        )
        runner = SweepRunner(cells, jsonl_path=path)
        records = runner.run()
        assert runner.executed == len(cells) and runner.resumed == 0
        assert len(records) == len(cells)

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        cells = small_grid(seeds=1)
        runner = SweepRunner(cells, jsonl_path=path)
        runner.run()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record": {"scenario"')  # interrupted mid-write
        resumed = SweepRunner(cells, jsonl_path=path)
        records = resumed.run()
        assert resumed.executed == 0
        assert len(records) == len(cells)

    def test_record_round_trips_through_legacy_jsonl(self, tmp_path):
        path = tmp_path / "one.jsonl"
        cell = Scenario(algorithm="crw", n=4, f=1, adversary="coordinator-killer")
        (record,) = SweepRunner([cell], jsonl_path=path, writer="legacy").run()
        with open(path, encoding="utf-8") as fh:
            stored = RunRecord.from_dict(json.loads(fh.readline())["record"])
        assert stored.scenario == cell
        assert stored.decisions == record.decisions
        assert stored.spec_ok == record.spec_ok

    def test_record_round_trips_through_columnar_jsonl(self, tmp_path):
        from repro.scenarios import RecordBatch

        path = tmp_path / "one.jsonl"
        cell = Scenario(algorithm="crw", n=4, f=1, adversary="coordinator-killer")
        (record,) = SweepRunner([cell], jsonl_path=path).run()
        with open(path, encoding="utf-8") as fh:
            payload = json.loads(fh.readline())["batch"]
        (stored,) = RecordBatch.from_payload(payload).to_records()
        assert stored.scenario == cell
        assert stored == record  # full normalized-record equality

    def test_sized_payloads_serialize(self, tmp_path):
        for writer in ("legacy", "columnar"):
            path = tmp_path / f"sized-{writer}.jsonl"
            cell = Scenario(algorithm="crw", n=4, workload="sized",
                            workload_params={"bits": 64})
            (record,) = SweepRunner([cell], jsonl_path=path, writer=writer).run()
            assert record.spec_ok
            line = json.loads(open(path, encoding="utf-8").readline())
            if writer == "legacy":
                decisions = line["record"]["decisions"]
            else:
                decisions = line["batch"]["decisions"][0]
            assert list(decisions.values())[0] == {"$sized": [101, 64]}

"""Engine leasing: reused (reset) engines are indistinguishable from fresh.

``execute(scenario, lease=lease)`` caches one engine per non-seed
configuration and resets it for every later run of that configuration.
These tests pin the contract the sweep layer depends on: a leased run's
record is byte-identical to an unleased run's, across backends, seeds,
and interleaved configurations — and ``reset()`` on the engines
themselves restores a truly fresh state.
"""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import EngineLease, Scenario, execute, expand_grid
from repro.util.rng import RandomSource


def _mixed_grid():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw", "early-stopping", "mr99"],
            [5, 8],
            adversaries=("coordinator-killer", "random"),
            seeds=2,
        )


class TestLeasedExecuteParity:
    def test_fifty_cells_identical_records(self):
        # Same configuration, 50 seeds: every cell past the first resets
        # the cached engine instead of constructing one.
        scenario = Scenario(algorithm="crw", n=8, f=3, adversary="coordinator-killer")
        lease = EngineLease()
        for seed in range(50):
            cell = scenario.with_(seed=seed)
            fresh = execute(cell)
            leased = execute(cell, lease=lease)
            assert fresh.to_dict() == leased.to_dict(), seed
        assert len(lease) == 1  # one configuration -> one cached engine

    def test_interleaved_configurations(self):
        # Alternating configurations exercise the cache keying: each
        # resets its *own* engine, never a neighbour's.
        lease = EngineLease()
        for s in _mixed_grid():
            assert execute(s).to_dict() == execute(s, lease=lease).to_dict(), s

    def test_async_backend_reuse(self):
        scenario = Scenario(
            algorithm="mr99", n=7, f=2, adversary="random",
            timing={"delay": "lognormal", "mu": 0.3, "sigma": 0.8,
                    "churn_rate": 0.4, "stabilization_time": 10.0},
        )
        lease = EngineLease()
        for seed in range(20):
            cell = scenario.with_(seed=seed)
            assert execute(cell).to_dict() == execute(cell, lease=lease).to_dict()

    def test_leased_and_per_object_modes_key_separately(self):
        scenario = Scenario(algorithm="mr99", n=5, f=1, adversary="coordinator-killer")
        lease = EngineLease()
        a = execute(scenario, lease=lease, batched=None)
        b = execute(scenario, lease=lease, batched=False)
        assert a.to_dict() == b.to_dict()
        assert len(lease) == 2  # distinct keys: the flags shape the engine

    def test_lru_cap_bounds_the_cache(self):
        lease = EngineLease()
        base = Scenario(algorithm="crw", n=4, f=0, adversary="none")
        for n in range(4, 4 + EngineLease.MAX_ENTRIES + 8):
            execute(base.with_(n=n), lease=lease)
        assert len(lease) == EngineLease.MAX_ENTRIES
        # Evicted configurations simply rebuild on the next call.
        record = execute(base.with_(n=4), lease=lease)
        assert record.spec_ok


class TestEngineReset:
    def test_sync_reset_matches_fresh_engine(self):
        from repro.core.crw import CRWConsensus
        from repro.sync.extended import ExtendedSynchronousEngine
        from repro.workloads.crashes import ADVERSARIES

        def procs():
            return [CRWConsensus(pid, 8, 100 + pid) for pid in range(1, 9)]

        def schedule(seed):
            return ADVERSARIES["coordinator-killer"](3).schedule(
                8, 7, RandomSource(seed).spawn("adversary")
            )

        engine = ExtendedSynchronousEngine(
            procs(), schedule(0), t=7, rng=None, trace=False
        )
        first = engine.run()
        for seed in (1, 2, 3):
            reused = engine.reset(procs(), schedule(seed), trace=False).run()
            fresh = ExtendedSynchronousEngine(
                procs(), schedule(seed), t=7, rng=None, trace=False
            ).run()
            assert reused.rounds_executed == fresh.rounds_executed
            assert {
                pid: (o.decided, o.decision, o.decided_round, o.crashed)
                for pid, o in reused.outcomes.items()
            } == {
                pid: (o.decided, o.decision, o.decided_round, o.crashed)
                for pid, o in fresh.outcomes.items()
            }
            assert reused.stats.messages_sent == fresh.stats.messages_sent
            assert reused.stats.bits_sent == fresh.stats.bits_sent

    def test_sync_reset_rejects_wrong_shape(self):
        from repro.core.crw import CRWConsensus
        from repro.sync.extended import ExtendedSynchronousEngine

        engine = ExtendedSynchronousEngine(
            [CRWConsensus(pid, 4, pid) for pid in range(1, 5)], trace=False
        )
        engine.run()
        with pytest.raises(ConfigurationError):
            engine.reset([CRWConsensus(pid, 6, pid) for pid in range(1, 7)])
        with pytest.raises(ConfigurationError):
            engine.reset([])

    def test_classic_reset_still_rejects_control_crashes(self):
        from repro.baselines.floodset import FloodSetConsensus
        from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule
        from repro.sync.engine import ClassicSynchronousEngine

        def procs():
            return [FloodSetConsensus(pid, 4, pid, 2) for pid in range(1, 5)]

        engine = ClassicSynchronousEngine(procs(), t=2, trace=False)
        engine.run()
        bad = CrashSchedule(
            [CrashEvent(pid=1, round_no=1, point=CrashPoint.DURING_CONTROL)]
        )
        with pytest.raises(ConfigurationError):
            engine.reset(procs(), bad)

    def test_async_runner_reset_matches_fresh(self):
        import dataclasses

        from repro.asyncsim.mr99 import MR99Consensus
        from repro.asyncsim.runner import AsyncCrash, AsyncRunner

        def procs():
            return [MR99Consensus(pid, 5, 100 + pid, 2) for pid in range(1, 6)]

        runner = AsyncRunner(
            procs(), t=2, crashes=[AsyncCrash(1, 0.0)], rng=RandomSource(0)
        )
        runner.run()
        for seed in (1, 2, 3):
            crashes = [AsyncCrash(1, 0.0), AsyncCrash(5, 2.0)]
            reused = runner.reset(
                procs(), crashes=list(crashes), rng=RandomSource(seed)
            ).run()
            fresh = AsyncRunner(
                procs(), t=2, crashes=list(crashes), rng=RandomSource(seed)
            ).run()
            assert dataclasses.asdict(reused) == dataclasses.asdict(fresh)

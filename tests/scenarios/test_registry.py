"""Registry behaviour: coverage, duplicate rejection, unknown rejection."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ADVERSARIES,
    ALGORITHMS,
    WORKLOADS,
    AlgorithmDef,
    Registry,
    register_algorithm,
)

#: Every algorithm shipped in the repo must be runnable via the registry
#: (ISSUE acceptance: crw + 3 variants, floodset, early-stopping,
#: interactive consistency, mr99, chandra-toueg, ffd).
REQUIRED = {
    "crw",
    "eager-crw",
    "truncated-crw",
    "increasing-commit-crw",
    "floodset",
    "early-stopping",
    "interactive-consistency",
    "mr99",
    "chandra-toueg",
    "ffd",
}


class TestCoverage:
    def test_all_shipped_algorithms_registered(self):
        assert REQUIRED <= set(ALGORITHMS.names())

    def test_legacy_adversaries_absorbed(self):
        from repro.workloads.crashes import ADVERSARIES as LEGACY

        assert set(LEGACY) <= set(ADVERSARIES.names())

    def test_workloads_present(self):
        assert {"distinct-ints", "sized", "identical", "binary", "skewed"} <= set(
            WORKLOADS.names()
        )

    def test_backends_are_valid(self):
        for _name, algo in ALGORITHMS.items():
            assert algo.backend in ("extended", "classic", "async", "ffd")


class TestRegistryContract:
    def test_unknown_name_rejected_with_available_list(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            ALGORITHMS.get("paxos")

    def test_duplicate_rejected(self):
        reg: Registry[int] = Registry("thing")
        reg.register("x", 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.register("x", 2)
        assert reg.get("x") == 1

    def test_replace_flag_overrides(self):
        reg: Registry[int] = Registry("thing")
        reg.register("x", 1)
        reg.register("x", 2, replace=True)
        assert reg.get("x") == 2

    def test_empty_name_rejected(self):
        reg: Registry[int] = Registry("thing")
        with pytest.raises(ConfigurationError):
            reg.register("", 1)

    def test_register_algorithm_duplicate_rejected(self):
        dup = AlgorithmDef(name="crw", backend="extended", factory=None)
        with pytest.raises(ConfigurationError):
            register_algorithm(dup)

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            AlgorithmDef(name="x", backend="quantum", factory=None)

    def test_registration_is_visible_to_execute(self):
        from repro.core.crw import CRWConsensus
        from repro.scenarios import Scenario, execute

        algo = AlgorithmDef(
            name="crw-test-alias",
            backend="extended",
            factory=lambda n, t, props, params: [
                CRWConsensus(pid, n, props[pid - 1]) for pid in range(1, n + 1)
            ],
        )
        register_algorithm(algo, replace=True)
        record = execute(Scenario(algorithm="crw-test-alias", n=4))
        assert record.spec_ok and record.last_decision_round == 1

"""summarize_record_sources: incremental aggregation over many sources."""

from __future__ import annotations

import warnings

import pytest

from repro.scenarios import (
    RecordBatch,
    SweepRunner,
    expand_grid,
    summarize_record_sources,
    summarize_records,
)


@pytest.fixture(scope="module")
def records():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cells = expand_grid(
            ["crw", "mr99"], [4, 5],
            adversaries=("coordinator-killer",), seeds=3,
        )
    return SweepRunner(cells, executor="serial").run()


class TestStreamingEquivalence:
    def test_split_sources_equal_one_shot(self, records):
        one_shot = summarize_records(records)
        mid = len(records) // 2
        assert summarize_record_sources([records[:mid], records[mid:]]) == one_shot
        # Per-record sources (the shard-file shape: many small iterables).
        assert summarize_record_sources([[r] for r in records]) == one_shot

    def test_lazy_generator_sources(self, records):
        def chunks(size):
            for i in range(0, len(records), size):
                yield iter(records[i : i + size])

        assert summarize_record_sources(chunks(7)) == summarize_records(records)

    def test_record_batch_sources(self, records):
        mid = len(records) // 3
        sources = [
            RecordBatch.from_records(records[:mid]),
            records[mid:],  # mixed source kinds in one pass
        ]
        assert summarize_record_sources(sources) == summarize_records(records)

    def test_mean_floats_accumulate_in_record_order(self, records):
        # Split points never change the float sums: addition happens in
        # the same record order regardless of source boundaries, so the
        # means are bit-equal, not approximately equal.
        one_shot = summarize_records(records)
        for split in (1, 2, 5, len(records) - 1):
            split_rows = summarize_record_sources(
                [records[:split], records[split:]]
            )
            for a, b in zip(split_rows, one_shot):
                assert a.mean_last_round == b.mean_last_round
                assert a.mean_messages == b.mean_messages
                assert a.mean_bits == b.mean_bits
                assert a.mean_sim_time == b.mean_sim_time

    def test_empty_sources(self):
        assert summarize_record_sources([]) == []
        assert summarize_record_sources([[], []]) == []

"""PR 5 acceptance grid: byte-identical records across every data path.

The columnar pipeline must be invisible in the results.  One grid of
scenarios spanning three backends (extended, classic, async) × crashing
adversaries × seeds is executed through every pair of alternatives the
pipeline introduced, and the records must match dict for dict:

* legacy vs columnar JSONL **writer** (including cross-format resume);
* dict vs delta process-pool **wire** protocol;
* fresh vs **refilled** engines (the lease path that skips the
  n-object process factory entirely).
"""

from __future__ import annotations

import warnings

import pytest

from repro.scenarios import (
    EngineLease,
    Scenario,
    SweepRunner,
    execute,
    expand_grid,
)


def parity_grid():
    """3 backends x 2 adversaries x 3 seeds (plus per-backend f spread)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw", "early-stopping", "mr99"],
            [5, 8],
            f_values=[0, 2],
            adversaries=("coordinator-killer", "random"),
            seeds=3,
        )


@pytest.fixture(scope="module")
def grid():
    return parity_grid()


@pytest.fixture(scope="module")
def reference(grid):
    """Unleased, unpersisted serial records — the ground truth."""
    return [execute(cell, trace=False).to_dict() for cell in grid]


class TestWriterParity:
    def test_columnar_and_legacy_writers_match(self, grid, reference, tmp_path):
        for writer in ("columnar", "legacy"):
            runner = SweepRunner(
                grid, jsonl_path=tmp_path / f"{writer}.jsonl", writer=writer
            )
            records = runner.run()
            assert [r.to_dict() for r in records] == reference, writer

    def test_cross_format_resume(self, grid, reference, tmp_path):
        # First half persisted columnar, rest appended by a legacy-writer
        # rerun (and vice versa): resume must stitch both layouts together.
        half = len(grid) // 2
        for first, second in (("columnar", "legacy"), ("legacy", "columnar")):
            path = tmp_path / f"{first}-{second}.jsonl"
            SweepRunner(grid[:half], jsonl_path=path, writer=first).run()
            runner = SweepRunner(grid, jsonl_path=path, writer=second)
            records = runner.run()
            assert runner.resumed == half
            assert runner.executed == len(grid) - half
            assert [r.to_dict() for r in records] == reference

    def test_columnar_file_resumes_with_zero_executed(self, grid, tmp_path):
        path = tmp_path / "full.jsonl"
        SweepRunner(grid, jsonl_path=path).run()
        rerun = SweepRunner(grid, jsonl_path=path)
        rerun.run()
        assert rerun.executed == 0 and rerun.resumed == len(grid)


class TestWireParity:
    def test_delta_and_dict_wire_match(self, grid, reference):
        for wire in ("delta", "dict"):
            records = SweepRunner(
                grid, executor="process", processes=2, chunk_size=7, wire=wire
            ).run()
            assert [r.to_dict() for r in records] == reference, wire


class TestRefillParity:
    def test_leased_refill_matches_fresh_across_grid(self, grid, reference):
        lease = EngineLease()
        leased = [execute(cell, trace=False, lease=lease).to_dict() for cell in grid]
        assert leased == reference

    def test_sync_refill_skips_the_factory(self):
        # Same configuration, many seeds: after the first cell the lease
        # must reuse both the engine *and* its process objects (the
        # factory never runs again) while records stay byte-identical.
        base = Scenario(algorithm="crw", n=8, f=3, adversary="coordinator-killer")
        lease = EngineLease()
        execute(base, lease=lease)
        key = EngineLease.key_for(base, False, None)
        engine = lease.get(key)
        proc_ids = {pid: id(p) for pid, p in engine.procs.items()}
        for seed in range(1, 15):
            cell = base.with_(seed=seed)
            leased = execute(cell, lease=lease)
            assert leased.to_dict() == execute(cell).to_dict(), seed
        engine_after = lease.get(key)
        assert engine_after is engine
        assert {pid: id(p) for pid, p in engine_after.procs.items()} == proc_ids

    def test_async_refill_skips_the_factory(self):
        base = Scenario(
            algorithm="chandra-toueg", n=7, f=2, adversary="staggered",
            timing={"delay": "uniform", "lo": 0.2, "hi": 1.2},
        )
        lease = EngineLease()
        execute(base, lease=lease)
        key = EngineLease.key_for(base, False, None)
        runner = lease.get(key)
        proc_ids = {pid: id(p) for pid, p in runner.procs.items()}
        for seed in range(1, 12):
            cell = base.with_(seed=seed)
            leased = execute(cell, lease=lease)
            assert leased.to_dict() == execute(cell).to_dict(), seed
        runner_after = lease.get(key)
        assert runner_after is runner
        assert {pid: id(p) for pid, p in runner_after.procs.items()} == proc_ids

    def test_refill_declined_falls_back_to_reset(self):
        # interactive-consistency has no batched table: the lease must
        # keep working through the factory + reset path.
        base = Scenario(algorithm="interactive-consistency", n=5, f=1,
                        adversary="coordinator-killer")
        lease = EngineLease()
        for seed in range(4):
            cell = base.with_(seed=seed)
            assert execute(cell, lease=lease).to_dict() == execute(cell).to_dict()

    def test_engine_refill_rejects_wrong_arity(self):
        from repro.errors import ConfigurationError

        base = Scenario(algorithm="crw", n=6, f=1, adversary="coordinator-killer")
        lease = EngineLease()
        execute(base, lease=lease)
        engine = lease.get(EngineLease.key_for(base, False, None))
        with pytest.raises(ConfigurationError, match="proposals"):
            engine.refill([1, 2, 3])

    def test_registry_advertises_refill_capability(self):
        from repro.baselines.floodset import FloodSetConsensus
        from repro.core.crw import CRWConsensus
        from repro.sync.api import SyncProcess, batched_table_refillable

        assert batched_table_refillable(CRWConsensus)
        assert batched_table_refillable(FloodSetConsensus)
        assert not batched_table_refillable(SyncProcess)  # no table registered

    def test_every_registered_sync_table_refill_matches_from_processes(self):
        # Table-level parity: for each refillable sync algorithm, refill
        # on a used table must reproduce a freshly built table's run.
        for algorithm in ("crw", "eager-crw", "truncated-crw",
                          "increasing-commit-crw", "full-broadcast-crw",
                          "floodset", "early-stopping"):
            base = Scenario(algorithm=algorithm, n=6, f=2,
                            adversary="coordinator-killer")
            lease = EngineLease()
            for seed in (0, 1, 2):
                cell = base.with_(seed=seed)
                assert (
                    execute(cell, lease=lease).to_dict() == execute(cell).to_dict()
                ), (algorithm, seed)


class TestPoolAndSerialStillAgree:
    def test_default_paths_end_to_end(self, grid, reference, tmp_path):
        # The all-defaults pipeline (delta wire + columnar writer + leases
        # everywhere) against the ground truth, with persistence on.
        runner = SweepRunner(
            grid, executor="process", processes=2,
            jsonl_path=tmp_path / "default.jsonl",
        )
        records = runner.run()
        assert [r.to_dict() for r in records] == reference

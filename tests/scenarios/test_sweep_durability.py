"""Interrupted-sweep durability: torn lines, partial flushes, exact resume.

A sweep killed mid-chunk leaves a JSONL file whose tail is garbage: the
final line may be torn mid-write (the buffered append was cut by the
kill) and whole chunks may never have flushed.  The contract for both
writers is:

* resume must re-run **exactly** the cells whose records did not survive
  (never a survivor, never fewer than the lost set);
* the final record set after resume must be byte-identical to an
  uninterrupted run's.

Interruption is simulated by truncating a completed sweep's file at
byte/line granularity — the same states a SIGKILL between (or inside)
``write`` calls produces, reproduced deterministically.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.scenarios import SweepRunner, expand_grid


def grid():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return expand_grid(
            ["crw", "mr99"], [5],
            adversaries=("coordinator-killer",), seeds=5,
        )


@pytest.fixture(scope="module")
def cells():
    return grid()


@pytest.fixture(scope="module")
def uninterrupted(cells):
    return [r.to_dict() for r in SweepRunner(cells).run()]


def _records_in(path) -> int:
    """Complete records decodable from a (possibly torn) JSONL file."""
    count = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "record" in entry:
                count += 1
            elif "batch" in entry:
                count += len(entry["batch"]["cells"])
    return count


@pytest.mark.parametrize("writer", ["columnar", "legacy"])
class TestKilledMidChunk:
    def _interrupt(self, path, keep_lines: int, torn_bytes: int) -> None:
        """Rewrite ``path`` as ``keep_lines`` full lines + a torn prefix of
        the next line (``torn_bytes`` of it) — the on-disk state of a kill
        mid-append."""
        lines = path.read_bytes().splitlines(keepends=True)
        assert keep_lines < len(lines), "test grid too small to interrupt"
        torn = lines[keep_lines][:torn_bytes]
        path.write_bytes(b"".join(lines[:keep_lines]) + torn)

    def test_resume_reruns_exactly_the_lost_cells(
        self, writer, cells, uninterrupted, tmp_path
    ):
        path = tmp_path / f"kill-{writer}.jsonl"
        full = SweepRunner(cells, jsonl_path=path, writer=writer, chunk_size=4)
        full.run()

        # Kill: one full flush survives, the second line is torn mid-write,
        # everything after is lost (never flushed).
        self._interrupt(path, keep_lines=1, torn_bytes=25)
        survived = _records_in(path)
        assert 0 < survived < len(cells)

        resumed = SweepRunner(cells, jsonl_path=path, writer=writer, chunk_size=4)
        records = resumed.run()
        assert resumed.resumed == survived
        assert resumed.executed == len(cells) - survived
        assert [r.to_dict() for r in records] == uninterrupted

        # The healed file now covers everything: a further rerun is a no-op.
        healed = SweepRunner(cells, jsonl_path=path, writer=writer)
        healed.run()
        assert healed.executed == 0 and healed.resumed == len(cells)

    def test_torn_first_line_loses_nothing_but_that_chunk(
        self, writer, cells, uninterrupted, tmp_path
    ):
        # Kill during the very first flush: only a torn prefix on disk.
        path = tmp_path / f"first-{writer}.jsonl"
        full = SweepRunner(cells, jsonl_path=path, writer=writer, chunk_size=4)
        full.run()
        self._interrupt(path, keep_lines=0, torn_bytes=40)
        assert _records_in(path) == 0

        resumed = SweepRunner(cells, jsonl_path=path, writer=writer, chunk_size=4)
        records = resumed.run()
        assert resumed.resumed == 0 and resumed.executed == len(cells)
        assert [r.to_dict() for r in records] == uninterrupted

    def test_pool_sweep_interrupted(self, writer, cells, uninterrupted, tmp_path):
        # Same contract under the process executor (chunk flush per task).
        path = tmp_path / f"pool-{writer}.jsonl"
        SweepRunner(cells, jsonl_path=path, writer=writer,
                    executor="process", processes=2, chunk_size=3).run()
        self._interrupt(path, keep_lines=2, torn_bytes=10)
        survived = _records_in(path)
        resumed = SweepRunner(cells, jsonl_path=path, writer=writer,
                              executor="process", processes=2, chunk_size=3)
        records = resumed.run()
        assert resumed.resumed == survived
        assert resumed.executed == len(cells) - survived
        assert [r.to_dict() for r in records] == uninterrupted

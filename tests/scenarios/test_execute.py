"""The execute() facade: backend coverage, spec verdicts, legacy parity."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import RunConfig, run_once
from repro.scenarios import ALGORITHMS, Scenario, execute


class TestBackendCoverage:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS.names()))
    def test_every_registered_algorithm_executes(self, algorithm):
        record = execute(Scenario(algorithm=algorithm, n=5, f=1,
                                  adversary="coordinator-killer", seed=3))
        assert record.spec_ok, record.violations
        assert record.backend == ALGORITHMS.get(algorithm).backend
        assert len(record.decisions) >= 1
        assert record.f_actual == 1

    def test_crw_early_stopping_shape(self):
        record = execute(Scenario(algorithm="crw", n=8, f=3,
                                  adversary="coordinator-killer"))
        assert record.last_decision_round == record.f_actual + 1

    def test_eager_crw_violates_under_partial_data_delivery(self):
        # The ablation exists to fail: a coordinator crash that delivers
        # DATA to only a subset splits eager deciders from the rest.
        record = execute(Scenario(algorithm="eager-crw", n=4, f=1,
                                  adversary="coordinator-killer-subset", seed=0))
        assert not record.spec_ok
        assert any("agreement" in v for v in record.violations)

    def test_truncated_crw_takes_k_param(self):
        record = execute(Scenario(algorithm="truncated-crw", n=5, f=0,
                                  adversary="none", params={"k": 2}))
        assert record.last_decision_round <= 2

    def test_interactive_consistency_uses_vector_spec(self):
        record = execute(Scenario(algorithm="interactive-consistency", n=4, f=1,
                                  adversary="random", seed=5))
        # Vector decisions are not proposals; the dedicated IC checker
        # must be in effect (the plain checker would flag validity).
        assert record.spec_ok, record.violations

    def test_async_records_sim_time(self):
        record = execute(Scenario(algorithm="mr99", n=5, f=1,
                                  adversary="coordinator-killer",
                                  timing={"delay": "uniform", "lo": 0.5, "hi": 1.5}))
        assert record.spec_ok and record.sim_time is not None

    def test_ffd_timing_params(self):
        record = execute(Scenario(algorithm="ffd", n=6, f=2,
                                  adversary="coordinator-killer",
                                  timing={"D": 50.0, "d": 1.0}))
        assert record.spec_ok
        assert record.raw.max_decision_time <= 50.0 + 3 * 1.0
        assert record.messages_sent > 0

    def test_deterministic_per_scenario(self):
        s = Scenario(algorithm="chandra-toueg", n=5, f=1, adversary="random", seed=9)
        a, b = execute(s), execute(s)
        assert a.to_dict() == b.to_dict()


class TestRejections:
    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            execute(Scenario(algorithm="paxos", n=4))

    def test_unknown_adversary(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            execute(Scenario(algorithm="crw", n=4, adversary="byzantine"))

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            execute(Scenario(algorithm="crw", n=4, workload="zipfian"))

    def test_model_mismatch(self):
        with pytest.raises(ConfigurationError, match="backend"):
            execute(Scenario(algorithm="crw", n=4, model="async"))

    def test_model_match_accepted(self):
        assert execute(Scenario(algorithm="crw", n=4, model="extended")).spec_ok

    def test_f_beyond_default_t(self):
        # mr99 default t = (n-1)//2 = 2; f=3 exceeds it.
        with pytest.raises(ConfigurationError, match="exceeds"):
            execute(Scenario(algorithm="mr99", n=5, f=3))

    def test_sync_adversary_without_timed_plan(self):
        with pytest.raises(ConfigurationError, match="timed crash plan"):
            execute(Scenario(algorithm="mr99", n=5, f=1, adversary="commit-splitter"))

    def test_unknown_delay_model(self):
        with pytest.raises(ConfigurationError, match="delay model"):
            execute(Scenario(algorithm="mr99", n=5, timing={"delay": "teleport"}))

    def test_typoed_timing_key_rejected(self):
        # 'sigm' would silently fall back to the default sigma otherwise.
        with pytest.raises(ConfigurationError, match="timing key"):
            execute(Scenario(algorithm="mr99", n=5,
                             timing={"delay": "lognormal", "sigm": 0.75}))
        with pytest.raises(ConfigurationError, match="timing key"):
            execute(Scenario(algorithm="ffd", n=6, timing={"DD": 50.0}))

    def test_detector_churn_params_forwarded(self):
        record = execute(Scenario(
            algorithm="mr99", n=5, f=1, adversary="coordinator-killer",
            timing={"stabilization_time": 5.0, "churn_rate": 0.5,
                    "false_suspicion_duration": 2.0},
        ))
        assert record.spec_ok, record.violations


#: (algorithm, adversary) cells expressible by the legacy runner.  The
#: extended model takes every adversary; the classic engines reject
#: DURING_CONTROL crash points, so classic algorithms pair only with the
#: adversaries whose schedules are classic-legal (legacy mapped "random"
#: to "random-classic" and nothing else).
PARITY_CELLS = [
    (algorithm, adversary)
    for algorithm, adversaries in (
        ("crw", ["none", "coordinator-killer", "commit-splitter", "max-traffic",
                 "staggered", "random"]),
        ("floodset", ["none", "staggered", "random"]),
        ("early-stopping", ["none", "staggered", "random"]),
    )
    for adversary in adversaries
]


class TestLegacyParity:
    """execute(scenario) reproduces legacy run_once byte for byte."""

    @pytest.mark.parametrize("algorithm,adversary", PARITY_CELLS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_decisions_and_rounds_identical(self, algorithm, adversary, seed):
        n, t, f = 6, 5, 2
        legacy = run_once(RunConfig(algorithm, n, t, f, adversary, seed))
        record = execute(Scenario(algorithm=algorithm, n=n, t=t, f=f,
                                  adversary=adversary, seed=seed))
        assert record.decisions == legacy.decisions
        assert record.decision_rounds == legacy.decision_rounds
        assert record.crashed == legacy.crashed_pids
        assert record.messages_sent == legacy.stats.messages_sent
        assert record.bits_sent == legacy.stats.bits_sent

    def test_value_bits_parity(self):
        legacy = run_once(RunConfig("crw", 4, 3, 0, "none", 0, value_bits=128))
        record = execute(RunConfig("crw", 4, 3, 0, "none", 0, 128).to_scenario())
        assert record.bits_sent == legacy.stats.bits_sent == 3 * 128 + 3

    def test_run_once_raw_is_run_result(self):
        from repro.sync.result import RunResult

        assert isinstance(run_once(RunConfig("crw", 4, 3, 0, "none", 0)), RunResult)

    def test_run_once_rejects_non_sync_backends(self):
        # run_once's declared contract is RunResult; async configs must
        # fail immediately, not return a foreign result shape.
        with pytest.raises(ConfigurationError, match="synchronous"):
            run_once(RunConfig("mr99", 5, 2, 1, "coordinator-killer", 0))

    def test_cli_run_defaults_t_per_algorithm(self, capsys):
        # Legacy `run` without --t must use the algorithm's own t rule:
        # n-1 would violate mr99's majority requirement and traceback.
        from repro.harness.cli import main

        assert main(["run", "-a", "mr99", "--n", "5", "--f", "1",
                     "--adversary", "coordinator-killer"]) == 0
        assert "spec:  OK" in capsys.readouterr().out

    def test_cli_scenario_run_trace_prints(self, capsys):
        from repro.harness.cli import main

        assert main(["scenario", "run", "-a", "crw", "--n", "4", "--trace"]) == 0
        assert "decide" in capsys.readouterr().out

    def test_cli_scenario_file_rejects_conflicting_flags(self, tmp_path, capsys):
        # Flags alongside --file would lose silently (e.g. sweeping --seed
        # over a base file runs the file's seed every time).
        from repro.harness.cli import main

        path = tmp_path / "s.json"
        path.write_text(Scenario(algorithm="crw", n=4).to_json())
        assert main(["scenario", "run", "--file", str(path), "--seed", "99"]) == 2
        assert "--seed" in capsys.readouterr().err
        # Even a flag passed at its documented default must be caught —
        # the file's value (not the flag's) would win otherwise.
        assert main(["scenario", "run", "--file", str(path), "--seed", "0"]) == 2

    def test_cli_config_errors_are_clean(self, capsys):
        # User-input mistakes exit 2 with the curated one-line message,
        # not a traceback.
        from repro.harness.cli import main

        assert main(["scenario", "run", "-a", "paxos", "--n", "4"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown algorithm 'paxos'")

    def test_cli_run_uses_registered_spec(self, capsys):
        # RunConfig now accepts every registered algorithm; the CLI must
        # judge each with its registered checker (IC decides vectors,
        # which the plain validity clause would wrongly flag).
        from repro.harness.cli import main

        assert main(["run", "-a", "interactive-consistency", "--n", "4",
                     "--t", "1", "--adversary", "none"]) == 0
        assert "spec:  OK" in capsys.readouterr().out

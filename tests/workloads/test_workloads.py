"""Tests for workload generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.payload import SizedValue
from repro.util.rng import RandomSource
from repro.workloads.crashes import ADVERSARIES, CrashGrid, make_adversary
from repro.workloads.proposals import (
    binary_vector,
    distinct_ints,
    identical,
    sized_proposals,
    skewed,
)


class TestProposals:
    def test_distinct(self):
        assert distinct_ints(3) == [101, 102, 103]
        with pytest.raises(ConfigurationError):
            distinct_ints(0)

    def test_binary(self):
        v = binary_vector(100, RandomSource(1))
        assert set(v) <= {0, 1}
        assert 0 in v and 1 in v

    def test_sized(self):
        props = sized_proposals(3, 64)
        assert all(isinstance(p, SizedValue) and p.bits == 64 for p in props)
        assert len({p.value for p in props}) == 3
        with pytest.raises(ConfigurationError):
            sized_proposals(3, 0)

    def test_identical(self):
        assert identical(3, "x") == ["x", "x", "x"]

    def test_skewed_alphabet(self):
        v = skewed(200, RandomSource(2), alphabet=2)
        assert set(v) <= {0, 1}
        with pytest.raises(ConfigurationError):
            skewed(3, RandomSource(1), alphabet=0)


class TestAdversaryRegistry:
    def test_all_registered_construct(self):
        for name in ADVERSARIES:
            adv = make_adversary(name, 1)
            sched = adv.schedule(5, 2, RandomSource(1))
            assert sched.crash_count <= 2

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_adversary("nope", 1)


class TestCrashGrid:
    def test_iteration_shape(self):
        grid = CrashGrid(n_values=(4,), adversaries=("none", "random"), seeds=2)
        cells = list(grid)
        # none -> f=0 only (2 seeds); random -> f in 0..3 (4*2 seeds).
        assert len(cells) == 2 + 4 * 2

    def test_t_rules(self):
        assert CrashGrid((), (), t_rule="n-1").t_for(7) == 6
        assert CrashGrid((), (), t_rule="third").t_for(9) == 3
        with pytest.raises(ConfigurationError):
            CrashGrid((), (), t_rule="bogus").t_for(4)

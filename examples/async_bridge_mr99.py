#!/usr/bin/env python3
"""The Section-4 bridge: COMMIT is MR99's second communication step.

Runs the paper's synchronous algorithm and the MR99 asynchronous ◇S
algorithm side by side on equivalent failure scenarios and shows the
structural correspondence the paper draws:

* both are rotating-coordinator, two-step-per-round protocols;
* step 2 ("COMMIT" / the AUX exchange) certifies that the coordinator's
  estimate is *locked*;
* the extended model lets a single process (the coordinator) issue step 2
  with zero extra synchronization — asynchrony makes everyone exchange it.

    python examples/async_bridge_mr99.py
"""

from repro import CoordinatorKiller, CRWConsensus, ExtendedSynchronousEngine
from repro.asyncsim import AsyncCrash, AsyncRunner, DetectorSpec, MR99Consensus
from repro.util import RandomSource, Table


def run_crw(n: int, f: int) -> tuple[int, int]:
    rng = RandomSource(5)
    procs = [CRWConsensus(pid, n, 100 + pid) for pid in range(1, n + 1)]
    schedule = CoordinatorKiller(f).schedule(n, n - 1, rng)
    result = ExtendedSynchronousEngine(procs, schedule, t=n - 1, rng=rng).run()
    return result.last_decision_round, result.stats.messages_sent


def run_mr99(n: int, t: int, f: int) -> tuple[int, int]:
    procs = [MR99Consensus(pid, n, 100 + pid, t) for pid in range(1, n + 1)]
    runner = AsyncRunner(
        procs,
        t=t,
        crashes=[AsyncCrash(pid, 0.0) for pid in range(1, f + 1)],
        detector_spec=DetectorSpec(detection_latency=1.0),
        rng=RandomSource(5),
    )
    result = runner.run()
    assert result.check_consensus() == []
    return max(result.decision_rounds.values()), result.stats.async_sent


def main() -> None:
    n = 5
    t = (n - 1) // 2  # MR99 needs a correct majority

    print("same principle, two models (n=5, first-f-coordinators crash):\n")
    table = Table(
        ["f", "CRW rounds", "MR99 rounds", "CRW msgs", "MR99 msgs"],
        title="rounds to decide / messages sent",
    )
    for f in range(t + 1):
        crw_rounds, crw_msgs = run_crw(n, f)
        mr_rounds, mr_msgs = run_mr99(n, t, f)
        table.add_row(f, crw_rounds, mr_rounds, crw_msgs, mr_msgs)
    print(table.to_ascii())

    print(
        "\nBoth protocols spend one coordinated round per dead coordinator.\n"
        "The message bill differs by design: MR99's second step is an\n"
        "all-to-all AUX exchange plus round-number headers (asynchrony has\n"
        "no free round boundaries), while the extended model's COMMIT is a\n"
        "single pipelined 1-bit message from the coordinator."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""When do synchronization messages pay off? (Section 2.2, related work [1])

Prints the paper's completion-time comparison across the three designs:

* extended model (this paper):        (f+1)(D+d)
* classic early-stopping consensus:   (f+2)D
* fast-failure-detector consensus:    ~ D + f*d_fd   (related work [1])

and locates the crossover d = D/(f+1), then validates the fast-FD curve
against the *measured* decision times of the timed simulator.

    python examples/timing_tradeoff.py
"""

from repro.ffd import TimedCrash, TimedSpec, run_ffd_consensus
from repro.timing import RoundCost, crossover_d
from repro.util import RandomSource, Table


def main() -> None:
    D = 100.0

    print("-- completion time (D = 100) --\n")
    table = Table(["f", "d/D", "extended (f+1)(D+d)", "classic ES (f+2)D", "winner"])
    for f in (0, 1, 2, 4):
        for frac in (0.01, 0.1, 0.5, 1.0):
            cost = RoundCost(D=D, d=frac * D)
            crw, es = cost.crw_time(f), cost.early_stopping_time(f)
            table.add_row(f, frac, crw, es, "extended" if crw < es else "classic")
    print(table.to_ascii())

    print("\n-- crossover: the extended model wins iff d < D/(f+1) --\n")
    for f in (0, 1, 2, 4):
        print(f"  f={f}: break-even d = {crossover_d(D, f):.1f}  (= D/{f + 1})")

    print("\n-- fast failure detector (d_fd = 1 << D = 100), measured --\n")
    n = 6
    spec = TimedSpec(n=n, D=D, d=1.0)
    table = Table(["f", "measured decision time", "model D+(f+1)d", "extended (f+1)(D+d)"])
    cost = RoundCost(D=D, d=1.0)
    for f in (0, 1, 2, 3):
        crashes = [TimedCrash(pid, 0.0) for pid in range(1, f + 1)]
        result = run_ffd_consensus(
            spec, [100 + pid for pid in range(1, n + 1)], crashes, rng=RandomSource(f)
        )
        assert result.check_consensus() == []
        table.add_row(f, result.max_decision_time, cost.ffd_time(f, 1.0), cost.crw_time(f))
    print(table.to_ascii())
    print(
        "\nBoth enrichments beat the classic bound; the fast detector pays D once\n"
        "while the extended model pays D per round — and needs no extra hardware."
    )


if __name__ == "__main__":
    main()

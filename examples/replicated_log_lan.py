#!/usr/bin/env python3
"""A replicated key-value service on a (simulated) LAN cluster.

The paper pitches the extended model at LANs with reliable links, where
its algorithm commits agreement in a *single* round when the coordinator
is healthy.  This example runs the application such a cluster would
deploy: the consensus *service* — clients stream commands through a
leader into replicated-log slots — first in steady state, then through
a leader-kill crash storm, and finally past its crash budget:

* steady-state: every command commits in one single-round slot;
* a seeded storm kills the leader twice mid-slot: the ring rotates,
  stale acks are fenced, client retries dedup against the commit
  ledger, and every acknowledged command still commits exactly once;
* a third crash exhausts ``t``: the service drains in-flight work,
  refuses the rest, and reports an honest "degraded" instead of
  wedging.

    python examples/replicated_log_lan.py
"""

from repro.fabric import ServiceFaultPlan
from repro.service import ClosedLoopWorkload, ConsensusService


def describe(title: str, report) -> None:
    c = report.counters
    print(f"-- {title} --")
    print(
        f"  {c['acked']}/{c['submitted']} acked over {c['slots']} slots "
        f"({c['noop_slots']} noop), {c['refused']} refused"
    )
    print(
        f"  kills={c['kills']} rotations={report.rotations} "
        f"(epoch {report.epoch}), retries={c['retried']} "
        f"deduped={c['deduped']} acks fenced={c['rejected_stale']}"
    )
    print(
        f"  throughput {report.throughput:.3f} acks/unit, "
        f"latency p50={report.latency['p50']:.1f} "
        f"p99={report.latency['p99']:.1f}"
    )
    digests = sorted(set(report.digests.values()))
    print(f"  survivors {sorted(report.digests)} digest(s): {digests}")
    print(f"  state={report.state} problems={report.problems or 'none'}\n")


def main() -> None:
    n, t = 5, 2

    # Steady state: 3 clients, one outstanding write each, no faults.
    service = ConsensusService(n, machine="kv", t=t, seed=7)
    report = service.run(ClosedLoopWorkload(3, 4))
    describe(f"steady state: n={n}, t={t}, failure-free", report)
    # Every slot is a single round (elapsed == slot count); latency above
    # 1 unit is pure queueing behind the other two clients.
    assert report.ok and report.elapsed == report.counters["slots"]

    # A leader-kill storm inside the budget (t=3 leaves headroom): the
    # coordinator dies while broadcasting (point=rand picks the crash
    # point per firing), the ring rotates to the next live pid, clients
    # retry through fencing and the dedup ledger.
    storm = ServiceFaultPlan.from_spec(
        "kill:leader,after=3,every=4,count=2", seed=7
    )
    service = ConsensusService(n, machine="kv", t=3, seed=7, faults=storm)
    report = service.run(ClosedLoopWorkload(3, 4))
    describe("leader-kill storm (2 kills, budget t=3)", report)
    assert report.ok and report.rotations == 2
    assert len(set(report.digests.values())) == 1

    # One crash too many: the third kill would exceed t, so the service
    # degrades — drains what it accepted, refuses the rest, exits honest.
    overload = ServiceFaultPlan.from_spec(
        "kill:leader,after=1,every=2,count=3", seed=7
    )
    service = ConsensusService(n, machine="kv", t=t, seed=7, faults=overload)
    report = service.run(ClosedLoopWorkload(3, 4))
    describe("crash budget exhausted (3rd kill refused)", report)
    assert report.state == "degraded" and report.budget_exhausted
    assert report.problems == []  # degraded, never incorrect


if __name__ == "__main__":
    main()

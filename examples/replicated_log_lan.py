#!/usr/bin/env python3
"""A replicated key-value store on a (simulated) LAN cluster.

The paper pitches the extended model at LANs with reliable links, where
its algorithm commits agreement in a *single* round when the coordinator
is healthy.  This example builds the application such a cluster would run:
a replicated KV log in which every slot is one Figure-1 consensus
instance, and shows

* steady-state: every slot commits in 1 round;
* a replica crash mid-slot: that slot costs f+1 rounds, the dead replica
  stays dead, and all surviving replicas keep identical state digests.

    python examples/replicated_log_lan.py
"""

from repro.rsm import Command, KVStore, ReplicatedLog
from repro.sync import CrashEvent, CrashPoint
from repro.util import RandomSource


def main() -> None:
    n = 5
    log = ReplicatedLog(n, KVStore, t=2, rng=RandomSource(7))

    print(f"-- replicated KV store on {n} replicas (t=2) --\n")

    # Steady state: clients submit writes through replica 1.
    for key, value in [("user:1", "ada"), ("user:2", "grace"), ("cfg:mode", "fast")]:
        slot = log.commit({1: Command(1, f"set {key} {value}")})
        print(f"slot {slot.slot}: {slot.decided} committed in {slot.rounds} round(s)")

    # Replica 1 (the round-1 coordinator!) dies while broadcasting.
    print("\n-- replica 1 crashes during its data step --")
    slot = log.commit(
        {2: Command(2, "set user:3 edsger")},
        crash_events=[
            CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({3}))
        ],
    )
    print(
        f"slot {slot.slot}: {slot.decided} committed in {slot.rounds} round(s), "
        f"new crashes: {slot.new_crashes}"
    )

    # Life goes on without replica 1; slots now need 2 rounds (p1's slot of
    # the coordinator rotation is a ghost) — still uniform, still fast.
    for key, value in [("user:4", "barbara"), ("user:5", "leslie")]:
        slot = log.commit({3: Command(3, f"set {key} {value}")})
        print(f"slot {slot.slot}: {slot.decided} committed in {slot.rounds} round(s)")

    print("\n-- final state --")
    problems = log.check_invariants()
    print(f"invariants: {'OK' if not problems else problems}")
    for pid in log.live_pids:
        replica = log.replicas[pid]
        print(
            f"replica {pid}: {len(replica.log)} entries, "
            f"digest {replica.machine.digest()}"
        )
    dead = log.replicas[1]
    print(f"replica 1 (dead): {len(dead.log)} entries (a prefix of the live log)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Touring the paper's lower bound with the exhaustive adversary.

Three demonstrations on small systems:

1. the Figure-1 algorithm survives *every* adversary (exhaustive) and some
   run really needs f+1 rounds — Theorem 1 is tight;
2. a claimed t-round algorithm (the real algorithm with a hard deadline at
   round t) is broken by a concrete, replayable crash schedule — the
   executable face of Theorems 3/4;
3. a bivalent initial configuration exists — the starting point of the
   Aguilera-Toueg-style proof.

    python examples/lower_bound_explorer.py
"""

from repro.core import CRWConsensus, TruncatedCRW
from repro.lowerbound import (
    ExplorationConfig,
    Explorer,
    certify_f_plus_one,
    find_bivalent_initial,
    refute_round_bound,
)


def crw_map(n):
    return lambda: {pid: CRWConsensus(pid, n, pid) for pid in range(1, n + 1)}


def main() -> None:
    n, t = 4, 2

    print(f"-- 1. exhaustive check of the Figure-1 algorithm (n={n}, t={t}) --")
    report = Explorer(
        crw_map(n),
        ExplorationConfig(max_crashes=t, max_crashes_per_round=t, max_rounds=t + 2),
    ).explore()
    print(f"explored {report.leaves} complete runs ({report.nodes} round-executions)")
    print(f"uniform consensus everywhere : {report.ok}")
    print(f"decisions always by f+1      : {report.early_stopping_holds}")
    print(f"worst run needed             : {report.worst_last_decision_round} rounds")

    cert = certify_f_plus_one(
        lambda: [CRWConsensus(pid, n, 100 + pid) for pid in range(1, n + 1)], f=t
    )
    print(f"cascade certificate          : {cert.statement} -> {cert.holds}")

    print(f"\n-- 2. refuting a claimed {t}-round algorithm (Theorem 3/4) --")
    refutation = refute_round_bound(
        lambda: {pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)},
        max_crashes=t,
        max_rounds=t + 1,
    )
    print(f"violating run exists: {refutation.holds}")
    witness = refutation.witness
    print(f"witness violations  : {witness.violations}")
    print("witness schedule    :")
    for event in witness.schedule:
        print(
            f"  p{event.pid} crashes in round {event.round_no} at {event.point.value}"
            + (
                f" delivering to {sorted(event.data_subset)}"
                if event.data_subset is not None
                else ""
            )
        )
    print(f"decisions in witness: {witness.decisions}")

    print("\n-- 3. a bivalent initial configuration (binary proposals) --")
    bivalent = find_bivalent_initial(
        lambda props: {
            pid: CRWConsensus(pid, len(props), props[pid - 1])
            for pid in range(1, len(props) + 1)
        },
        3,
        ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=3),
    )
    print(f"proposals {bivalent.proposals}: reachable decisions {set(bivalent.reachable)}")
    print("(two reachable values = the adversary still controls the outcome,")
    print(" which is exactly what the bivalency proof of Theorem 3 leverages)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Interactive consistency: the problem behind the paper's t+1 citation.

The introduction's classic lower bound ("any t-resilient consensus
algorithm requires t+1 rounds") cites Fischer–Lynch, whose result is
stated for *interactive consistency*: every correct process outputs the
same full **vector** of proposals, with ⊥ allowed only for crashed
processes.  This demo runs the flooding IC algorithm under a partial
crash and shows the agreed vector, then derives consensus from it
(decide the minimum entry) — the reduction that carries the lower bound
over to consensus.

    python examples/interactive_consistency_demo.py
"""

from repro.baselines import (
    BOTTOM,
    ICConsensus,
    InteractiveConsistency,
    check_interactive_consistency,
)
from repro.sync import ClassicSynchronousEngine, CrashEvent, CrashPoint, CrashSchedule
from repro.util import RandomSource


def main() -> None:
    n, t = 5, 2
    proposals = [17, 4, 23, 8, 15]
    print(f"n={n}, t={t}, proposals={proposals}")
    print("p1 crashes mid-broadcast, reaching only p3;")
    print("p4 crashes silently before ever speaking.\n")

    schedule = CrashSchedule(
        [
            CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({3})),
            CrashEvent(4, 1, CrashPoint.BEFORE_SEND),
        ]
    )

    procs = [
        InteractiveConsistency(pid, n, proposals[pid - 1], t)
        for pid in range(1, n + 1)
    ]
    result = ClassicSynchronousEngine(
        procs, schedule, t=t, rng=RandomSource(3)
    ).run()

    problems = check_interactive_consistency(result)
    print(f"IC spec: {'OK' if not problems else problems}")
    vector = next(iter(result.decisions.values()))
    print(f"agreed vector ({result.rounds_executed} rounds = t+1):")
    for j, entry in enumerate(vector, start=1):
        status = "crashed" if result.outcomes[j].crashed else "correct"
        shown = "⊥" if entry is BOTTOM else entry
        print(f"  V[{j}] = {shown:>3}   (p{j} {status})")
    print(
        "\np1's 17 survived through p3's relay; p4 never spoke, so its slot"
        "\nis ⊥ at every decider — identically, which is the whole point.\n"
    )

    # The reduction: consensus = min over the agreed vector.
    procs = [ICConsensus(pid, n, proposals[pid - 1], t) for pid in range(1, n + 1)]
    result = ClassicSynchronousEngine(
        procs,
        CrashSchedule(
            [
                CrashEvent(1, 1, CrashPoint.DURING_DATA, data_subset=frozenset({3})),
                CrashEvent(4, 1, CrashPoint.BEFORE_SEND),
            ]
        ),
        t=t,
        rng=RandomSource(3),
    ).run()
    print(f"IC -> consensus reduction decides: {set(result.decisions.values())}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Synchronization messages in fault-free computing: Chandy-Lamport.

The paper's related work points at the Chandy-Lamport marker as the
classic synchronization message: a 1-bit message whose channel *position*
separates before from after.  This demo runs the snapshot over a live
money-transfer system and checks the signature property of a consistent
cut: recorded balances + recorded in-transit money = total money.

    python examples/snapshot_markers.py
"""

from repro.snapshot import TransferSystem
from repro.util import RandomSource


def main() -> None:
    n = 5
    system = TransferSystem(n, initial_balance=100, rng=RandomSource(11))
    print(f"{n} banks, total money in the system: {system.total}\n")

    # Heavy concurrent traffic...
    system.random_traffic(transfers=300, horizon=60.0)
    # ...with a snapshot initiated right in the middle of it.
    system.initiate_snapshot(initiator=3, at=20.0)
    system.run(until=100_000.0)

    print(f"transfers completed : {system.transfers_sent}")
    print(f"markers sent        : {system.markers_sent} (1 bit each)")
    print(f"snapshot complete   : {system.snapshot_complete}\n")

    state_money = 0
    transit_money = 0
    for pid in sorted(system.records):
        rec = system.records[pid]
        in_transit = {src: msgs for src, msgs in rec.channel_messages.items() if msgs}
        state_money += rec.state
        transit_money += sum(sum(m) for m in in_transit.values())
        print(f"bank {pid}: recorded balance {rec.state:>4}, in-transit {in_transit or '{}'}")

    print(f"\nrecorded balances   : {state_money}")
    print(f"recorded in transit : {transit_money}")
    print(f"snapshot total      : {state_money + transit_money} (== {system.total})")
    problems = system.check_consistency()
    print(f"consistency         : {'OK' if not problems else problems}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario sweeps: one grid, four execution stacks, a process pool.

Demonstrates the scenario layer end to end:

1. a cross-backend tour — the *same* declarative shape runs the paper's
   algorithm (extended model), a classic baseline, an asynchronous ◇S
   algorithm, and fast-failure-detector consensus;
2. a seed-dense grid swept under the multiprocessing executor with JSONL
   persistence, then resumed (zero cells re-executed).

    python examples/scenario_sweep.py
"""

import os
import tempfile

from repro import Scenario, SweepRunner, execute, expand_grid
from repro.scenarios import summarize_records


def tour() -> None:
    print("== one Scenario shape, four backends ==\n")
    cells = [
        Scenario(algorithm="crw", n=8, f=2, adversary="coordinator-killer"),
        Scenario(algorithm="early-stopping", n=8, f=2, adversary="staggered"),
        Scenario(algorithm="mr99", n=7, f=2, adversary="coordinator-killer",
                 timing={"delay": "lognormal", "mu": 0.0, "sigma": 0.75}),
        Scenario(algorithm="ffd", n=6, f=2, adversary="coordinator-killer",
                 timing={"D": 100.0, "d": 1.0}),
    ]
    for scenario in cells:
        record = execute(scenario)
        assert record.spec_ok, record.violations
        where = (
            f"round {record.last_decision_round}"
            if record.backend in ("extended", "classic")
            else f"t={record.sim_time:.1f}"
        )
        print(f"  {scenario.algorithm:16s} [{record.backend:8s}] "
              f"decided by {where:12s} msgs={record.messages_sent}")
    print()


def sweep() -> None:
    cells = expand_grid(
        ["crw", "early-stopping", "floodset"],
        n_values=[4, 6],
        f_values=[0, 1, 2],
        adversaries=("staggered",),
        seeds=7,
    )
    print(f"== {len(cells)}-cell grid, process pool, JSONL resume ==\n")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "sweep.jsonl")
        runner = SweepRunner(cells, executor="process", chunk_size=8, jsonl_path=path)
        records = runner.run()
        print(f"  first pass : {runner.executed} executed, {runner.resumed} resumed")
        resumed = SweepRunner(cells, executor="process", chunk_size=8, jsonl_path=path)
        resumed.run()
        print(f"  second pass: {resumed.executed} executed, {resumed.resumed} resumed\n")

    for row in summarize_records(records):
        if row.f == 2:
            print(f"  {row.algorithm:16s} n={row.n} f={row.f}: "
                  f"max last round {row.max_last_round}, spec "
                  f"{'ok' if row.spec_ok else 'VIOLATED'}")
    print("\nCRW stays at 1 round under benign (staggered) crashes;")
    print("the classic baselines pay their t+1 / f+2 schedules.")


def main() -> None:
    tour()
    sweep()


if __name__ == "__main__":
    main()

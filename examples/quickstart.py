#!/usr/bin/env python3
"""Quickstart: uniform consensus in f+1 rounds with synchronization messages.

Runs the paper's Figure-1 algorithm on the extended synchronous model:
first failure-free (one round!), then under the worst-case coordinator
cascade (exactly f+1 rounds), printing what every process decided and the
message/bit traffic.

    python examples/quickstart.py
"""

from repro import (
    CoordinatorKiller,
    CRWConsensus,
    ExtendedSynchronousEngine,
    assert_consensus,
)
from repro.util import RandomSource


def run(n: int, f: int) -> None:
    rng = RandomSource(42)
    processes = [CRWConsensus(pid, n, proposal=f"value-of-p{pid}") for pid in range(1, n + 1)]
    schedule = CoordinatorKiller(f).schedule(n, t=n - 1, rng=rng)
    engine = ExtendedSynchronousEngine(processes, schedule, t=n - 1, rng=rng)
    result = engine.run()

    assert_consensus(result, require_early_stopping=True)
    print(f"n={n} f={f}:")
    print(f"  rounds executed      : {result.rounds_executed} (bound: f+1 = {f + 1})")
    print(f"  decision             : {next(iter(result.decisions.values()))!r}")
    print(f"  deciders             : {sorted(result.decisions)}")
    print(f"  crashed coordinators : {result.crashed_pids}")
    print(f"  traffic              : {result.stats}")
    print()


def main() -> None:
    print("The Figure-1 algorithm (Cao-Raynal-Wang-Wu, ICPP'06)\n")
    run(n=8, f=0)  # one round: DATA + pipelined COMMIT from p1
    run(n=8, f=3)  # cascade: p1..p3 die as coordinators -> 4 rounds
    run(n=16, f=7)
    print("All runs satisfied uniform agreement, validity, termination,")
    print("and the early-stopping bound (no decision after round f+1).")


if __name__ == "__main__":
    main()

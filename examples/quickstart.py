#!/usr/bin/env python3
"""Quickstart: uniform consensus in f+1 rounds with synchronization messages.

Runs the paper's Figure-1 algorithm through the unified scenario API —
one declarative description per run, executed on the extended
synchronous engine: first failure-free (one round!), then under the
worst-case coordinator cascade (exactly f+1 rounds), printing what every
process decided and the message/bit traffic.  The same `Scenario` shape
drives every other algorithm in the repo (`floodset`, `mr99`, `ffd`, …).

    python examples/quickstart.py
"""

from repro import Scenario, execute


def run(n: int, f: int) -> None:
    scenario = Scenario(
        algorithm="crw",
        n=n,
        f=f,
        adversary="coordinator-killer",
        seed=42,
    )
    record = execute(scenario)

    assert record.spec_ok, record.violations
    assert record.last_decision_round <= record.f_actual + 1  # early stopping
    print(f"n={n} f={f}:")
    print(f"  rounds to last decision: {record.last_decision_round} (bound: f+1 = {f + 1})")
    print(f"  decision               : {next(iter(record.decisions.values()))!r}")
    print(f"  deciders               : {sorted(record.decisions)}")
    print(f"  crashed coordinators   : {record.crashed}")
    print(f"  traffic                : {record.messages_sent} msgs, {record.bits_sent} bits")
    print()


def main() -> None:
    print("The Figure-1 algorithm (Cao-Raynal-Wang-Wu, ICPP'06)\n")
    run(n=8, f=0)  # one round: DATA + pipelined COMMIT from p1
    run(n=8, f=3)  # cascade: p1..p3 die as coordinators -> 4 rounds
    run(n=16, f=7)
    print("All runs satisfied uniform agreement, validity, termination,")
    print("and the early-stopping bound (no decision after round f+1).")


if __name__ == "__main__":
    main()

"""Performance-gate kernels: measured, normalized, regression-checked.

This module is the engine behind both entry points:

* ``repro-consensus bench`` (the CLI subcommand), and
* ``python benchmarks/bench_perf_gate.py`` (the checkout-level script CI
  runs) — a thin wrapper importing everything from here.

Usage pattern:

* ``bench --write-baseline BENCH_PR6.json`` measures the kernels and
  writes a machine-readable baseline;
* ``bench --check-against BENCH_PR6.json`` compares fresh measurements
  to a previously written baseline and exits non-zero when any kernel
  regressed beyond ``--tolerance`` (default 1.25 = +25%).

Raw wall-clock is not comparable across machines, so every kernel is
*normalized* by a pure-Python calibration loop timed in the same process:
``score = kernel_seconds / calibration_seconds``.  Scores measure "how
many calibration units does this kernel cost", which tracks algorithmic
regressions while cancelling out most host-speed differences — that is
what the gate compares.  Raw seconds are recorded alongside for humans.

Kernels (via the scenario layer):

* ``one_round_n64``   — crw n=64, failure-free: one dense broadcast round;
* ``cascade_n128``    — crw n=128, f=16 coordinator-killer: 17 sparse
  rounds, the per-(process, round) overhead kernel;
* ``async_mr99_n32``  — MR99 n=32, f=8 ◇S run: the event-queue /
  delivery-scheduling kernel (PR 4's columnar table + pooled tuple
  entries on top of PR 3's tuple heap);
* ``async_mr99_const_n32`` — the same run under a constant delay model:
  every broadcast's deliveries land at one instant, so this is the
  same-instant-heavy kernel gating PR 5's fanout-block event queue (one
  heap entry and one dispatch frame per same-instant delivery run);
* ``ffd_n16``         — fast-failure-detector n=16, f=4: the timed-model
  kernel (fired-slot reconstruction + takeover grid);
* ``lease_crw_n32_40c`` — 40 same-configuration cells through one
  :class:`~repro.scenarios.execute.EngineLease`: the engine-reuse
  kernel, gating the reset/cache path sweeps lean on;
* ``sweep_serial_256c`` — a 256-cell serial grid with JSONL persistence:
  the sweep data-path throughput kernel (PR 5's columnar record
  pipeline — normalized records, batch persistence, key-indexed resume);
* ``service_kv_throughput`` — 200 closed-loop client commands through
  the consensus service's replicated-log slots, failure-free: the
  serving-loop kernel (admission, session table, leased slot engine);
* ``service_p99_latency`` — an open-loop run through a leader-kill
  storm: rotation + fencing + retry/dedup on the hot path, asserting
  the exactly-once report stays clean;
* ``vec_cascade_n128`` — the cascade scenario with ``batched="vector"``
  pinned: PR 9's whole-column stepping kernel (numpy state columns when
  numpy is importable, stdlib ``array`` otherwise — byte-identical
  records either way, see ``tests/sync/test_vector_parity.py``);
* ``sweep_*``         — ~1k-cell grid over the process-pool executor with
  JSONL persistence (``--quick`` shrinks it for CI);
* ``shard_sweep_*``   — the same grids over the sharded work-stealing
  fabric (:mod:`repro.fabric`): manifest planning, shard workers with
  shared-memory scalar return, per-shard columnar files.  Gated like
  the pool kernels (same-core-count hosts only);
* ``vec_sweep_*``     — the full grid through the *serial* executor:
  every cell steps through the auto-detected vector tables and the
  engine lease, so this is the single-core ceiling of the vectorized
  sweep data path (gated on any host, unlike the multiprocess sweeps).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import warnings
from typing import Callable

__all__ = ["measure", "compare", "main", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


def _calibrate(target_seconds: float = 0.05) -> float:
    """Seconds per calibration unit: a fixed pure-Python workload.

    The workload (integer arithmetic + list building) deliberately mirrors
    the interpreter operations the engine hot path is made of, so the
    kernel/calibration ratio is stable across CPython versions and hosts.
    """

    def unit() -> int:
        acc = 0
        xs = list(range(500))
        for i in xs:
            acc += i * i % 7
        return acc

    # Warm up, then time enough repetitions to fill ~target_seconds.
    unit()
    reps = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(reps):
            unit()
        dt = time.perf_counter() - t0
        if dt >= target_seconds:
            return dt / reps
        reps *= 4


def _best_of(fn: Callable[[], object], repeats: int, min_seconds: float) -> float:
    """Best wall-clock of ``repeats`` runs (at least ``min_seconds`` total)."""
    fn()  # warm-up: imports, registries, bit-size cache
    best = float("inf")
    spent = 0.0
    runs = 0
    while runs < repeats or spent < min_seconds:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        spent += dt
        runs += 1
        if runs >= repeats * 10:  # safety valve for very slow hosts
            break
    return best


def _kernel_one_round_n64() -> None:
    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="crw", n=64, t=63, f=0, adversary="none", seed=0))
    assert record.rounds_executed == 1


def _kernel_cascade_n128() -> None:
    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="crw", n=128, t=127, f=16,
                              adversary="coordinator-killer", seed=0))
    assert record.last_decision_round == 17


def _kernel_vec_cascade_n128() -> None:
    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="crw", n=128, t=127, f=16,
                              adversary="coordinator-killer", seed=0),
                     batched="vector")
    assert record.last_decision_round == 17


def _kernel_async_mr99_n32() -> None:
    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="mr99", n=32, f=8,
                              adversary="coordinator-killer", seed=0))
    assert record.spec_ok and record.f_actual == 8


def _kernel_async_mr99_const_n32() -> None:
    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="mr99", n=32, f=8,
                              adversary="coordinator-killer", seed=0,
                              timing={"delay": "constant", "value": 1.0}))
    assert record.spec_ok and record.f_actual == 8


def _kernel_ffd_n16() -> None:
    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="ffd", n=16, f=4,
                              adversary="coordinator-killer", seed=0))
    assert record.spec_ok and record.f_actual == 4


def _kernel_lease_crw_n32_40c() -> None:
    from repro.scenarios import EngineLease, Scenario, execute

    lease = EngineLease()
    base = Scenario(algorithm="crw", n=32, t=31, f=4,
                    adversary="coordinator-killer")
    for seed in range(40):
        record = execute(base.with_(seed=seed), lease=lease)
        assert record.spec_ok
    assert len(lease) == 1  # one configuration: 39 of 40 cells reset


def _kernel_service_kv_throughput() -> None:
    from repro.service import ClosedLoopWorkload, ConsensusService

    service = ConsensusService(5, machine="kv", t=3, seed=0)
    report = service.run(ClosedLoopWorkload(8, 25))
    assert report.ok and report.counters["acked"] == 200


def _kernel_service_p99_latency() -> None:
    from repro.fabric.faults import ServiceFaultPlan
    from repro.service import ConsensusService, OpenLoopWorkload
    from repro.util.rng import RandomSource

    plan = ServiceFaultPlan.from_spec("kill:leader,after=10,every=25,count=3", seed=0)
    service = ConsensusService(6, machine="kv", t=4, seed=0, faults=plan)
    workload = OpenLoopWorkload(8, 120, rate=0.2, rng=RandomSource(0))
    report = service.run(workload)
    assert report.ok and report.counters["acked"] == 120
    assert report.rotations == 3 and report.latency["p99"] >= report.latency["p50"]


def _sweep_cells(quick: bool):
    from repro.scenarios import expand_grid

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        if quick:  # ~100 cells: CI smoke
            return expand_grid(["crw", "early-stopping"], [8],
                               adversaries=("coordinator-killer",), seeds=7)
        return expand_grid(["crw", "early-stopping"], [16, 24, 32],
                           adversaries=("coordinator-killer", "staggered"), seeds=4)


def _kernel_sweep(quick: bool, executor: str) -> None:
    from repro.scenarios import SweepRunner

    cells = _sweep_cells(quick)
    with tempfile.TemporaryDirectory() as tmp:
        # The sharded executor's jsonl_path is a shard *directory*; the
        # others persist to a single file.  Both sides of the pool-vs-
        # sharded comparison pay for full JSONL persistence.
        path = os.path.join(tmp, "shards" if executor == "sharded" else "sweep.jsonl")
        runner = SweepRunner(cells, executor=executor, jsonl_path=path)
        records = runner.run()
        assert len(records) == len(cells) and runner.executed == len(cells)


def _kernel_sweep_serial_256c() -> None:
    """Sweep data-path throughput: 256 serial cells, JSONL persisted."""
    from repro.scenarios import SweepRunner, expand_grid

    cells = expand_grid(["crw", "early-stopping"], [16],
                        adversaries=("coordinator-killer",), seeds=8)
    assert len(cells) == 256
    with tempfile.TemporaryDirectory() as tmp:
        runner = SweepRunner(
            cells, executor="serial", jsonl_path=os.path.join(tmp, "sweep.jsonl")
        )
        records = runner.run()
        assert len(records) == 256 and runner.executed == 256


def measure(quick: bool) -> dict:
    """Measure all kernels; returns the baseline document.

    A full run also measures the ``--quick`` sweep grid so a committed
    full baseline contains the kernel CI's quick run needs to match.
    """
    calibration = _calibrate()
    quick_cells = len(_sweep_cells(True))
    kernels = {
        "one_round_n64": _best_of(_kernel_one_round_n64, repeats=10, min_seconds=0.3),
        "cascade_n128": _best_of(_kernel_cascade_n128, repeats=10, min_seconds=0.5),
        "vec_cascade_n128": _best_of(
            _kernel_vec_cascade_n128, repeats=10, min_seconds=0.5
        ),
        "async_mr99_n32": _best_of(_kernel_async_mr99_n32, repeats=5, min_seconds=0.5),
        "async_mr99_const_n32": _best_of(
            _kernel_async_mr99_const_n32, repeats=5, min_seconds=0.5
        ),
        "ffd_n16": _best_of(_kernel_ffd_n16, repeats=10, min_seconds=0.3),
        "lease_crw_n32_40c": _best_of(
            _kernel_lease_crw_n32_40c, repeats=5, min_seconds=0.3
        ),
        "sweep_serial_256c": _best_of(
            _kernel_sweep_serial_256c, repeats=3, min_seconds=0.5
        ),
        "service_kv_throughput": _best_of(
            _kernel_service_kv_throughput, repeats=5, min_seconds=0.3
        ),
        "service_p99_latency": _best_of(
            _kernel_service_p99_latency, repeats=5, min_seconds=0.3
        ),
        # The serial sweep is core-count independent, so it gates across
        # hosts; the pool sweep's score scales with parallelism and is
        # gated only on a matching cpu_count (see compare()).
        f"sweep_serial_{quick_cells}c": _best_of(
            lambda: _kernel_sweep(True, "serial"), repeats=3, min_seconds=0.5
        ),
        f"sweep_pool_{quick_cells}c": _best_of(
            lambda: _kernel_sweep(True, "process"), repeats=3, min_seconds=0.5
        ),
        f"shard_sweep_{quick_cells}c": _best_of(
            lambda: _kernel_sweep(True, "sharded"), repeats=3, min_seconds=0.5
        ),
    }
    if not quick:
        full_cells = len(_sweep_cells(False))
        kernels[f"sweep_pool_{full_cells}c"] = _best_of(
            lambda: _kernel_sweep(False, "process"), repeats=2, min_seconds=1.0
        )
        kernels[f"shard_sweep_{full_cells}c"] = _best_of(
            lambda: _kernel_sweep(False, "sharded"), repeats=2, min_seconds=1.0
        )
        kernels[f"vec_sweep_{full_cells}c"] = _best_of(
            lambda: _kernel_sweep(False, "serial"), repeats=2, min_seconds=1.0
        )
    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "calibration_unit_s": calibration,
        "kernels": {
            name: {"seconds": secs, "score": secs / calibration}
            for name, secs in kernels.items()
        },
    }


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regressions of ``current`` vs ``baseline`` (empty = gate passes).

    Kernels are matched by name on their normalized score; kernels present
    on only one side are reported informationally but do not fail the
    gate (grid sizes legitimately differ between --quick and full runs).
    ``sweep_pool_*`` and ``shard_sweep_*`` kernels additionally gate only
    when both sides ran on the same core count — a multi-process sweep's
    score scales with parallelism, which calibration cannot cancel out.
    """
    failures: list[str] = []
    base_kernels = baseline.get("kernels", {})
    same_host_shape = current.get("cpu_count") == baseline.get("cpu_count")
    for name, entry in current["kernels"].items():
        base = base_kernels.get(name)
        if base is None:
            print(f"  [new] {name}: score {entry['score']:.1f} (no baseline)")
            continue
        multiproc = name.startswith(("sweep_pool_", "shard_sweep_"))
        if multiproc and not same_host_shape:
            print(
                f"  [info] {name}: score {entry['score']:.1f} vs baseline "
                f"{base['score']:.1f} (not gated: cpu_count "
                f"{current.get('cpu_count')} != {baseline.get('cpu_count')})"
            )
            continue
        ratio = entry["score"] / base["score"] if base["score"] > 0 else float("inf")
        verdict = "ok" if ratio <= tolerance else "REGRESSION"
        print(
            f"  [{verdict}] {name}: score {entry['score']:.1f} "
            f"vs baseline {base['score']:.1f} (x{ratio:.2f}, limit x{tolerance:.2f})"
        )
        if ratio > tolerance:
            failures.append(
                f"{name}: normalized score {entry['score']:.1f} is "
                f"{ratio:.2f}x the baseline {base['score']:.1f} "
                f"(tolerance {tolerance:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-consensus bench",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--quick", action="store_true",
                        help="small sweep grid (CI smoke)")
    parser.add_argument("--write-baseline", "--out", dest="out", default=None,
                        metavar="PATH",
                        help="write measurements to this JSON baseline file")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="fail on regression vs this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="max allowed score ratio vs baseline (default 1.25)")
    args = parser.parse_args(argv)

    print("measuring perf-gate kernels" + (" (--quick grid)" if args.quick else ""))
    doc = measure(args.quick)
    print(f"calibration unit: {doc['calibration_unit_s'] * 1e6:.1f} us")
    for name, entry in doc["kernels"].items():
        print(f"  {name}: {entry['seconds'] * 1e3:.3f} ms  score {entry['score']:.1f}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        print(f"checking against {args.check_against}")
        failures = compare(doc, baseline, args.tolerance)
        if failures:
            print("PERF GATE FAILED:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("perf gate passed")
    return 0

"""Experiment harness: runners, experiment definitions, reports, CLI."""

from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.harness.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    RunConfig,
    SweepRow,
    run_once,
    run_sweep,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ALGORITHMS",
    "AlgorithmSpec",
    "RunConfig",
    "SweepRow",
    "run_once",
    "run_sweep",
]

"""Legacy single-run and sweep entry points (thin shims over ``repro.scenarios``).

.. deprecated::
    This module predates the unified scenario API.  :class:`RunConfig`,
    :func:`run_once`, :func:`run_sweep`, and :func:`run_grid` are kept so
    existing call sites stay green, but they now translate to
    :class:`~repro.scenarios.Scenario` and delegate to
    :func:`~repro.scenarios.execute` — new code should use those directly
    (they cover every shipped algorithm, not just the three listed in
    :data:`ALGORITHMS`, and return the normalized
    :class:`~repro.scenarios.RunRecord`).

The results are byte-identical to the pre-scenario implementation: the
labelled RNG streams (``adversary`` / ``engine``) that the legacy runner
spawned are exactly the ones :func:`~repro.scenarios.execute` spawns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.execute import execute
from repro.scenarios.registry import ALGORITHMS as SCENARIO_ALGORITHMS
from repro.scenarios.scenario import Scenario
from repro.sync.api import SyncProcess
from repro.sync.result import RunResult
from repro.util.stats import summarize

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "RunConfig",
    "run_once",
    "SweepRow",
    "run_sweep",
    "run_grid",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Legacy view of one registered synchronous algorithm."""

    name: str
    model: str  # "extended" | "classic"
    # factory(n, t, proposals) -> processes
    factory: Callable[[int, int, Sequence[Any]], list[SyncProcess]]
    # closed-form worst-case rounds, for the tables: fn(f, t) -> int
    round_bound: Callable[[int, int], int]


def _legacy_view(name: str) -> AlgorithmSpec:
    algo = SCENARIO_ALGORITHMS.get(name)
    return AlgorithmSpec(
        name=algo.name,
        model=algo.backend,
        factory=lambda n, t, props, _f=algo.factory: _f(n, t, props, {}),
        round_bound=algo.round_bound or (lambda f, t: 0),
    )


#: The pre-scenario registry surface: the three original algorithms, now
#: derived from :data:`repro.scenarios.ALGORITHMS` (the naming authority).
ALGORITHMS: dict[str, AlgorithmSpec] = {
    name: _legacy_view(name) for name in ("crw", "floodset", "early-stopping")
}


@dataclass(frozen=True)
class RunConfig:
    """One fully specified run (legacy shape; superseded by ``Scenario``)."""

    algorithm: str
    n: int
    t: int | None  # None -> the algorithm's default rule (see Scenario.t)
    f: int
    adversary: str
    seed: int
    value_bits: int | None = None  # None -> plain distinct ints

    def __post_init__(self) -> None:
        if self.algorithm not in SCENARIO_ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {SCENARIO_ALGORITHMS.names()}"
            )

    def to_scenario(self) -> Scenario:
        """The equivalent declarative :class:`~repro.scenarios.Scenario`."""
        if self.value_bits is not None:
            workload, params = "sized", {"bits": self.value_bits}
        else:
            workload, params = "distinct-ints", {}
        return Scenario(
            algorithm=self.algorithm,
            n=self.n,
            t=self.t,
            f=self.f,
            adversary=self.adversary,
            workload=workload,
            workload_params=params,
            seed=self.seed,
        )


def run_once(config: RunConfig, *, trace: bool = False) -> RunResult:
    """Execute one synchronous run (legacy contract: returns ``RunResult``).

    Configs naming an asynchronous or timed algorithm are rejected up
    front — this shim's declared return type is the synchronous
    :class:`~repro.sync.result.RunResult`, and handing callers a foreign
    result shape would fail far from the misconfiguration.  For those
    backends (and for new code generally) call
    :func:`repro.scenarios.execute`, which returns the backend-neutral
    :class:`~repro.scenarios.RunRecord`.
    """
    backend = SCENARIO_ALGORITHMS.get(config.algorithm).backend
    if backend not in ("extended", "classic"):
        raise ConfigurationError(
            f"run_once only drives synchronous algorithms; {config.algorithm!r} "
            f"runs on the {backend!r} backend — use repro.scenarios.execute"
        )
    return execute(config.to_scenario(), trace=trace).raw


@dataclass(slots=True)
class SweepRow:
    """Aggregate over the seeds of one (algorithm, n, t, f, adversary) cell."""

    algorithm: str
    n: int
    t: int
    f: int
    adversary: str
    seeds: int
    mean_last_round: float
    max_last_round: int
    bound: int
    mean_messages: float
    mean_bits: float
    spec_ok: bool


def run_sweep(
    algorithm: str,
    n: int,
    t: int,
    f: int,
    adversary: str,
    *,
    seeds: int = 10,
    value_bits: int | None = None,
) -> SweepRow:
    """Run one cell over ``seeds`` seeds and aggregate."""
    algo = SCENARIO_ALGORITHMS.get(algorithm)
    last_rounds: list[float] = []
    messages: list[float] = []
    bits: list[float] = []
    all_ok = True
    for seed in range(seeds):
        config = RunConfig(algorithm, n, t, f, adversary, seed, value_bits)
        record = execute(config.to_scenario())
        all_ok = all_ok and record.spec_ok
        last_rounds.append(float(record.last_decision_round))
        messages.append(float(record.messages_sent))
        bits.append(float(record.bits_sent))
    return SweepRow(
        algorithm=algorithm,
        n=n,
        t=t,
        f=f,
        adversary=adversary,
        seeds=seeds,
        mean_last_round=summarize(last_rounds).mean,
        max_last_round=int(max(last_rounds)),
        bound=algo.round_bound(f, t) if algo.round_bound is not None else 0,
        mean_messages=summarize(messages).mean,
        mean_bits=summarize(bits).mean,
        spec_ok=all_ok,
    )


def run_grid(
    algorithm: str,
    grid: "CrashGrid",
    *,
    value_bits: int | None = None,
) -> list[SweepRow]:
    """Run an algorithm over a whole :class:`~repro.workloads.crashes.CrashGrid`.

    The grid enumerates ``(n, t, f, adversary, seed)`` cells; results are
    aggregated per ``(n, t, f, adversary)`` via :func:`run_sweep`-style
    statistics.  Cells whose adversary is incompatible with the
    algorithm's model are mapped like :func:`run_once` does (``random`` →
    ``random-classic`` for classic-model algorithms).
    """
    from collections import defaultdict

    from repro.workloads.crashes import CrashGrid  # noqa: F401 (doc type)

    cells: dict[tuple[int, int, int, str], int] = defaultdict(int)
    for n, t, f, adversary, _seed in grid:
        cells[(n, t, f, adversary)] += 1
    rows = []
    for (n, t, f, adversary), seeds in sorted(cells.items()):
        rows.append(
            run_sweep(
                algorithm, n, t, f, adversary, seeds=seeds, value_bits=value_bits
            )
        )
    return rows

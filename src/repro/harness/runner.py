"""Single-run and sweep execution for synchronous consensus experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.baselines.early_stopping import EarlyStoppingConsensus
from repro.baselines.floodset import FloodSetConsensus
from repro.core.crw import CRWConsensus
from repro.errors import ConfigurationError
from repro.sync.api import SyncProcess
from repro.sync.engine import ClassicSynchronousEngine
from repro.sync.extended import ExtendedSynchronousEngine
from repro.sync.result import RunResult
from repro.sync.spec import check_consensus
from repro.util.rng import RandomSource
from repro.util.stats import summarize
from repro.workloads.crashes import make_adversary
from repro.workloads.proposals import distinct_ints, sized_proposals

__all__ = [
    "AlgorithmSpec",
    "ALGORITHMS",
    "RunConfig",
    "run_once",
    "SweepRow",
    "run_sweep",
    "run_grid",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """How to instantiate and host one consensus algorithm."""

    name: str
    model: str  # "extended" | "classic"
    # factory(n, t, proposals) -> processes
    factory: Callable[[int, int, Sequence[Any]], list[SyncProcess]]
    # closed-form worst-case rounds, for the tables: fn(f, t) -> int
    round_bound: Callable[[int, int], int]


ALGORITHMS: dict[str, AlgorithmSpec] = {
    "crw": AlgorithmSpec(
        name="crw",
        model="extended",
        factory=lambda n, t, props: [
            CRWConsensus(pid, n, props[pid - 1]) for pid in range(1, n + 1)
        ],
        round_bound=lambda f, t: f + 1,
    ),
    "floodset": AlgorithmSpec(
        name="floodset",
        model="classic",
        factory=lambda n, t, props: [
            FloodSetConsensus(pid, n, props[pid - 1], t) for pid in range(1, n + 1)
        ],
        round_bound=lambda f, t: t + 1,
    ),
    "early-stopping": AlgorithmSpec(
        name="early-stopping",
        model="classic",
        factory=lambda n, t, props: [
            EarlyStoppingConsensus(pid, n, props[pid - 1], t) for pid in range(1, n + 1)
        ],
        round_bound=lambda f, t: min(f + 2, t + 1),
    ),
}


@dataclass(frozen=True)
class RunConfig:
    """One fully specified run."""

    algorithm: str
    n: int
    t: int
    f: int
    adversary: str
    seed: int
    value_bits: int | None = None  # None -> plain distinct ints

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; available: {sorted(ALGORITHMS)}"
            )


def run_once(config: RunConfig, *, trace: bool = False) -> RunResult:
    """Execute one run."""
    spec = ALGORITHMS[config.algorithm]
    rng = RandomSource(config.seed)
    proposals = (
        sized_proposals(config.n, config.value_bits)
        if config.value_bits is not None
        else distinct_ints(config.n)
    )
    adversary_name = config.adversary
    if spec.model == "classic" and adversary_name == "random":
        adversary_name = "random-classic"  # classic model: no control step
    schedule = make_adversary(adversary_name, config.f).schedule(
        config.n, config.t, rng.spawn("adversary")
    )
    procs = spec.factory(config.n, config.t, proposals)
    engine_cls = (
        ExtendedSynchronousEngine if spec.model == "extended" else ClassicSynchronousEngine
    )
    engine = engine_cls(procs, schedule, t=config.t, rng=rng.spawn("engine"), trace=trace)
    return engine.run()


@dataclass(slots=True)
class SweepRow:
    """Aggregate over the seeds of one (algorithm, n, t, f, adversary) cell."""

    algorithm: str
    n: int
    t: int
    f: int
    adversary: str
    seeds: int
    mean_last_round: float
    max_last_round: int
    bound: int
    mean_messages: float
    mean_bits: float
    spec_ok: bool


def run_sweep(
    algorithm: str,
    n: int,
    t: int,
    f: int,
    adversary: str,
    *,
    seeds: int = 10,
    value_bits: int | None = None,
) -> SweepRow:
    """Run one cell over ``seeds`` seeds and aggregate."""
    spec = ALGORITHMS[algorithm]
    last_rounds: list[float] = []
    messages: list[float] = []
    bits: list[float] = []
    all_ok = True
    for seed in range(seeds):
        result = run_once(
            RunConfig(algorithm, n, t, f, adversary, seed, value_bits), trace=False
        )
        report = check_consensus(result)
        all_ok = all_ok and report.ok
        last_rounds.append(float(result.last_decision_round))
        messages.append(float(result.stats.messages_sent))
        bits.append(float(result.stats.bits_sent))
    return SweepRow(
        algorithm=algorithm,
        n=n,
        t=t,
        f=f,
        adversary=adversary,
        seeds=seeds,
        mean_last_round=summarize(last_rounds).mean,
        max_last_round=int(max(last_rounds)),
        bound=spec.round_bound(f, t),
        mean_messages=summarize(messages).mean,
        mean_bits=summarize(bits).mean,
        spec_ok=all_ok,
    )


def run_grid(
    algorithm: str,
    grid: "CrashGrid",
    *,
    value_bits: int | None = None,
) -> list[SweepRow]:
    """Run an algorithm over a whole :class:`~repro.workloads.crashes.CrashGrid`.

    The grid enumerates ``(n, t, f, adversary, seed)`` cells; results are
    aggregated per ``(n, t, f, adversary)`` via :func:`run_sweep`-style
    statistics.  Cells whose adversary is incompatible with the
    algorithm's model are mapped like :func:`run_once` does (``random`` →
    ``random-classic`` for classic-model algorithms).
    """
    from collections import defaultdict

    from repro.workloads.crashes import CrashGrid  # noqa: F401 (doc type)

    cells: dict[tuple[int, int, int, str], int] = defaultdict(int)
    for n, t, f, adversary, _seed in grid:
        cells[(n, t, f, adversary)] += 1
    rows = []
    for (n, t, f, adversary), seeds in sorted(cells.items()):
        rows.append(
            run_sweep(
                algorithm, n, t, f, adversary, seeds=seeds, value_bits=value_bits
            )
        )
    return rows

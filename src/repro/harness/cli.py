"""Command-line interface: ``repro-consensus`` (or ``python -m repro.harness.cli``).

Subcommands
-----------
``run``         one consensus run, printing the outcome and message stats
``experiment``  regenerate one of the paper's experiments (e1..e8)
``list``        algorithms, adversaries, experiments
``explore``     exhaustive adversary search on a small system
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.runner import ALGORITHMS
    from repro.workloads.crashes import ADVERSARIES

    print("algorithms: ", ", ".join(sorted(ALGORITHMS)))
    print("adversaries:", ", ".join(sorted(ADVERSARIES)))
    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.runner import RunConfig, run_once
    from repro.sync.spec import check_consensus

    config = RunConfig(
        algorithm=args.algorithm,
        n=args.n,
        t=args.t if args.t is not None else args.n - 1,
        f=args.f,
        adversary=args.adversary,
        seed=args.seed,
        value_bits=args.value_bits,
    )
    result = run_once(config, trace=args.trace)
    report = check_consensus(result, require_early_stopping=args.algorithm == "crw")
    print(result.summary())
    print(f"stats: {result.stats}")
    print(f"spec:  {'OK' if report.ok else '; '.join(report.violations)}")
    if args.trace:
        print(result.trace.format())
    return 0 if report.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.report import render_experiment_markdown

    name = args.name.lower()
    if name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {name!r}; try: {', '.join(sorted(ALL_EXPERIMENTS))}")
        return 2
    result = ALL_EXPERIMENTS[name]()
    if args.markdown:
        print(render_experiment_markdown(result))
    else:
        print(result.render())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core.crw import CRWConsensus
    from repro.core.variants import TruncatedCRW
    from repro.lowerbound.explorer import ExplorationConfig, Explorer

    n = args.n

    def factory():
        if args.truncate_at is not None:
            return {
                pid: TruncatedCRW(pid, n, pid, k=args.truncate_at)
                for pid in range(1, n + 1)
            }
        return {pid: CRWConsensus(pid, n, pid) for pid in range(1, n + 1)}

    config = ExplorationConfig(
        max_crashes=args.max_crashes,
        max_crashes_per_round=args.per_round,
        max_rounds=args.max_rounds,
        dedupe=args.dedupe,
    )
    report = Explorer(factory, config).explore()
    print(f"leaves: {report.leaves}  nodes: {report.nodes}")
    print(f"worst last decision round: {report.worst_last_decision_round}")
    print(f"early stopping (<= f+1 everywhere): {report.early_stopping_holds}")
    print(f"violating leaves: {len(report.violating_leaves)}")
    for leaf in report.violating_leaves[:3]:
        print(f"  - {leaf.violations} via {[str(ev) for ev in leaf.schedule]}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description="Cao-Raynal-Wang-Wu (ICPP'06) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list algorithms/adversaries/experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one consensus instance")
    p_run.add_argument("--algorithm", "-a", default="crw")
    p_run.add_argument("--n", type=int, default=8)
    p_run.add_argument("--t", type=int, default=None)
    p_run.add_argument("--f", type=int, default=0)
    p_run.add_argument("--adversary", default="coordinator-killer")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--value-bits", type=int, default=None)
    p_run.add_argument("--trace", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name", help="e1..e8")
    p_exp.add_argument("--markdown", action="store_true")
    p_exp.set_defaults(func=_cmd_experiment)

    p_x = sub.add_parser("explore", help="exhaustive adversary search")
    p_x.add_argument("--n", type=int, default=3)
    p_x.add_argument("--max-crashes", type=int, default=1)
    p_x.add_argument("--per-round", type=int, default=1)
    p_x.add_argument("--max-rounds", type=int, default=4)
    p_x.add_argument("--truncate-at", type=int, default=None)
    p_x.add_argument(
        "--dedupe",
        action="store_true",
        help="prune repeated configurations (bigger systems, same conclusions)",
    )
    p_x.set_defaults(func=_cmd_explore)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``repro-consensus`` (or ``python -m repro.harness.cli``).

Subcommands
-----------
``run``             one consensus run (legacy flags), printing outcome and stats
``scenario run``    one declarative scenario (any registered algorithm/backend)
``scenario sweep``  a scenario grid: serial, process-pool, or sharded
                    (work-stealing fabric), JSONL persistence/resume
``atlas summarize`` merge-on-read tradeoff tables over a sharded sweep
                    directory (streaming; ``--out`` writes the artifact)
``bench``           perf-gate kernels: measure / ``--check-against`` /
                    ``--write-baseline`` (wraps ``benchmarks/bench_perf_gate.py``)
``service run``     the consensus service: stream client commands through
                    leader-rotating log slots under optional ``--chaos``
                    kill storms; reports throughput, p50/p99 latency, and
                    exactly-once verification (exit 1 on degradation)
``experiment``      regenerate one of the paper's experiments (e1..e8)
``list``            algorithms, adversaries, workloads, machines, experiments
``explore``         exhaustive adversary search on a small system

``run --json`` and the ``scenario`` subcommands emit machine-readable
JSON (scenario echo + normalized RunRecord) with ``--json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro._version import __version__


def _parse_kv(pairs: list[str], flag: str) -> dict[str, Any]:
    """Parse repeated ``key=value`` flags; values decode as JSON when possible."""
    from repro.errors import ConfigurationError

    out: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"{flag} expects key=value, got {pair!r}")
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return out


def _note_trace_ignored(backend: str) -> None:
    print(
        f"note: --trace records round events; the {backend!r} backend has "
        f"none, flag ignored",
        file=sys.stderr,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.rsm.machine import MACHINES
    from repro.scenarios.registry import ADVERSARIES, ALGORITHMS, WORKLOADS

    print("algorithms: ", ", ".join(ALGORITHMS.names()))
    print("adversaries:", ", ".join(ADVERSARIES.names()))
    print("workloads:  ", ", ".join(WORKLOADS.names()))
    print("machines:   ", ", ".join(sorted(MACHINES)))
    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    if args.verbose:
        print()
        print("algorithm details (name / backend / description):")
        for name, algo in ALGORITHMS.items():
            print(f"  {name:24s} {algo.backend:9s} {algo.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.runner import RunConfig
    from repro.scenarios.execute import execute
    from repro.sync.spec import check_consensus

    config = RunConfig(
        algorithm=args.algorithm,
        n=args.n,
        t=args.t,  # None -> the algorithm's own rule, applied by execute()
        f=args.f,
        adversary=args.adversary,
        seed=args.seed,
        value_bits=args.value_bits,
    )
    record = execute(config.to_scenario(), trace=args.trace)
    result = record.raw
    # The record verdict already uses each algorithm's registered spec
    # (e.g. the vector checker for interactive consistency); crw keeps the
    # legacy extra requirement that no decision lands after round f+1.
    ok, violations = record.spec_ok, record.violations
    if args.algorithm == "crw":
        report = check_consensus(result, require_early_stopping=True)
        ok, violations = report.ok, report.violations
    if args.json:
        payload = record.to_dict()
        # Keep the emitted verdict consistent with the exit code (the crw
        # branch above is stricter than the record's default check).
        payload["spec_ok"] = ok
        payload["violations"] = list(violations)
        out: dict = {"scenario": record.scenario.to_dict(), "record": payload}
        if args.trace and record.backend in ("extended", "classic"):
            out["trace"] = result.trace.format()
        elif args.trace:
            _note_trace_ignored(record.backend)
        print(json.dumps(out, sort_keys=True))
        return 0 if ok else 1
    print(record.summary() if record.backend not in ("extended", "classic") else result.summary())
    if record.backend in ("extended", "classic"):
        print(f"stats: {result.stats}")
    print(f"spec:  {'OK' if ok else '; '.join(violations)}")
    if args.trace:
        if record.backend in ("extended", "classic"):
            print(result.trace.format())
        else:
            _note_trace_ignored(record.backend)
    return 0 if ok else 1


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.scenarios.execute import execute
    from repro.scenarios.scenario import Scenario

    if args.file is not None:
        from repro.errors import ConfigurationError

        # The file is the whole scenario; flags that would silently lose
        # to it (e.g. sweeping --seed over a base file) are rejected —
        # the None-sentinel parser defaults make any explicit flag
        # detectable, even one passed at its documented default value.
        scenario_flags = (
            "algorithm", "n", "t", "f", "adversary", "workload",
            "workload_param", "timing", "param", "seed", "max_rounds",
        )
        overridden = [
            f"--{name.replace('_', '-')}"
            for name in scenario_flags
            if getattr(args, name) not in (None, [])
        ]
        if overridden:
            raise ConfigurationError(
                f"--file defines the whole scenario; also passing "
                f"{', '.join(overridden)} would be silently ignored — "
                f"edit the file (or drop --file) instead"
            )
        if args.file == "-":
            text = sys.stdin.read()
        else:
            try:
                with open(args.file, encoding="utf-8") as fh:
                    text = fh.read()
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot read scenario file {args.file!r}: {exc}"
                ) from exc
        scenario = Scenario.from_json(text)
    else:
        # Only explicitly-passed flags become kwargs; the Scenario
        # dataclass supplies every other default (algorithm/n have no
        # dataclass default, so the CLI pins them here).
        flags = {
            "algorithm": args.algorithm, "n": args.n, "t": args.t,
            "f": args.f, "adversary": args.adversary,
            "workload": args.workload, "seed": args.seed,
            "max_rounds": args.max_rounds,
        }
        kwargs = {"algorithm": "crw", "n": 8}
        kwargs.update({k: v for k, v in flags.items() if v is not None})
        scenario = Scenario(
            workload_params=_parse_kv(args.workload_param, "--workload-param"),
            timing=_parse_kv(args.timing, "--timing"),
            params=_parse_kv(args.param, "--param"),
            **kwargs,
        )
    record = execute(scenario, trace=args.trace)
    traced = args.trace and record.backend in ("extended", "classic")
    if args.trace and not traced:
        _note_trace_ignored(record.backend)
    if args.json:
        out: dict = {"scenario": scenario.to_dict(), "record": record.to_dict()}
        if traced:
            out["trace"] = record.raw.trace.format()
        print(json.dumps(out, sort_keys=True))
    else:
        print(record.summary())
        print(f"decisions: {record.decisions}")
        print(f"spec:  {'OK' if record.spec_ok else '; '.join(record.violations)}")
        if traced:
            print(record.raw.trace.format())
    return 0 if record.spec_ok else 1


def _split_ints(text: str) -> list[int]:
    return [int(x) for x in text.split(",") if x]


def _cmd_scenario_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios.sweep import SweepRunner, expand_grid, summarize_records
    from repro.util.tables import Table

    cells = expand_grid(
        algorithms=[a for chunk in (args.algorithm or ["crw"]) for a in chunk.split(",")],
        n_values=_split_ints(args.n),
        f_values=_split_ints(args.f) if args.f is not None else None,
        adversaries=[a for chunk in (args.adversary or ["none"]) for a in chunk.split(",")],
        seeds=args.seeds,
    )
    faults = None
    if args.chaos is not None:
        from repro.fabric.faults import FaultPlan

        faults = FaultPlan.from_spec(args.chaos, seed=args.chaos_seed)
    runner = SweepRunner(
        cells,
        executor=args.executor,
        processes=args.jobs,
        chunk_size=args.chunk_size,
        jsonl_path=args.jsonl,
        writer=args.writer,
        shards=args.shards,
        faults=faults,
        liveness_timeout=args.liveness_timeout,
        max_respawns=args.max_respawns,
    )
    records = runner.run()
    # Quarantined cells come back as None (sharded executor); everything
    # downstream reports over the records that exist.
    covered = [r for r in records if r is not None]
    summaries = summarize_records(covered)
    # Throughput summary: executed cells over the wall clock of run().
    cells_per_s = runner.executed / runner.elapsed if runner.elapsed > 0 else 0.0
    if args.json:
        out = {
            "cells": len(cells),
            "executed": runner.executed,
            "resumed": runner.resumed,
            "elapsed_s": runner.elapsed,
            "cells_per_s": cells_per_s,
            "records": [r.to_dict() if r is not None else None for r in records],
        }
        if args.executor == "sharded":
            # Per-shard stats carry each shard's own cells_per_s (0.0 for
            # shards resumed wholesale off the manifest).
            out["shards"] = runner.shard_stats
            out["resumed_shards"] = runner.resumed_shards
            out["fresh_shards"] = runner.fresh_shards
            out["stolen_chunks"] = runner.stolen_chunks
            out["retries"] = runner.retries
            out["respawns"] = runner.respawns
            out["quarantined"] = runner.quarantined
        print(json.dumps(out, sort_keys=True))
    else:
        table = Table(
            ["algorithm", "n", "t", "f", "adversary", "seeds",
             "mean last round", "max last round", "mean msgs", "mean time", "spec"],
            title=f"sweep: {len(cells)} cells ({runner.executed} executed, "
            f"{runner.resumed} resumed)",
        )
        for row in summaries:
            table.add_row(
                row.algorithm, row.n, row.t if row.t is not None else "auto",
                row.f, row.adversary, row.seeds, row.mean_last_round,
                row.max_last_round, row.mean_messages,
                row.mean_sim_time if row.mean_sim_time is not None else "-",
                "ok" if row.spec_ok else "VIOLATED",
            )
        print(table.to_ascii())
        progress = (
            f"progress: {runner.executed} executed in {runner.elapsed:.2f}s "
            f"({cells_per_s:.0f} cells/s), {runner.resumed} resumed"
        )
        if args.executor == "sharded":
            progress += (
                f"; shards: {runner.fresh_shards} fresh, "
                f"{runner.resumed_shards} resumed, "
                f"{runner.stolen_chunks} stolen"
            )
            if runner.retries or runner.respawns or runner.quarantined:
                progress += (
                    f"; supervision: {runner.retries} retries, "
                    f"{runner.respawns} respawns, "
                    f"{runner.quarantined} quarantined"
                )
        print(progress)
    # Quarantined cells mean honest-but-partial coverage: non-zero exit so
    # scripts cannot mistake a degraded sweep for a complete one.
    return 0 if all(r.spec_ok for r in covered) and runner.quarantined == 0 else 1


def _cmd_atlas_summarize(args: argparse.Namespace) -> int:
    from repro.fabric.atlas import build_atlas
    from repro.util.tables import Table

    doc = build_atlas(args.dir)
    if args.out is not None:
        from repro.fabric.atlas import write_atlas

        write_atlas(args.dir, args.out)
    if args.json:
        print(json.dumps(doc, sort_keys=True))
        return 0
    quarantined = doc.get("quarantined", 0)
    coverage = (
        f", {doc['covered_cells']}/{doc['cells']} covered "
        f"({quarantined} quarantined)"
        if quarantined
        else ""
    )
    table = Table(
        ["algorithm", "n", "t", "f", "adversary", "seeds",
         "mean rounds", "mean msgs", "mean bits", "spec"],
        title=(
            f"atlas: {doc['cells']} cells in {doc['shards']} shards "
            f"(grid {doc['grid_hash']}){coverage}"
        ),
    )
    for row in doc["rows"]:
        table.add_row(
            row["algorithm"], row["n"],
            row["t"] if row["t"] is not None else "auto",
            row["f"], row["adversary"], row["seeds"],
            row["mean_last_round"], row["mean_messages"], row["mean_bits"],
            "ok" if row["spec_ok"] else "VIOLATED",
        )
    print(table.to_ascii())
    if quarantined:
        print(
            f"coverage: {quarantined} quarantined cell(s) excluded — see "
            f"quarantine.json in the shard directory"
        )
    if args.out is not None:
        print(f"wrote atlas artifact to {args.out}")
    return 0 if all(row["spec_ok"] for row in doc["rows"]) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.bench import main as bench_main

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.write_baseline is not None:
        argv += ["--write-baseline", args.write_baseline]
    if args.check_against is not None:
        argv += ["--check-against", args.check_against]
    argv += ["--tolerance", str(args.tolerance)]
    return bench_main(argv)


def _cmd_service_run(args: argparse.Namespace) -> int:
    from repro.fabric.faults import ServiceFaultPlan
    from repro.service import (
        ClosedLoopWorkload,
        ConsensusService,
        OpenLoopWorkload,
        RetryPolicy,
    )
    from repro.util.rng import RandomSource

    faults = None
    if args.chaos is not None:
        chaos_seed = args.chaos_seed if args.chaos_seed is not None else args.seed
        faults = ServiceFaultPlan.from_spec(args.chaos, seed=chaos_seed)
    policy = RetryPolicy(timeout=args.timeout, max_attempts=args.max_attempts)
    service = ConsensusService(
        args.n,
        machine=args.machine,
        t=args.t,
        seed=args.seed,
        faults=faults,
        policy=policy,
        round_time=args.round_time,
    )
    if args.loop == "closed":
        workload = ClosedLoopWorkload(
            args.clients,
            args.requests,
            machine=args.machine,
            think_time=args.think_time,
        )
    else:
        workload = OpenLoopWorkload(
            args.clients,
            args.requests,
            rate=args.rate,
            machine=args.machine,
            rng=RandomSource(args.seed).spawn("arrivals"),
        )
    report = service.run(workload)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
        return 0 if report.ok else 1
    c = report.counters
    lat = report.latency
    print(
        f"service: n={report.n} t={report.t} machine={report.machine} "
        f"loop={args.loop} -> {report.state.upper()}"
    )
    print(
        f"traffic: {c['submitted']} submitted, {c['acked']} acked, "
        f"{c['refused']} refused, {c['failed']} failed "
        f"({c['retried']} retries, {c['deduped']} deduped)"
    )
    print(
        f"log:     {c['slots']} slots ({c['noop_slots']} noop), "
        f"{c['kills']} kills, {report.rotations} rotations "
        f"(epoch {report.epoch}), {c['rejected_stale']} acks fenced"
    )
    print(
        f"perf:    {report.throughput:.3f} acks/unit over {report.elapsed:.1f} "
        f"units; latency p50={lat['p50']:.1f} p99={lat['p99']:.1f} "
        f"max={lat['max']:.1f}"
    )
    survivors = ", ".join(f"p{pid}:{d}" for pid, d in sorted(report.digests.items()))
    print(f"state:   {survivors}")
    if report.budget_exhausted:
        print(f"budget:  crash budget t={report.t} exhausted; drained honestly")
    print(f"spec:    {'OK' if not report.problems else '; '.join(report.problems)}")
    return 0 if report.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.experiments import ALL_EXPERIMENTS
    from repro.harness.report import render_experiment_markdown

    name = args.name.lower()
    if name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {name!r}; try: {', '.join(sorted(ALL_EXPERIMENTS))}")
        return 2
    result = ALL_EXPERIMENTS[name]()
    if args.markdown:
        print(render_experiment_markdown(result))
    else:
        print(result.render())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core.crw import CRWConsensus
    from repro.core.variants import TruncatedCRW
    from repro.lowerbound.explorer import ExplorationConfig, Explorer

    n = args.n

    def factory():
        if args.truncate_at is not None:
            return {
                pid: TruncatedCRW(pid, n, pid, k=args.truncate_at)
                for pid in range(1, n + 1)
            }
        return {pid: CRWConsensus(pid, n, pid) for pid in range(1, n + 1)}

    config = ExplorationConfig(
        max_crashes=args.max_crashes,
        max_crashes_per_round=args.per_round,
        max_rounds=args.max_rounds,
        dedupe=args.dedupe,
    )
    report = Explorer(factory, config).explore()
    print(f"leaves: {report.leaves}  nodes: {report.nodes}")
    print(f"worst last decision round: {report.worst_last_decision_round}")
    print(f"early stopping (<= f+1 everywhere): {report.early_stopping_holds}")
    print(f"violating leaves: {len(report.violating_leaves)}")
    for leaf in report.violating_leaves[:3]:
        print(f"  - {leaf.violations} via {[str(ev) for ev in leaf.schedule]}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-consensus",
        description="Cao-Raynal-Wang-Wu (ICPP'06) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list algorithms/adversaries/workloads/experiments")
    p_list.add_argument("--verbose", "-v", action="store_true")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one consensus instance (legacy flags)")
    p_run.add_argument("--algorithm", "-a", default="crw")
    p_run.add_argument("--n", type=int, default=8)
    p_run.add_argument("--t", type=int, default=None)
    p_run.add_argument("--f", type=int, default=0)
    p_run.add_argument("--adversary", default="coordinator-killer")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--value-bits", type=int, default=None)
    p_run.add_argument("--trace", action="store_true")
    p_run.add_argument("--json", action="store_true", help="machine-readable output")
    p_run.set_defaults(func=_cmd_run)

    p_s = sub.add_parser("scenario", help="declarative scenario API")
    s_sub = p_s.add_subparsers(dest="scenario_command", required=True)

    # Scenario-field flags default to None sentinels so that "explicitly
    # passed" is detectable: any of them alongside --file is an error
    # (they would silently lose to the file), even at its default value.
    p_sr = s_sub.add_parser("run", help="execute one scenario on its backend")
    p_sr.add_argument("--algorithm", "-a", default=None, help="default: crw")
    p_sr.add_argument("--n", type=int, default=None, help="default: 8")
    p_sr.add_argument("--t", type=int, default=None)
    p_sr.add_argument("--f", type=int, default=None, help="default: 0")
    p_sr.add_argument("--adversary", default=None, help="default: none")
    p_sr.add_argument("--workload", default=None, help="default: distinct-ints")
    p_sr.add_argument("--workload-param", action="append", default=[], metavar="K=V")
    p_sr.add_argument("--timing", action="append", default=[], metavar="K=V")
    p_sr.add_argument("--param", action="append", default=[], metavar="K=V",
                      help="algorithm-specific parameter")
    p_sr.add_argument("--seed", type=int, default=None, help="default: 0")
    p_sr.add_argument("--max-rounds", type=int, default=None)
    p_sr.add_argument("--file", default=None,
                      help="load the scenario from a JSON file ('-' for stdin)")
    p_sr.add_argument("--trace", action="store_true")
    p_sr.add_argument("--json", action="store_true", help="machine-readable output")
    p_sr.set_defaults(func=_cmd_scenario_run)

    p_sw = s_sub.add_parser("sweep", help="run a scenario grid with persistence/resume")
    p_sw.add_argument("--algorithm", "-a", action="append", default=None,
                      help="algorithm name(s), repeatable or comma-separated")
    p_sw.add_argument("--n", default="4,8", help="comma-separated n values")
    p_sw.add_argument("--f", default=None, help="comma-separated f values (default: 0..t)")
    p_sw.add_argument("--adversary", action="append", default=None,
                      help="adversary name(s), repeatable or comma-separated")
    p_sw.add_argument("--seeds", type=int, default=10)
    p_sw.add_argument("--executor", choices=("serial", "process", "sharded"),
                      default="serial")
    p_sw.add_argument("--jobs", type=int, default=None,
                      help="process-pool / sharded worker count")
    p_sw.add_argument("--chunk-size", type=int, default=None,
                      help="cells per worker task (default: auto-tuned)")
    p_sw.add_argument("--shards", type=int, default=None,
                      help="shard count for a fresh sharded sweep "
                      "(default: ~4 per worker; a resumed directory's "
                      "manifest wins)")
    p_sw.add_argument("--jsonl", default=None,
                      help="JSONL persistence/resume file (sharded executor: "
                      "a shard *directory* — manifest + per-shard files)")
    p_sw.add_argument("--writer", choices=("columnar", "legacy"), default="columnar",
                      help="JSONL layout: one batch line per chunk (columnar, "
                      "default) or one record line per cell (legacy); resume "
                      "reads both")
    p_sw.add_argument("--chaos", default=None, metavar="SPEC",
                      help="sharded executor: inject deterministic faults, "
                      "e.g. 'kill:worker=0,after=1;hang:shard=2,worker=1;"
                      "raise:cell=7' (see repro.fabric.faults)")
    p_sw.add_argument("--chaos-seed", type=int, default=None,
                      help="seed resolving 'rand' targets in --chaos")
    p_sw.add_argument("--liveness-timeout", type=float, default=None,
                      help="sharded executor: seconds without worker "
                      "results/heartbeats before a busy worker is declared "
                      "hung and replaced (default: disabled)")
    p_sw.add_argument("--max-respawns", type=int, default=None,
                      help="sharded executor: replacement-worker budget "
                      "(default: the worker count); exhausting it degrades "
                      "to in-process draining")
    p_sw.add_argument("--json", action="store_true", help="machine-readable output")
    p_sw.set_defaults(func=_cmd_scenario_sweep)

    p_b = sub.add_parser(
        "bench",
        help="measure the perf-gate kernels; optionally write or check a baseline",
    )
    p_b.add_argument("--quick", action="store_true", help="small sweep grid (CI smoke)")
    p_b.add_argument("--write-baseline", default=None, metavar="PATH",
                     help="write measurements to this JSON baseline file")
    p_b.add_argument("--check-against", default=None, metavar="BASELINE",
                     help="exit non-zero on regression vs this baseline JSON")
    p_b.add_argument("--tolerance", type=float, default=1.25,
                     help="max allowed score ratio vs baseline (default 1.25)")
    p_b.set_defaults(func=_cmd_bench)

    p_atlas = sub.add_parser(
        "atlas", help="merge-on-read summaries over a sharded sweep directory"
    )
    a_sub = p_atlas.add_subparsers(dest="atlas_command", required=True)
    p_as = a_sub.add_parser(
        "summarize",
        help="stream a shard directory's files into the tradeoff tables",
    )
    p_as.add_argument("--dir", required=True,
                      help="shard directory (manifest.json + shard-*.jsonl)")
    p_as.add_argument("--out", default=None, metavar="PATH",
                      help="also write the regeneratable atlas artifact JSON")
    p_as.add_argument("--json", action="store_true", help="machine-readable output")
    p_as.set_defaults(func=_cmd_atlas_summarize)

    p_svc = sub.add_parser(
        "service", help="consensus as a service: chaos-drilled traffic loops"
    )
    svc_sub = p_svc.add_subparsers(dest="service_command", required=True)
    p_svr = svc_sub.add_parser(
        "run", help="serve a client workload through the replicated log"
    )
    p_svr.add_argument("--n", type=int, default=5, help="replica count")
    p_svr.add_argument("--t", type=int, default=None,
                       help="crash budget (default: n-1)")
    p_svr.add_argument("--machine", default="kv",
                       help="replicated state machine (see 'list')")
    p_svr.add_argument("--clients", type=int, default=4)
    p_svr.add_argument("--requests", type=int, default=8,
                       help="closed loop: requests per client; open loop: total")
    p_svr.add_argument("--loop", choices=("closed", "open"), default="closed",
                       help="closed: one outstanding per client; open: "
                       "seeded Poisson arrivals at --rate")
    p_svr.add_argument("--rate", type=float, default=0.5,
                       help="open loop: arrivals per virtual-time unit")
    p_svr.add_argument("--think-time", type=float, default=0.0,
                       help="closed loop: delay between ack and next request")
    p_svr.add_argument("--timeout", type=float, default=12.0,
                       help="client ack deadline per attempt (virtual time)")
    p_svr.add_argument("--max-attempts", type=int, default=8,
                       help="client attempts before an honest failure")
    p_svr.add_argument("--round-time", type=float, default=1.0,
                       help="virtual-time cost of one consensus round")
    p_svr.add_argument("--seed", type=int, default=0)
    p_svr.add_argument("--chaos", default=None, metavar="SPEC",
                       help="service faults, e.g. 'kill:leader,after=3,"
                       "every=4,count=2,point=rand' or 'raise:slot=5,until=2' "
                       "(see repro.fabric.faults)")
    p_svr.add_argument("--chaos-seed", type=int, default=None,
                       help="seed resolving 'rand' targets (default: --seed)")
    p_svr.add_argument("--json", action="store_true", help="machine-readable output")
    p_svr.set_defaults(func=_cmd_service_run)

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name", help="e1..e8")
    p_exp.add_argument("--markdown", action="store_true")
    p_exp.set_defaults(func=_cmd_experiment)

    p_x = sub.add_parser("explore", help="exhaustive adversary search")
    p_x.add_argument("--n", type=int, default=3)
    p_x.add_argument("--max-crashes", type=int, default=1)
    p_x.add_argument("--per-round", type=int, default=1)
    p_x.add_argument("--max-rounds", type=int, default=4)
    p_x.add_argument("--truncate-at", type=int, default=None)
    p_x.add_argument(
        "--dedupe",
        action="store_true",
        help="prune repeated configurations (bigger systems, same conclusions)",
    )
    p_x.set_defaults(func=_cmd_explore)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ConfigurationError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        # User-input errors carry curated messages; a traceback buries them.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

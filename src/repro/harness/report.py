"""Markdown report generation for the E1–E8 experiments.

``render_all_markdown()`` produces the full paper-vs-measured record;
``repro-consensus experiment eN --markdown`` prints one section.  The
experiment index lives in ``DESIGN.md`` §4.
"""

from __future__ import annotations

from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult

__all__ = ["render_experiment_markdown", "render_all_markdown"]


def render_experiment_markdown(result: ExperimentResult) -> str:
    """One experiment as a Markdown section."""
    parts = [f"## {result.exp_id} — {result.title}", "", f"*Claim:* {result.claim}", ""]
    for table in result.tables:
        parts.append(table.to_markdown())
        parts.append("")
    if result.findings:
        parts.append("**Checks**")
        parts.append("")
        for key, value in result.findings.items():
            mark = "✅" if value is True else ("❌" if value is False else "·")
            parts.append(f"- {mark} `{key}` = {value}")
        parts.append("")
    return "\n".join(parts)


def render_all_markdown(selected: list[str] | None = None) -> str:
    """Run experiments and render their Markdown sections."""
    names = selected if selected is not None else list(ALL_EXPERIMENTS)
    sections = []
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        sections.append(render_experiment_markdown(result))
    return "\n".join(sections)

"""E1–E8: one regenerable experiment per claim of the paper.

Each ``eN_*`` function returns an :class:`ExperimentResult` holding the
table(s) the claim predicts plus machine-checkable findings.  The
``benchmarks/bench_eN_*.py`` files time and print them, and
``repro-consensus experiment eN --markdown`` renders any of them as a
Markdown section.

Runs are driven through the unified scenario API
(:mod:`repro.scenarios`), either directly (E5, E6) or via the legacy
:mod:`repro.harness.runner` shims (E1, E2, E7, E8).  See ``DESIGN.md``
§4 for the experiment index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.crw import CRWConsensus
from repro.core.variants import IncreasingCommitCRW, TruncatedCRW
from repro.harness.runner import RunConfig, run_once, run_sweep
from repro.scenarios.execute import execute
from repro.scenarios.scenario import Scenario
from repro.lowerbound.certificates import (
    certify_f_plus_one,
    certify_no_run_exceeds,
    refute_round_bound,
)
from repro.lowerbound.explorer import ExplorationConfig
from repro.lowerbound.valency import find_bivalent_initial
from repro.rsm.log import ReplicatedLog
from repro.rsm.machine import Command, KVStore
from repro.simulation.extended_on_classic import run_extended_on_classic
from repro.sync.crash import CrashSchedule
from repro.timing.model import RoundCost, crossover_d, timing_series
from repro.util.rng import RandomSource
from repro.util.tables import Table
from repro.workloads.crashes import make_adversary

__all__ = [
    "ExperimentResult",
    "e1_rounds",
    "e2_bits",
    "e3_timing",
    "e4_lowerbound",
    "e5_mr99",
    "e6_ffd",
    "e7_simulation",
    "e8_scaling",
    "ALL_EXPERIMENTS",
]


@dataclass(slots=True)
class ExperimentResult:
    """One experiment's regenerated evidence."""

    exp_id: str
    title: str
    claim: str
    tables: list[Table] = field(default_factory=list)
    findings: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Full plain-text report (printed by the benches)."""
        parts = [f"== {self.exp_id}: {self.title} ==", f"claim: {self.claim}", ""]
        for table in self.tables:
            parts.append(table.to_ascii())
            parts.append("")
        for key, value in self.findings.items():
            parts.append(f"{key}: {value}")
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# E1 — Theorem 1: rounds-to-decision.
# ---------------------------------------------------------------------------


def e1_rounds(
    n_values: tuple[int, ...] = (4, 8, 16),
    seeds: int = 10,
    adversary: str = "coordinator-killer",
) -> ExperimentResult:
    """CRW decides in <= f+1 rounds (1 round if p1 survives); classic
    baselines pay t+1 / min(f+2, t+1)."""
    table = Table(
        ["algorithm", "n", "t", "f", "mean last round", "max last round", "bound", "spec"],
        title=f"E1: decision rounds under the {adversary} adversary",
    )
    all_ok = True
    tight = True
    for n in n_values:
        t = n - 1
        for f in sorted({0, 1, t // 2, t}):
            for algorithm in ("crw", "early-stopping", "floodset"):
                row = run_sweep(algorithm, n, t, f, adversary, seeds=seeds)
                all_ok = all_ok and row.spec_ok
                if algorithm == "crw":
                    tight = tight and row.max_last_round == row.bound
                table.add_row(
                    algorithm,
                    n,
                    t,
                    f,
                    row.mean_last_round,
                    row.max_last_round,
                    row.bound,
                    "ok" if row.spec_ok else "VIOLATED",
                )
    # The benign pattern: f crashes that never touch a coordinator.
    benign = Table(
        ["n", "f", "crw max last round"],
        title="E1b: crashes that miss the coordinator cost nothing (staggered)",
    )
    one_round = True
    for n in n_values:
        for f in (1, 2, 3):
            row = run_sweep("crw", n, n - 1, f, "staggered", seeds=seeds)
            one_round = one_round and row.max_last_round == 1
            benign.add_row(n, f, row.max_last_round)
    # Decision skew: Figure 1 is early-deciding, not simultaneous — the
    # commit-split adversary spreads decisions over up to f+1 rounds while
    # the silent cascade keeps them simultaneous (cf. the paper's [8]).
    from repro.analysis.simultaneity import skew_profile
    from repro.core.crw import CRWConsensus as _CRW
    from repro.sync.adversary import CommitSplitter as _CS
    from repro.sync.adversary import CoordinatorKiller as _CK

    skew = Table(
        ["adversary", "n", "mean skew", "max skew", "skew <= f everywhere"],
        title="E1c: decision skew (simultaneity; rounds between first and last decision)",
    )
    skew_bounded = True
    for name, adversary in (
        ("coordinator-killer", _CK(2)),
        ("commit-splitter", _CS(2, prefix_len=1)),
    ):
        profile = skew_profile(
            lambda: [_CRW(pid, 8, 100 + pid) for pid in range(1, 9)],
            adversary,
            n=8,
            t=7,
            seeds=seeds,
            adversary_name=name,
        )
        skew_bounded = skew_bounded and profile.skew_bounded_by_f
        skew.add_row(name, 8, profile.skew.mean, profile.max_skew, profile.skew_bounded_by_f)

    return ExperimentResult(
        exp_id="E1",
        title="rounds to decision (Theorem 1)",
        claim="CRW: <= f+1 rounds, exactly f+1 under the coordinator cascade, "
        "1 round when p1 survives; classic: t+1 (FloodSet) and min(f+2, t+1) "
        "(early stopping)",
        tables=[table, benign, skew],
        findings={
            "all_runs_satisfy_uniform_consensus": all_ok,
            "crw_bound_tight_under_cascade": tight,
            "crw_single_round_under_benign_crashes": one_round,
            "decision_skew_bounded_by_f": skew_bounded,
        },
    )


# ---------------------------------------------------------------------------
# E2 — Theorem 2: bit complexity.
# ---------------------------------------------------------------------------


def _e2_best_bounds(n: int, bits: int) -> tuple[int, int]:
    messages = 2 * (n - 1)
    total_bits = (n - 1) * (bits + 1)
    return messages, total_bits


def _e2_worst_bounds(n: int, t: int, bits: int) -> tuple[int, int]:
    pair_sum = sum(n - r for r in range(1, t + 2))
    return 2 * pair_sum, pair_sum * (bits + 1)


def e2_bits(
    n_values: tuple[int, ...] = (4, 8, 16, 32),
    bit_widths: tuple[int, ...] = (8, 64, 1024),
) -> ExperimentResult:
    """Measured traffic vs the closed forms: best (n-1)(|v|+1) bits; worst
    bounded by sum_{r=1..t+1} (n-r)(|v|+1) bits / 2*sum messages."""
    table = Table(
        ["case", "n", "t", "|v|", "msgs", "msg bound", "bits", "bit bound", "bits/bound"],
        title="E2: bit complexity (Theorem 2)",
    )
    best_exact = True
    worst_within = True
    for n in n_values:
        for bits in bit_widths:
            # Best case: failure-free, single round.
            result = run_once(
                RunConfig("crw", n, n - 1, 0, "none", seed=0, value_bits=bits)
            )
            m_bound, b_bound = _e2_best_bounds(n, bits)
            best_exact = best_exact and (
                result.stats.messages_sent == m_bound
                and result.stats.bits_sent == b_bound
            )
            table.add_row(
                "best", n, n - 1, bits,
                result.stats.messages_sent, m_bound,
                result.stats.bits_sent, b_bound,
                result.stats.bits_sent / b_bound,
            )
            # Worst case: max-traffic cascade with f = t.
            t = n - 1
            result = run_once(
                RunConfig("crw", n, t, t, "max-traffic", seed=0, value_bits=bits)
            )
            m_bound, b_bound = _e2_worst_bounds(n, t, bits)
            worst_within = worst_within and (
                result.stats.messages_sent <= m_bound
                and result.stats.bits_sent <= b_bound
            )
            table.add_row(
                "worst", n, t, bits,
                result.stats.messages_sent, m_bound,
                result.stats.bits_sent, b_bound,
                result.stats.bits_sent / b_bound,
            )
    return ExperimentResult(
        exp_id="E2",
        title="bit complexity (Theorem 2)",
        claim="best case exactly (n-1)(|v|+1) bits / 2(n-1) messages; worst case "
        "within sum_{r<=t+1}(n-r)(|v|+1) bits / 2*sum messages",
        tables=[table],
        findings={
            "best_case_matches_formula_exactly": best_exact,
            "worst_case_within_paper_bound": worst_within,
        },
    )


# ---------------------------------------------------------------------------
# E3 — Section 2.2: timing crossover.
# ---------------------------------------------------------------------------


def e3_timing(D: float = 100.0) -> ExperimentResult:
    """(f+1)(D+d) vs (f+2)D with the crossover at d = D/(f+1)."""
    table = Table(
        ["f", "d/D", "crw time", "early-stopping time", "extended wins"],
        title="E3: completion-time comparison (Section 2.2)",
    )
    for point in timing_series(D):
        table.add_row(
            point.f,
            point.d_over_D,
            point.crw,
            point.early_stopping,
            "yes" if point.extended_wins else "no",
        )
    cross = Table(
        ["f", "crossover d/D (model)", "formula D/(f+1) /D"],
        title="E3b: crossover position",
    )
    matches = True
    for f in (0, 1, 2, 4):
        # Locate the empirical flip with a fine sweep.
        flip = None
        for k in range(1, 2001):
            d = D * k / 1000.0
            if not RoundCost(D=D, d=d).extended_wins(f):
                flip = d / D
                break
        formula = crossover_d(D, f) / D
        matches = matches and flip is not None and abs(flip - formula) <= 1e-3
        cross.add_row(f, flip, formula)
    return ExperimentResult(
        exp_id="E3",
        title="timing crossover (Section 2.2)",
        claim="extended model wins iff d < D/(f+1); always true for realistic "
        "LAN values (d << D, f small)",
        tables=[table, cross],
        findings={"empirical_crossover_matches_formula": matches},
    )


# ---------------------------------------------------------------------------
# E4 — Theorems 3-5: lower bound, tightness, ablation.
# ---------------------------------------------------------------------------


def e4_lowerbound() -> ExperimentResult:
    """Exhaustive small-system verification of the bounds."""
    table = Table(
        ["statement", "n", "t/f", "leaves checked", "holds"],
        title="E4: lower-bound certificates (Theorems 3-5)",
    )
    findings: dict[str, Any] = {}

    # Tightness: the cascade forces exactly f+1.
    for n, f in ((4, 2), (6, 3), (8, 5)):
        cert = certify_f_plus_one(
            lambda n=n: [CRWConsensus(pid, n, 100 + pid) for pid in range(1, n + 1)], f
        )
        table.add_row("cascade forces f+1 (tight)", n, f, cert.leaves_checked, cert.holds)
        findings[f"tight_n{n}_f{f}"] = cert.holds

    # Upper bound, exhaustively: no adversary exceeds f+1.
    for n, t in ((3, 2), (4, 2), (4, 3)):
        cert = certify_no_run_exceeds(
            lambda n=n: {pid: CRWConsensus(pid, n, pid) for pid in range(1, n + 1)},
            max_crashes=t,
            max_crashes_per_round=t,
        )
        table.add_row("no run exceeds f+1 (exhaustive)", n, t, cert.leaves_checked, cert.holds)
        findings[f"upper_n{n}_t{t}"] = cert.holds

    # Impossibility: any t-round algorithm has a violating run (n >= t+2).
    for n, t in ((4, 1), (4, 2), (5, 2)):
        cert = refute_round_bound(
            lambda n=n, t=t: {
                pid: TruncatedCRW(pid, n, pid, k=t) for pid in range(1, n + 1)
            },
            max_crashes=t,
            max_rounds=t + 1,
        )
        table.add_row("t-round algorithm refuted", n, t, cert.leaves_checked, cert.holds)
        findings[f"refuted_n{n}_t{t}"] = cert.holds

    # Bivalency: a bivalent initial configuration exists.
    cfg = ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=3)
    bive = find_bivalent_initial(
        lambda props: {
            pid: CRWConsensus(pid, len(props), props[pid - 1])
            for pid in range(1, len(props) + 1)
        },
        3,
        cfg,
    )
    table.add_row("bivalent initial configuration exists", 3, 1, bive.leaves if bive else 0, bive is not None)
    findings["bivalent_initial_found"] = bive is not None

    # Bivalency chain: maintainable through round t-1 for the correct
    # algorithm (the reach of the Aguilera-Toueg induction) and past the
    # deadline for a truncated one (the disagreement witness).
    from repro.lowerbound.chain import extend_bivalent_chain

    chain_cfg = ExplorationConfig(max_crashes=2, max_crashes_per_round=1, max_rounds=5)
    crw_chain = extend_bivalent_chain(
        lambda: {pid: CRWConsensus(pid, 4, [0, 1, 1, 1][pid - 1]) for pid in range(1, 5)},
        chain_cfg,
    )
    table.add_row(
        "bivalence chain reaches round t-1 (CRW)", 4, 2, crw_chain.length, crw_chain.length == 1
    )
    findings["crw_chain_length_t_minus_1"] = crw_chain.length == 1
    trunc_chain = extend_bivalent_chain(
        lambda: {
            pid: TruncatedCRW(pid, 4, [0, 1, 1, 1][pid - 1], k=1) for pid in range(1, 5)
        },
        ExplorationConfig(max_crashes=1, max_crashes_per_round=1, max_rounds=3),
    )
    table.add_row(
        "bivalence survives a k=1 deadline (TruncatedCRW)", 4, 1, trunc_chain.length, trunc_chain.length >= 1
    )
    findings["truncated_chain_past_deadline"] = trunc_chain.length >= 1

    # Ablation: increasing commit order loses the f+1 property (not safety).
    cert = certify_no_run_exceeds(
        lambda: {pid: IncreasingCommitCRW(pid, 4, pid) for pid in range(1, 5)},
        max_crashes=2,
        max_crashes_per_round=2,
        max_rounds=5,
    )
    table.add_row("ablation: increasing commit order keeps f+1", 4, 2, cert.leaves_checked, cert.holds)
    findings["increasing_commit_breaks_f_plus_one"] = not cert.holds

    return ExperimentResult(
        exp_id="E4",
        title="lower bound and optimality (Theorems 3-5)",
        claim="f+1 is forced (tight), never exceeded (exhaustive), t rounds "
        "are impossible (refutation witness), and the decreasing commit "
        "order is load-bearing (ablation)",
        tables=[table],
        findings=findings,
    )


# ---------------------------------------------------------------------------
# E5 — Section 4: the MR99 bridge.
# ---------------------------------------------------------------------------


def e5_mr99(
    n_values: tuple[int, ...] = (5, 9),
    seeds: int = 10,
) -> ExperimentResult:
    """MR99 under the async simulator: rounds used vs crash count, with the
    same two-step round structure the paper maps COMMIT onto."""
    table = Table(
        ["algorithm", "n", "t", "f", "delay", "mean rounds", "max rounds", "mean msgs", "spec"],
        title="E5: asynchronous diamond-S algorithms across crash counts and delay models",
    )
    all_ok = True
    delays = {
        "uniform": {"delay": "uniform", "lo": 0.5, "hi": 1.5},
        "lognormal": {"delay": "lognormal", "mu": 0.0, "sigma": 0.75},
    }
    for algo_name in ("mr99", "chandra-toueg"):
        for n in n_values:
            t = (n - 1) // 2
            for f in range(0, t + 1):
                for delay_name, delay_timing in delays.items():
                    rounds, msgs = [], []
                    for seed in range(seeds):
                        record = execute(Scenario(
                            algorithm=algo_name,
                            n=n,
                            t=t,
                            f=f,
                            adversary="coordinator-killer",  # first f coordinators die at t=0
                            timing={**delay_timing, "detection_latency": 1.0},
                            seed=seed,
                        ))
                        all_ok = all_ok and record.spec_ok
                        rounds.append(record.last_decision_round)
                        msgs.append(record.messages_sent)
                    table.add_row(
                        algo_name,
                        n,
                        t,
                        f,
                        delay_name,
                        sum(rounds) / len(rounds),
                        max(rounds),
                        sum(msgs) / len(msgs),
                        "ok" if all_ok else "VIOLATED",
                    )
    structure = Table(
        ["model", "per-round steps", "who sends step 2", "what step 2 means"],
        title="E5b: the structural bridge (paper Section 4)",
    )
    structure.add_row("extended sync (CRW)", "data + commit", "coordinator only", "value locked")
    structure.add_row("async diamond-S (MR99)", "EST + AUX", "every process", "value locked")
    structure.add_row("async diamond-S (CT [5])", "EST/TRY + ACK", "every process", "value locked")
    return ExperimentResult(
        exp_id="E5",
        title="bridge to asynchronous consensus (Section 4)",
        claim="MR99 realizes the same two-step/locking pattern; rounds used "
        "grow with dead coordinators exactly as CRW's do",
        tables=[table, structure],
        findings={"all_async_runs_uniform": all_ok},
    )


# ---------------------------------------------------------------------------
# E6 — related work [1]: fast failure detector comparison.
# ---------------------------------------------------------------------------


def e6_ffd(
    D: float = 100.0,
    d_fd: float = 1.0,
    d_ext: float = 1.0,
    f_values: tuple[int, ...] = (0, 1, 2, 3, 4),
    n: int = 6,
) -> ExperimentResult:
    """Measured FFD decision time ~ D + f*d_fd, vs CRW's (f+1)(D+d)."""
    cost = RoundCost(D=D, d=d_ext)
    table = Table(
        ["f", "ffd measured", "ffd model D+(f+1)d", "crw model (f+1)(D+d)", "ffd wins"],
        title="E6: fast-FD consensus vs extended-model consensus (time)",
    )
    ok = True
    within = True
    for f in f_values:
        record = execute(Scenario(
            algorithm="ffd",
            n=n,
            f=f,
            adversary="coordinator-killer",  # first f grid slots die at t=0
            timing={"D": D, "d": d_fd},
            seed=f,
        ))
        ok = ok and record.spec_ok
        measured = record.raw.max_decision_time
        model = cost.ffd_time(f, d_fd)
        crw = cost.crw_time(f)
        within = within and measured <= model + 1e-9
        table.add_row(f, measured, model, crw, "yes" if model < crw else "no")
    return ExperimentResult(
        exp_id="E6",
        title="fast failure detector comparison (related work [1])",
        claim="fast-FD consensus decides in ~ D + f*d; both approaches beat "
        "classic (f+2)D, with fast-FD ahead once f >= 1 (it pays D once)",
        tables=[table],
        findings={
            "ffd_runs_uniform": ok,
            "measured_within_model_bound": within,
        },
    )


# ---------------------------------------------------------------------------
# E7 — Section 2.2: computability equivalence cost.
# ---------------------------------------------------------------------------


def e7_simulation(
    n_values: tuple[int, ...] = (4, 8),
    f_values: tuple[int, ...] = (0, 1, 2),
) -> ExperimentResult:
    """Extended-on-classic adapter preserves consensus; blow-up factor = n."""
    table = Table(
        ["n", "f", "native rounds", "simulated classic rounds", "blow-up"],
        title="E7: simulating the extended model on the classic model",
    )
    ok = True
    for n in n_values:
        for f in f_values:
            rng = RandomSource(7)
            schedule = make_adversary("coordinator-killer", f).schedule(n, n - 1, rng)
            native = run_once(RunConfig("crw", n, n - 1, f, "coordinator-killer", 7))
            simulated = run_extended_on_classic(
                lambda n=n: [CRWConsensus(pid, n, 100 + pid) for pid in range(1, n + 1)],
                schedule,
                t=n - 1,
            )
            from repro.sync.spec import check_consensus

            ok = ok and check_consensus(simulated).ok
            table.add_row(
                n,
                f,
                native.last_decision_round,
                simulated.last_decision_round,
                simulated.last_decision_round / max(1, native.last_decision_round),
            )
    return ExperimentResult(
        exp_id="E7",
        title="computability equivalence (Section 2.2)",
        claim="the extended model simulates on the classic model at a cost of "
        "one classic round per control position (factor n here)",
        tables=[table],
        findings={"simulated_runs_uniform": ok},
    )


# ---------------------------------------------------------------------------
# E8 — engine scaling and RSM throughput (repro quality check).
# ---------------------------------------------------------------------------


def e8_scaling(
    n_values: tuple[int, ...] = (8, 16, 32, 64),
    slots: int = 20,
) -> ExperimentResult:
    """Simulator throughput vs n, plus replicated-log slot latency."""
    table = Table(
        ["n", "runs/s (failure-free)", "messages/run", "mean slot rounds (RSM)"],
        title="E8: engine scaling and replicated-log throughput",
    )
    for n in n_values:
        # Throughput of failure-free CRW runs.
        reps = 30
        start = time.perf_counter()
        msgs = 0
        for seed in range(reps):
            result = run_once(RunConfig("crw", n, n - 1, 0, "none", seed))
            msgs = result.stats.messages_sent
        elapsed = time.perf_counter() - start
        # RSM: commit `slots` slots, crash-free.
        log = ReplicatedLog(n, KVStore, t=n - 1, rng=RandomSource(1))
        rounds = []
        for s in range(slots):
            slot = log.commit({1: Command(1, f"set k{s} v{s}")})
            rounds.append(slot.rounds)
        assert log.check_invariants() == []
        table.add_row(n, reps / elapsed, msgs, sum(rounds) / len(rounds))
    return ExperimentResult(
        exp_id="E8",
        title="engine scaling + RSM throughput",
        claim="(repro quality) simulator scales to n=64+; failure-free RSM "
        "commits every slot in one extended round",
        tables=[table],
        findings={},
    )


ALL_EXPERIMENTS = {
    "e1": e1_rounds,
    "e2": e2_bits,
    "e3": e3_timing,
    "e4": e4_lowerbound,
    "e5": e5_mr99,
    "e6": e6_ffd,
    "e7": e7_simulation,
    "e8": e8_scaling,
}

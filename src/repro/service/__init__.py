"""Consensus as a service: the long-lived fault-tolerant serving layer.

Everything below this package turns one-shot consensus runs into a
*service*: client commands stream through a leader into
:class:`~repro.rsm.log.ReplicatedLog` slots and the system stays correct
and live while replicas crash under it.

* :mod:`~repro.service.ring` — :class:`LeaderRing`: alive-set,
  deterministic leader rotation (lowest live pid, matching the Figure-1
  slot winner), and the fencing epoch that kills deposed leaders' acks;
* :mod:`~repro.service.sessions` — client sessions with per-attempt
  timeouts, exponential-backoff retries, and the ``(session, request)``
  commit ledger that makes retries idempotent;
* :mod:`~repro.service.traffic` — open-loop (seeded Poisson) and
  closed-loop workload generators in virtual time;
* :mod:`~repro.service.metrics` — throughput and nearest-rank latency
  percentiles (p50/p99) as first-class outputs;
* :mod:`~repro.service.loop` — :class:`ConsensusService`, the serving
  loop that wires all of it to the replicated log, drills chaos kills
  through live slots (``repro-consensus service run --chaos
  "kill:leader,after=3,every=4"``), and degrades honestly when the crash
  budget runs out.

See ``DESIGN.md`` §3.7.
"""

from repro.service.loop import ConsensusService, ServiceReport
from repro.service.metrics import LatencyRecorder, ServiceCounters, percentile
from repro.service.ring import LeaderRing
from repro.service.sessions import (
    Ack,
    CommitRecord,
    Request,
    RetryPolicy,
    SessionTable,
)
from repro.service.traffic import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    Workload,
    command_stream,
)

__all__ = [
    "ConsensusService",
    "ServiceReport",
    "LeaderRing",
    "RetryPolicy",
    "Request",
    "Ack",
    "CommitRecord",
    "SessionTable",
    "Workload",
    "ClosedLoopWorkload",
    "OpenLoopWorkload",
    "command_stream",
    "LatencyRecorder",
    "ServiceCounters",
    "percentile",
]

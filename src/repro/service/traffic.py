"""Traffic generators: open- and closed-loop client workloads.

The two canonical load shapes for serving benchmarks:

* **closed loop** — each client keeps exactly one request outstanding
  and issues the next one when the previous settles (ack, failure, or
  refusal), optionally after a think time.  Offered load adapts to
  service latency; this is the steady-state replication shape.
* **open loop** — arrivals come from a seeded Poisson process at a fixed
  rate, regardless of outstanding requests.  Offered load does *not*
  adapt, so leader crashes back commands up in the pending queue and the
  latency tail (p99) shows it — the honest way to measure chaos cost.

Workloads emit ``(session, op)`` pairs; the service assigns per-session
request ids.  Op streams are deterministic functions of
``(machine, session, sequence)`` so every run is replayable.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError
from repro.util.rng import RandomSource

__all__ = ["command_stream", "Workload", "ClosedLoopWorkload", "OpenLoopWorkload"]


def command_stream(machine: str, session: int, seq: int) -> str:
    """The ``seq``-th op of ``session``'s command stream for ``machine``.

    Deterministic and machine-valid: kv sessions write a small rotating
    key set (with periodic deletes), counter sessions mix increments and
    decrements.
    """
    if machine == "kv":
        key = f"s{session}.k{seq % 8}"
        if seq % 7 == 6:
            return f"del {key}"
        return f"set {key} v{seq}"
    if machine == "counter":
        if seq % 5 == 4:
            return f"sub {1 + seq % 3}"
        return f"add {1 + seq % 3}"
    raise ConfigurationError(
        f"no command stream for machine {machine!r}; available: kv, counter"
    )


class Workload(abc.ABC):
    """What the service loop needs from a traffic source."""

    #: Total requests this workload will ever offer.
    total_requests: int

    @abc.abstractmethod
    def due(self, now: float) -> list[tuple[int, str]]:
        """Arrivals with time <= ``now``: ``(session, op)`` pairs, in order."""

    @abc.abstractmethod
    def next_arrival(self) -> float | None:
        """Time of the next known future arrival (None when unknown/none).

        Closed-loop clients waiting on an outstanding request have no
        known arrival time — their next request is unlocked by
        :meth:`on_settle`, so they do not appear here.
        """

    @abc.abstractmethod
    def on_settle(self, session: int, now: float) -> None:
        """A request of ``session`` settled (acked or failed)."""

    def on_refuse(self, session: int) -> None:
        """An arrival of ``session`` was refused (service draining)."""

    @abc.abstractmethod
    def exhausted(self) -> bool:
        """True when no future arrival will ever come."""


class ClosedLoopWorkload(Workload):
    """``clients`` sessions, one outstanding request each."""

    def __init__(
        self,
        clients: int,
        requests_per_client: int,
        *,
        machine: str = "kv",
        think_time: float = 0.0,
    ) -> None:
        if clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {clients}")
        if requests_per_client < 1:
            raise ConfigurationError(
                f"need >= 1 request per client, got {requests_per_client}"
            )
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time}")
        self.clients = clients
        self.quota = requests_per_client
        self.machine = machine
        self.think_time = think_time
        self.total_requests = clients * requests_per_client
        self._issued = {s: 0 for s in range(1, clients + 1)}
        self._waiting = {s: False for s in range(1, clients + 1)}
        self._ready_at = {s: 0.0 for s in range(1, clients + 1)}
        self._halted = {s: False for s in range(1, clients + 1)}

    def due(self, now: float) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        for s in range(1, self.clients + 1):
            if (
                not self._halted[s]
                and not self._waiting[s]
                and self._issued[s] < self.quota
                and self._ready_at[s] <= now
            ):
                op = command_stream(self.machine, s, self._issued[s])
                self._issued[s] += 1
                self._waiting[s] = True
                out.append((s, op))
        return out

    def next_arrival(self) -> float | None:
        times = [
            self._ready_at[s]
            for s in range(1, self.clients + 1)
            if not self._halted[s]
            and not self._waiting[s]
            and self._issued[s] < self.quota
        ]
        return min(times) if times else None

    def on_settle(self, session: int, now: float) -> None:
        self._waiting[session] = False
        self._ready_at[session] = now + self.think_time

    def on_refuse(self, session: int) -> None:
        # A refused client stops offering load: the drain is terminal.
        self._halted[session] = True
        self._waiting[session] = False

    def exhausted(self) -> bool:
        return all(
            self._halted[s] or (self._issued[s] >= self.quota and not self._waiting[s])
            or (self._issued[s] >= self.quota)
            for s in range(1, self.clients + 1)
        )


class OpenLoopWorkload(Workload):
    """Poisson arrivals at ``rate`` per virtual-time unit, round-robin sessions."""

    def __init__(
        self,
        clients: int,
        requests: int,
        *,
        rate: float = 1.0,
        machine: str = "kv",
        rng: RandomSource | None = None,
    ) -> None:
        if clients < 1:
            raise ConfigurationError(f"need >= 1 client, got {clients}")
        if requests < 1:
            raise ConfigurationError(f"need >= 1 request, got {requests}")
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        self.clients = clients
        self.machine = machine
        self.total_requests = requests
        rng = rng or RandomSource(0)
        arrivals = []
        t = 0.0
        seqs = {s: 0 for s in range(1, clients + 1)}
        for i in range(requests):
            t += rng.exponential(1.0 / rate)
            session = i % clients + 1
            arrivals.append((t, session, command_stream(machine, session, seqs[session])))
            seqs[session] += 1
        self._arrivals = arrivals
        self._next = 0

    def due(self, now: float) -> list[tuple[int, str]]:
        out: list[tuple[int, str]] = []
        while self._next < len(self._arrivals) and self._arrivals[self._next][0] <= now:
            _, session, op = self._arrivals[self._next]
            out.append((session, op))
            self._next += 1
        return out

    def next_arrival(self) -> float | None:
        if self._next < len(self._arrivals):
            return self._arrivals[self._next][0]
        return None

    def on_settle(self, session: int, now: float) -> None:
        pass  # open loop: arrivals do not depend on completions

    def exhausted(self) -> bool:
        return self._next >= len(self._arrivals)

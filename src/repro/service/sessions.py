"""Client sessions: timeouts, exponential-backoff retries, idempotent dedup.

Exactly-once semantics over an at-least-once transport, the classic way:

* every request carries a ``(session_id, request_id)`` identity that
  rides inside the committed :class:`~repro.rsm.machine.Command`;
* the server keeps a **commit ledger** keyed by that identity — a
  retried request whose original attempt already committed is answered
  from the ledger instead of being proposed again, so no command is ever
  applied twice;
* acks are stamped with the ring epoch they were issued under, and
  :meth:`SessionTable.accept_ack` rejects any ack whose epoch is no
  longer current — the fencing that stops a deposed leader's late
  decision from reaching a client.

Clients drive retries with a deadline per attempt and exponential
backoff between attempts (capped), giving bounded, deterministic retry
schedules in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.service.ring import LeaderRing

__all__ = ["RetryPolicy", "Request", "Ack", "CommitRecord", "SessionTable"]


@dataclass(slots=True, frozen=True)
class RetryPolicy:
    """Client-side timeout/retry knobs (virtual-time units)."""

    timeout: float = 12.0  # per-attempt ack deadline
    backoff_base: float = 1.0  # wait before retry k: base * 2**(k-1) ...
    backoff_cap: float = 8.0  # ... capped here
    max_attempts: int = 8  # total attempts before failing honestly

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def backoff(self, attempt: int) -> float:
        """Wait before retry attempt ``attempt`` (2 = first retry)."""
        if attempt < 2:
            return 0.0
        return min(self.backoff_base * 2.0 ** (attempt - 2), self.backoff_cap)


@dataclass(slots=True)
class Request:
    """One client request's lifecycle, tracked by the service loop."""

    session: int
    request_id: int
    op: str
    submitted_at: float  # first submission (latency baseline)
    deadline: float  # current attempt's ack deadline
    eligible_at: float = 0.0  # earliest propose time (backoff gate)
    attempts: int = 1
    acked_at: float | None = None
    failed: bool = False
    refused: bool = False

    @property
    def key(self) -> tuple[int, int]:
        return (self.session, self.request_id)

    @property
    def settled(self) -> bool:
        """Terminal: acked, failed, or refused."""
        return self.acked_at is not None or self.failed or self.refused


@dataclass(slots=True, frozen=True)
class Ack:
    """A commit acknowledgement, stamped with its issuing epoch/leader."""

    session: int
    request_id: int
    slot: int
    epoch: int
    leader: int
    at: float


@dataclass(slots=True, frozen=True)
class CommitRecord:
    """Ledger entry: where (and under which epoch) a request committed."""

    slot: int
    epoch: int
    leader: int


class SessionTable:
    """Server-side dedup ledger + fencing gate."""

    __slots__ = ("_commits", "rejected_stale")

    def __init__(self) -> None:
        self._commits: dict[tuple[int, int], CommitRecord] = {}
        self.rejected_stale = 0

    def __len__(self) -> int:
        return len(self._commits)

    def committed(self, key: tuple[int, int]) -> CommitRecord | None:
        """The commit record for ``key``, or None if never committed."""
        return self._commits.get(key)

    def record_commit(self, key: tuple[int, int], record: CommitRecord) -> bool:
        """Record a commit; False when ``key`` already committed (a dedup
        violation upstream — the caller surfaces it, nothing is
        overwritten)."""
        if key in self._commits:
            return False
        self._commits[key] = record
        return True

    def accept_ack(self, ack: Ack, ring: LeaderRing) -> bool:
        """Fencing gate: only current-epoch acks reach clients.

        An ack stamped with a deposed leader's epoch is dropped (and
        counted) — the client will time out and retry, landing on the
        commit ledger under the new leader.
        """
        if not ring.fences(ack.epoch):
            self.rejected_stale += 1
            return False
        return True

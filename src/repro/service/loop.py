"""The consensus service loop: traffic in, committed log slots out.

:class:`ConsensusService` is the long-lived serving shape on top of
:class:`~repro.rsm.log.ReplicatedLog`: client commands stream through the
current leader into log slots, survive injected crash storms via leader
rotation, and reach clients exactly once through the retry/dedup session
layer.  The loop runs in *virtual time* — one unit per configured
``round_time`` per executed consensus round — so every latency figure and
retry schedule is deterministic, a pure function of
``(seed, workload, chaos plan)``.

One iteration of the loop:

1. **admit** — pull due arrivals from the workload; while draining,
   arrivals are refused (honest load shedding, never a hang);
2. **timeout scan** — requests past their ack deadline either dedup-ack
   from the commit ledger (the original committed but the ack was fenced
   or lost) or re-enter the propose queue with exponential backoff, until
   the client's attempt budget fails them honestly;
3. **propose** — the oldest eligible request rides a tagged
   :class:`~repro.rsm.machine.Command` proposed by the ring leader into
   the next log slot; chaos kills fire *inside* that slot as engine
   crash events, at the leader's own send round;
4. **settle** — a committed tagged command is ledgered and acked under
   the epoch it was proposed in; if the leader died in the slot the ring
   rotates first and the stale-epoch ack is fenced off, leaving the
   retry path to answer from the ledger.

Degradation is a first-class outcome: once crashes exhaust the ``t``
budget the service drains in-flight requests, refuses new ones, and
reports ``state="degraded"`` — partial but honest, never wedged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fabric.faults import RAND, FaultInjected, ServiceFaultPlan
from repro.rsm.log import ReplicatedLog
from repro.rsm.machine import MACHINES, Command
from repro.service.metrics import LatencyRecorder, ServiceCounters
from repro.service.ring import LeaderRing
from repro.service.sessions import (
    Ack,
    CommitRecord,
    Request,
    RetryPolicy,
    SessionTable,
)
from repro.service.traffic import Workload
from repro.sync.crash import CrashEvent, CrashPoint
from repro.util.rng import RandomSource

__all__ = ["ConsensusService", "ServiceReport"]

#: Chaos grammar crash points → engine crash points.
_POINTS = {
    "before": CrashPoint.BEFORE_SEND,
    "data": CrashPoint.DURING_DATA,
    "control": CrashPoint.DURING_CONTROL,
    "after": CrashPoint.AFTER_SEND,
}

_RUNNING = "running"
_DRAINING = "draining"


@dataclass(slots=True)
class ServiceReport:
    """Everything one service run produced, JSON-able."""

    state: str  # "completed" | "degraded"
    machine: str
    n: int
    t: int
    elapsed: float  # virtual time at shutdown
    throughput: float  # acked commands per virtual-time unit
    counters: dict[str, int]
    latency: dict[str, float]
    epoch: int
    rotations: int
    leader: int | None
    crashed: list[int]
    digests: dict[int, str]  # live replica state digests
    budget_exhausted: bool
    problems: list[str]  # safety/liveness violations (empty = OK)

    @property
    def ok(self) -> bool:
        """Clean run: completed, no violations, nothing refused or failed."""
        return (
            self.state == "completed"
            and not self.problems
            and self.counters["failed"] == 0
            and self.counters["refused"] == 0
        )

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "ok": self.ok,
            "machine": self.machine,
            "n": self.n,
            "t": self.t,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "counters": dict(self.counters),
            "latency": dict(self.latency),
            "epoch": self.epoch,
            "rotations": self.rotations,
            "leader": self.leader,
            "crashed": list(self.crashed),
            "digests": {str(pid): d for pid, d in self.digests.items()},
            "budget_exhausted": self.budget_exhausted,
            "problems": list(self.problems),
        }


class ConsensusService:
    """A fault-tolerant command-serving loop over the replicated log."""

    def __init__(
        self,
        n: int,
        *,
        machine: str = "kv",
        t: int | None = None,
        seed: int = 0,
        faults: ServiceFaultPlan | None = None,
        policy: RetryPolicy | None = None,
        round_time: float = 1.0,
        max_slots: int | None = None,
        propose_retry_limit: int = 4,
    ) -> None:
        if machine not in MACHINES:
            raise ConfigurationError(
                f"unknown machine {machine!r}; available: "
                f"{', '.join(sorted(MACHINES))}"
            )
        if round_time <= 0:
            raise ConfigurationError(f"round_time must be > 0, got {round_time}")
        if propose_retry_limit < 1:
            raise ConfigurationError(
                f"propose_retry_limit must be >= 1, got {propose_retry_limit}"
            )
        self.n = n
        self.machine_name = machine
        rng = RandomSource(seed)
        self.log = ReplicatedLog(n, MACHINES[machine], t=t, rng=rng.spawn("log"))
        self.t = self.log.t
        self.ring = LeaderRing(n)
        self.table = SessionTable()
        self.policy = policy or RetryPolicy()
        self.faults = faults
        self.round_time = round_time
        self.max_slots = max_slots
        self.propose_retry_limit = propose_retry_limit
        self.counters = ServiceCounters()
        self.latencies = LatencyRecorder()
        self.requests: dict[tuple[int, int], Request] = {}
        self.state = _RUNNING
        self.budget_exhausted = False
        self._chaos_rng = rng.spawn("chaos")
        self._problems: list[str] = []
        self._propose_attempts: dict[int, int] = {}
        self._poison_bypassed: set[int] = set()
        self._ran = False

    # -- settle helpers -----------------------------------------------------------

    def _ack(self, workload: Workload, req: Request, ack: Ack) -> None:
        req.acked_at = ack.at
        self.latencies.record(ack.at - req.submitted_at)
        self.counters.acked += 1
        workload.on_settle(req.session, ack.at)

    def _fail(self, workload: Workload, req: Request, now: float) -> None:
        req.failed = True
        self.counters.failed += 1
        workload.on_settle(req.session, now)

    # -- the loop -----------------------------------------------------------------

    def run(self, workload: Workload) -> ServiceReport:
        """Serve ``workload`` to completion (or honest degradation)."""
        if self._ran:
            raise ConfigurationError("a ConsensusService instance serves one run")
        self._ran = True

        faults = self.faults
        if faults is not None:
            horizon = max(16, workload.total_requests * 4)
            faults = faults.bind(replicas=self.n, slots=horizon)
        max_slots = self.max_slots
        if max_slots is None:
            max_slots = 64 + workload.total_requests * self.policy.max_attempts * 4

        now = 0.0
        pending: deque[tuple[int, int]] = deque()
        queued: set[tuple[int, int]] = set()
        next_id: dict[int, int] = {}
        stall = 0

        while True:
            progressed = False

            # 1. admit arrivals (refused while draining — load shedding).
            for session, op in workload.due(now):
                progressed = True
                rid = next_id.get(session, 1)
                next_id[session] = rid + 1
                if self.state != _RUNNING:
                    req = Request(session, rid, op, submitted_at=now, deadline=now)
                    req.refused = True
                    self.requests[req.key] = req
                    self.counters.refused += 1
                    workload.on_refuse(session)
                    continue
                req = Request(
                    session,
                    rid,
                    op,
                    submitted_at=now,
                    deadline=now + self.policy.timeout,
                )
                self.requests[req.key] = req
                self.counters.submitted += 1
                pending.append(req.key)
                queued.add(req.key)

            # 2. timeout scan: dedup-ack, retry with backoff, or fail.
            for req in self.requests.values():
                if req.settled or now < req.deadline:
                    continue
                progressed = True
                record = self.table.committed(req.key)
                if record is not None:
                    # The original attempt committed (ack fenced or lost):
                    # the retry is answered from the ledger, no new slot.
                    self.counters.retried += 1
                    self.counters.deduped += 1
                    ack = Ack(
                        req.session,
                        req.request_id,
                        record.slot,
                        self.ring.epoch,
                        self.ring.leader,
                        now,
                    )
                    if self.table.accept_ack(ack, self.ring):
                        self._ack(workload, req, ack)
                    continue
                if req.attempts >= self.policy.max_attempts:
                    self._fail(workload, req, now)
                    queued.discard(req.key)
                    continue
                req.attempts += 1
                self.counters.retried += 1
                if req.key in queued:
                    # Still waiting in the propose queue: the retry just
                    # re-arms the client's deadline.
                    req.deadline = now + self.policy.timeout
                else:
                    delay = self.policy.backoff(req.attempts)
                    req.eligible_at = now + delay
                    req.deadline = req.eligible_at + self.policy.timeout
                    pending.append(req.key)
                    queued.add(req.key)

            # 3. pick the oldest eligible queued request.
            choice = None
            for idx, key in enumerate(pending):
                if key not in queued:
                    continue  # lazily removed
                candidate = self.requests[key]
                if candidate.settled:
                    queued.discard(key)
                    continue
                if candidate.eligible_at <= now:
                    choice = (idx, key, candidate)
                    break

            if choice is None:
                unsettled = [r for r in self.requests.values() if not r.settled]
                if not unsettled and workload.exhausted():
                    break
                events: list[float] = []
                arrival = workload.next_arrival()
                if arrival is not None:
                    events.append(arrival)
                for r in unsettled:
                    events.append(r.eligible_at if r.key in queued else r.deadline)
                if not events:
                    self._problems.append(
                        "service wedged: unsettled requests with no future event"
                    )
                    self.state = _DRAINING
                    break
                nxt = min(events)
                if nxt <= now:
                    if progressed:
                        continue
                    stall += 1
                    if stall > 3:
                        self._problems.append("service wedged: virtual time stalled")
                        self.state = _DRAINING
                        break
                    now += self.round_time
                    continue
                stall = 0
                now = nxt
                continue
            stall = 0
            idx, key, req = choice
            prospective = len(self.log.slots) + 1

            # Propose-path raise faults: transient ones retry after a
            # pause, poison ones fail the head request honestly after the
            # propose-retry budget (and the slot is then served normally).
            if faults is not None and prospective not in self._poison_bypassed:
                attempt = self._propose_attempts.get(prospective, 0)
                try:
                    faults.check_slot(prospective, attempt)
                except FaultInjected:
                    self._propose_attempts[prospective] = attempt + 1
                    self.counters.propose_retries += 1
                    if attempt + 1 >= self.propose_retry_limit:
                        self._poison_bypassed.add(prospective)
                        self._fail(workload, req, now)
                        del pending[idx]
                        queued.discard(key)
                    else:
                        now += self.round_time
                    continue

            del pending[idx]
            queued.discard(key)

            # Chaos kills for this slot, resolved against the live ring.
            crash_events: list[CrashEvent] = []
            if faults is not None and self.state == _RUNNING:
                for spec in faults.kills_for(prospective):
                    target = self.ring.leader if spec.leader else spec.pid
                    if target is None or target not in self.ring.alive:
                        continue  # already dead: the kill is a no-op
                    already = self.n - len(self.ring.alive)
                    if self.t - already - len(crash_events) <= 0:
                        # The kill would exceed the crash budget: degrade
                        # instead of wedging (or lying about tolerance).
                        self.budget_exhausted = True
                        self.state = _DRAINING
                        break
                    point = spec.point
                    if point == RAND:
                        point = self._chaos_rng.choice(
                            ("before", "data", "control", "after")
                        )
                    # The leader sends in its own coordinating round; a
                    # non-leader target just dies at the slot's start.
                    round_no = target if target == self.ring.leader else 1
                    crash_events.append(CrashEvent(target, round_no, _POINTS[point]))
                    self.counters.kills += 1

            epoch = self.ring.epoch
            leader = self.ring.leader
            command = Command(origin=leader, op=req.op, tag=key)
            slot = self.log.commit({leader: command}, crash_events)
            self.counters.slots += 1
            now += slot.rounds * self.round_time

            # Rotation happens *before* the ack is offered: an ack stamped
            # with a dead leader's epoch must be fenced, not delivered.
            self.ring.observe_crashes(slot.new_crashes)

            if slot.decided is not None and slot.decided.tag == key:
                record = CommitRecord(slot=slot.slot, epoch=epoch, leader=leader)
                if not self.table.record_commit(key, record):
                    self._problems.append(
                        f"slot {slot.slot}: duplicate commit of {key}"
                    )
                ack = Ack(req.session, req.request_id, slot.slot, epoch, leader, now)
                if self.table.accept_ack(ack, self.ring):
                    self._ack(workload, req, ack)
                # else: fenced — the client times out and dedup-acks later.
            else:
                # The proposal died with the leader; a successor's noop
                # filled the slot.  The client's deadline drives the retry.
                self.counters.noop_slots += 1

            if self.state == _RUNNING and self.n - len(self.ring.alive) >= self.t:
                self.budget_exhausted = True
                self.state = _DRAINING
            if self.counters.slots >= max_slots:
                self._problems.append(
                    f"slot cap {max_slots} hit before traffic drained"
                )
                self.state = _DRAINING
                break

        return self._report(now)

    # -- reporting ----------------------------------------------------------------

    def _report(self, elapsed: float) -> ServiceReport:
        self.counters.rejected_stale = self.table.rejected_stale
        problems = list(self._problems)
        problems.extend(self.log.check_invariants())
        problems.extend(self._history_problems())
        if set(self.log.live_pids) != self.ring.alive:
            problems.append(
                f"ring/log liveness divergence: ring {sorted(self.ring.alive)} "
                f"vs log {self.log.live_pids}"
            )
        live = self.log.live_pids
        digests = {pid: self.log.replicas[pid].machine.digest() for pid in live}
        state = "completed" if self.state == _RUNNING else "degraded"
        throughput = self.counters.acked / elapsed if elapsed > 0 else 0.0
        return ServiceReport(
            state=state,
            machine=self.machine_name,
            n=self.n,
            t=self.t,
            elapsed=elapsed,
            throughput=throughput,
            counters=self.counters.to_dict(),
            latency=self.latencies.summary(),
            epoch=self.ring.epoch,
            rotations=self.ring.rotations,
            leader=self.ring.leader,
            crashed=sorted(set(range(1, self.n + 1)) - self.ring.alive),
            digests=digests,
            budget_exhausted=self.budget_exhausted,
            problems=problems,
        )

    def _history_problems(self) -> list[str]:
        """Linearizability-style exactly-once check over the committed log.

        * no tagged command appears in the log twice (dedup held);
        * every acked request's command is in the log, at the ledgered
          slot (no lost acks);
        * real-time order: a request acked before another was submitted
          committed at an earlier slot.
        """
        problems: list[str] = []
        live = self.log.live_pids
        if not live:
            return ["all replicas crashed: no reference log"]
        reference = self.log.replicas[live[0]].log
        tag_slots: dict[tuple[int, int], list[int]] = {}
        for slot_no, cmd in enumerate(reference, start=1):
            if cmd.tag is not None:
                tag_slots.setdefault(cmd.tag, []).append(slot_no)
        for tag, slots in sorted(tag_slots.items()):
            if len(slots) > 1:
                problems.append(
                    f"command {tag} applied {len(slots)} times (slots {slots})"
                )
        acked = [r for r in self.requests.values() if r.acked_at is not None]
        with_slots = []
        for req in acked:
            record = self.table.committed(req.key)
            if record is None:
                problems.append(f"acked {req.key} has no ledger entry")
                continue
            slots = tag_slots.get(req.key)
            if not slots:
                problems.append(f"acked {req.key} never committed (lost command)")
                continue
            if record.slot not in slots:
                problems.append(
                    f"acked {req.key} ledgered at slot {record.slot} "
                    f"but committed at {slots}"
                )
            with_slots.append((record.slot, req))
        # Real-time order, O(n): scanning by slot descending, a violation
        # is an earlier-slot request submitted at-or-after a later-slot
        # request's ack.
        with_slots.sort(key=lambda pair: pair[0], reverse=True)
        min_ack_later = float("inf")
        for _, req in with_slots:
            if min_ack_later <= req.submitted_at:
                problems.append(
                    f"real-time order violated around {req.key}: a later-slot "
                    f"request was acked before this one was submitted"
                )
            min_ack_later = min(min_ack_later, req.acked_at)
        # Replay: the committed log must reproduce the live state exactly.
        machine = MACHINES[self.machine_name]()
        for cmd in reference:
            machine.apply(cmd)
        replayed = machine.digest()
        for pid in live:
            if self.log.replicas[pid].machine.digest() != replayed:
                problems.append(f"replayed log digest diverges from live p{pid}")
        return problems

"""Service metrics: latency percentiles and counter bookkeeping.

The north star is "heavy traffic": the service's first-class outputs are
throughput (acked commands per unit of virtual time) and the latency
distribution clients actually observe — including the retries, leader
rotations, and dedup round-trips chaos injects.  Percentiles use the
nearest-rank definition (no interpolation): deterministic, exact on the
small-to-medium histories the drills produce, and honest at the tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["percentile", "LatencyRecorder", "ServiceCounters"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    ``values`` need not be sorted; empty input raises (an empty latency
    history has no percentiles — callers report 0 explicitly if they want
    a placeholder).
    """
    if not values:
        raise ConfigurationError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil(len * q / 100)
    return ordered[int(rank) - 1]


@dataclass(slots=True)
class LatencyRecorder:
    """Ack latencies (first submission → ack, virtual time)."""

    samples: list[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    def summary(self) -> dict[str, float]:
        """p50/p99/mean/max over the recorded samples (zeros when empty)."""
        if not self.samples:
            return {"p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0, "count": 0}
        return {
            "p50": percentile(self.samples, 50.0),
            "p99": percentile(self.samples, 99.0),
            "mean": sum(self.samples) / len(self.samples),
            "max": max(self.samples),
            "count": len(self.samples),
        }


@dataclass(slots=True)
class ServiceCounters:
    """Everything the service counts while serving traffic."""

    submitted: int = 0  # requests admitted (first submissions)
    acked: int = 0  # requests acknowledged after commit
    refused: int = 0  # arrivals rejected while draining/degraded
    failed: int = 0  # requests failed honestly (retry/propose budget)
    retried: int = 0  # client retry attempts fired
    deduped: int = 0  # retries answered from the commit ledger
    rejected_stale: int = 0  # acks fenced off (deposed-leader epochs)
    slots: int = 0  # log slots committed
    noop_slots: int = 0  # slots that decided a filler noop (lost proposals)
    propose_retries: int = 0  # service-side propose attempts retried
    kills: int = 0  # chaos kills actually injected

    def to_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "acked": self.acked,
            "refused": self.refused,
            "failed": self.failed,
            "retried": self.retried,
            "deduped": self.deduped,
            "rejected_stale": self.rejected_stale,
            "slots": self.slots,
            "noop_slots": self.noop_slots,
            "propose_retries": self.propose_retries,
            "kills": self.kills,
        }

"""Leader ring: alive-set, deterministic rotation, epoch fencing.

The service's leader is the replica whose proposal wins log slots.  With
the paper's Figure-1 algorithm, round ``r`` of each slot is coordinated
by ``p_r`` and crashed replicas enter every slot pre-crashed, so the
winner is always the *lowest-id live replica* — the ring therefore keeps
its members in pid order and rotation on a leader crash is simply
"advance to the next live pid".  That is the `RoundManager` shape
(leader starts rounds; ring/alive-set updates on failure) with the
successor choice made deterministic instead of gossiped.

Epochs provide fencing, the standard defense against deposed leaders
("Expected Linear Round Synchronization" uses the same relay/epoch
structure): every leader change bumps ``epoch``, proposals and acks are
stamped with the epoch they were issued under, and the session layer
rejects any ack whose epoch is no longer current.  A leader that crashed
mid-slot may have decided (its slot can still commit) — its *ack* is the
thing fencing kills, forcing the client through the retry/dedup path
under the new leader.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["LeaderRing"]


class LeaderRing:
    """Alive-set + current leader + fencing epoch for ``n`` replicas."""

    __slots__ = ("n", "alive", "epoch", "rotations")

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ConfigurationError("need n >= 2 replicas in the ring")
        self.n = n
        self.alive: set[int] = set(range(1, n + 1))
        self.epoch = 1
        self.rotations = 0

    @property
    def leader(self) -> int | None:
        """Current leader: the lowest-id live replica (None if all dead)."""
        return min(self.alive) if self.alive else None

    def successor(self, pid: int) -> int | None:
        """Next live pid after ``pid`` in ring order (wrapping), or None.

        Deterministic successor selection: every replica computes the
        same answer from the same alive-set, no election needed.
        """
        for step in range(1, self.n + 1):
            candidate = (pid - 1 + step) % self.n + 1
            if candidate in self.alive:
                return candidate
        return None

    def observe_crashes(self, pids) -> bool:
        """Fold a slot's crash ledger into the alive-set.

        Returns True when the leadership rotated (and bumps the fencing
        epoch exactly once per rotation, however many replicas died).
        """
        before = self.leader
        self.alive.difference_update(pids)
        if self.alive and self.leader == before:
            return False
        self.epoch += 1
        self.rotations += 1
        return True

    def fences(self, epoch: int) -> bool:
        """True when ``epoch`` is current — stale-epoch acks are rejected."""
        return epoch == self.epoch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeaderRing(n={self.n}, leader={self.leader}, "
            f"epoch={self.epoch}, alive={sorted(self.alive)})"
        )

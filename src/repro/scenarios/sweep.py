"""Grid sweeps over scenarios: pluggable executors + JSONL persistence.

:class:`SweepRunner` takes any iterable of :class:`Scenario` cells and
executes them under a chosen executor:

* ``"serial"`` — in-process loop (debuggable, zero overhead);
* ``"process"`` — a ``multiprocessing`` pool, scenarios chunked so each
  worker task amortizes pickling over ``chunk_size`` cells.  Scenarios
  cross the process boundary as plain dicts; workers resolve names
  against the registries their own import of :mod:`repro.scenarios`
  built, so custom entries must be registered at module import time.

With a ``jsonl_path`` every finished record is appended as one JSON line
(scenario + record), and a rerun **resumes**: cells whose canonical
scenario key already appears in the file are loaded instead of re-run.
Writes are buffered and flushed once per completed chunk rather than per
record (a per-record ``write``+``flush`` dominates sweep wall-clock on
fast cells); interrupting a sweep therefore loses at most the in-flight
chunk — the same durability unit the process pool already had.  Serial
sweeps additionally flush every :attr:`SweepRunner.FLUSH_INTERVAL_S`
seconds, so slow cells keep near-per-record durability.

Results come back in input order regardless of executor, so
``serial`` and ``process`` sweeps of the same grid are equal record for
record (pinned by ``tests/scenarios/test_sweep.py``).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.execute import EngineLease, execute
from repro.scenarios.record import RunRecord
from repro.scenarios.registry import ADVERSARIES, ALGORITHMS
from repro.scenarios.scenario import Scenario, scenario_key

__all__ = ["SweepRunner", "expand_grid", "CellSummary", "summarize_records"]


def expand_grid(
    algorithms: Sequence[str],
    n_values: Sequence[int],
    *,
    f_values: Sequence[int] | None = None,
    adversaries: Sequence[str] = ("none",),
    seeds: int = 1,
    t_rule: Callable[[str, int], int | None] | None = None,
    base: Scenario | None = None,
) -> list[Scenario]:
    """Expand a cartesian grid into scenario cells.

    ``f_values=None`` means "0..t for crashing adversaries, 0 for none".
    ``t_rule(algorithm, n)`` may pin ``t`` per cell; by default the
    algorithm's own rule applies (``t=None`` in the scenario).  ``base``
    supplies non-grid fields (workload, timing, params).

    Explicit ``f_values`` exceeding a combination's effective ``t``, and
    (algorithm, adversary) pairs the adversary's backend plans cannot
    serve, are dropped with a :class:`UserWarning` (a mixed grid
    legitimately caps ``f`` or pairs adversaries per algorithm, but
    silent drops would fake coverage — and an incompatible cell would
    otherwise abort the sweep mid-run); a grid that expands to zero
    cells is an error.
    """
    template = base if base is not None else Scenario(algorithm="crw", n=1)
    cells: list[Scenario] = []
    dropped: list[str] = []
    for algorithm in algorithms:
        algo = ALGORITHMS.get(algorithm)
        for n in n_values:
            t = t_rule(algorithm, n) if t_rule is not None else None
            effective_t = t if t is not None else algo.default_t(n)
            for adversary in adversaries:
                adv = ADVERSARIES.get(adversary)
                plan = (
                    adv.make_sync
                    if algo.backend in ("extended", "classic")
                    else adv.make_timed
                )
                if plan is None:
                    dropped.append(
                        f"{algorithm} ({algo.backend}): adversary {adversary!r} "
                        f"has no plan for that backend"
                    )
                    continue
                if f_values is not None:
                    fs = [f for f in f_values if f <= effective_t]
                    if len(fs) < len(f_values):
                        dropped.append(
                            f"{algorithm} n={n} {adversary}: "
                            f"f={sorted(set(f_values) - set(fs))} > t={effective_t}"
                        )
                elif adversary == "none":
                    fs = [0]
                else:
                    fs = list(range(0, effective_t + 1))
                for f in fs:
                    for seed in range(seeds):
                        cells.append(template.with_(
                            algorithm=algorithm,
                            n=n,
                            t=t,
                            f=f,
                            adversary=adversary,
                            seed=seed,
                        ))
    if dropped and cells:  # fully-empty grids raise below instead
        warnings.warn(
            "expand_grid dropped unexpressible cells: " + "; ".join(dropped),
            UserWarning,
            stacklevel=2,
        )
    if not cells:
        # A silently empty grid would let `scenario sweep` "pass" without
        # running anything; the usual cause is every requested f exceeding
        # the effective t for the given algorithms and n values.
        raise ConfigurationError(
            f"grid expanded to zero cells (algorithms={list(algorithms)}, "
            f"n={list(n_values)}, f={list(f_values) if f_values is not None else 'auto'}, "
            f"adversaries={list(adversaries)}, seeds={seeds})"
        )
    return cells


# -- process-pool workers (module level: must be picklable) -----------------


def _run_cell(
    scenario_dict: dict[str, Any], lease: EngineLease | None = None
) -> dict[str, Any]:
    # trace=False pins sweep cells to the engines' allocation-free fast
    # path; per-event traces of thousands of cells would be pure overhead
    # (records are byte-identical either way — see the fast-path parity
    # grid in tests/sync/test_fastpath_parity.py).
    record = execute(Scenario.from_dict(scenario_dict), trace=False, lease=lease)
    return record.to_dict()


def _run_chunk(chunk: list[dict[str, Any]]) -> list[dict[str, Any]]:
    # One engine lease per chunk: seed-dense grids re-run the same
    # configuration cell after cell, so every cell past a chunk's first
    # resets a cached engine instead of rebuilding factories and wiring.
    # Records are identical with or without the lease (pinned by
    # tests/scenarios/test_engine_reuse.py); worker-local, never pickled.
    lease = EngineLease()
    return [_run_cell(cell, lease) for cell in chunk]


class SweepRunner:
    """Execute a list of scenario cells with persistence and resume.

    Parameters
    ----------
    scenarios:
        The cells to run (ordering is preserved in the results).
    executor:
        ``"serial"`` or ``"process"``.
    processes:
        Pool size for the process executor (default: ``os.cpu_count()``,
        capped at the number of chunks).
    chunk_size:
        Cells per worker task; seed-dense grids amortize pickling and
        registry warm-up over each chunk.  ``None`` (the default) sizes
        chunks automatically: large enough to amortize IPC, small enough
        to keep every worker busy (~4 chunks per worker).
    jsonl_path:
        Append-mode persistence file; pre-existing lines are treated as
        completed cells (resume).
    """

    #: Serial executor: flush the JSONL buffer at least this often even
    #: when the per-count threshold is not reached, so sweeps over slow
    #: cells keep near-per-record durability.
    FLUSH_INTERVAL_S = 2.0

    def __init__(
        self,
        scenarios: Iterable[Scenario],
        *,
        executor: str = "serial",
        processes: int | None = None,
        chunk_size: int | None = None,
        jsonl_path: str | os.PathLike[str] | None = None,
    ) -> None:
        self.scenarios = list(scenarios)
        if executor not in ("serial", "process"):
            raise ConfigurationError(
                f"unknown executor {executor!r}; available: serial, process"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if processes is not None and processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        self.executor = executor
        self.processes = processes
        self.chunk_size = chunk_size
        self.jsonl_path = os.fspath(jsonl_path) if jsonl_path is not None else None
        #: Cells actually executed by the last :meth:`run` (excludes resumed).
        self.executed = 0
        #: Cells loaded from the JSONL file by the last :meth:`run`.
        self.resumed = 0

    # -- persistence -------------------------------------------------------

    def _load_done(self) -> dict[str, dict[str, Any]]:
        done: dict[str, dict[str, Any]] = {}
        if self.jsonl_path is None or not os.path.exists(self.jsonl_path):
            return done
        with open(self.jsonl_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from an interrupted sweep
                if not isinstance(entry, dict):
                    continue  # foreign JSONL: valid JSON but not an object
                record = entry.get("record")
                if not isinstance(record, dict) or "scenario" not in record:
                    continue
                try:
                    key = Scenario.from_dict(record["scenario"]).to_json()
                except ConfigurationError:
                    continue  # foreign/incompatible line: re-run that cell
                done[key] = record
        return done

    @staticmethod
    def _flush(fh, buffer: list[dict[str, Any]]) -> None:
        """Write buffered records as one syscall-sized append, then flush."""
        if fh is None or not buffer:
            buffer.clear()
            return
        fh.write(
            "".join(
                json.dumps({"record": record}, sort_keys=True) + "\n"
                for record in buffer
            )
        )
        fh.flush()
        buffer.clear()

    # -- execution ---------------------------------------------------------

    def _effective_chunk_size(self, pending_count: int, workers: int) -> int:
        """The chunk size actually used for this run.

        Auto-tuning targets ~4 chunks per worker so a straggler chunk
        cannot idle the rest of the pool, capped at 64 cells so one chunk
        never holds back persistence for too long, floored at 8 to keep
        pickling/IPC amortized.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if workers <= 1 or pending_count == 0:
            return 32
        per_worker = -(-pending_count // (workers * 4))  # ceil division
        return max(8, min(64, per_worker))

    def _chunks(
        self, cells: list[dict[str, Any]], chunk_size: int
    ) -> Iterator[list[dict[str, Any]]]:
        for i in range(0, len(cells), chunk_size):
            yield cells[i : i + chunk_size]

    def run(self) -> list[RunRecord]:
        """Run every pending cell; return records for *all* cells, in order."""
        done = self._load_done()
        pending: list[Scenario] = []
        pending_keys: set[str] = set()
        resumed_keys: set[str] = set()
        for s in self.scenarios:
            key = scenario_key(s)
            if key in done:
                resumed_keys.add(key)
            elif key not in pending_keys:  # duplicate cells run once
                pending.append(s)
                pending_keys.add(key)
        self.resumed = len(resumed_keys)
        self.executed = 0

        fh = None
        if self.jsonl_path is not None:
            fh = open(self.jsonl_path, "a", encoding="utf-8")
        buffer: list[dict[str, Any]] = []
        try:
            if self.executor == "serial":
                chunk_size = self._effective_chunk_size(len(pending), workers=1)
                last_flush = time.monotonic()
                lease = EngineLease()  # engine reuse across the whole pass
                for scenario in pending:
                    record_dict = _run_cell(scenario.to_dict(), lease)
                    done[scenario_key(scenario)] = record_dict
                    buffer.append(record_dict)
                    # Count-based flushing amortizes write+flush over fast
                    # cells; the time trigger bounds how much work an
                    # interrupted sweep of *slow* cells can lose.
                    if (
                        len(buffer) >= chunk_size
                        or time.monotonic() - last_flush >= self.FLUSH_INTERVAL_S
                    ):
                        self._flush(fh, buffer)
                        last_flush = time.monotonic()
                    self.executed += 1
            else:
                self._run_pool(pending, done, fh, buffer)
        finally:
            self._flush(fh, buffer)
            if fh is not None:
                fh.close()

        return [RunRecord.from_dict(done[scenario_key(s)]) for s in self.scenarios]

    def _run_pool(self, pending, done, fh, buffer) -> None:
        import multiprocessing

        if not pending:
            return
        workers = self.processes or os.cpu_count() or 2
        chunk_size = self._effective_chunk_size(len(pending), workers)
        chunks = list(self._chunks([s.to_dict() for s in pending], chunk_size))
        workers = max(1, min(workers, len(chunks)))
        with multiprocessing.Pool(processes=workers) as pool:
            for chunk_result in pool.imap_unordered(_run_chunk, chunks):
                for record_dict in chunk_result:
                    key = Scenario.from_dict(record_dict["scenario"]).to_json()
                    done[key] = record_dict
                    buffer.append(record_dict)
                    self.executed += 1
                self._flush(fh, buffer)  # one append+flush per finished chunk


# ---------------------------------------------------------------------------
# Aggregation.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CellSummary:
    """Aggregate of the seeds of one (algorithm, n, t, f, adversary) cell."""

    algorithm: str
    n: int
    t: int | None
    f: int
    adversary: str
    seeds: int
    mean_last_round: float
    max_last_round: int
    mean_messages: float
    mean_bits: float
    spec_ok: bool
    #: Mean simulated completion time; None for the round-based backends
    #: (for ffd this is the metric that matters — rounds are always 0).
    mean_sim_time: float | None = None


def summarize_records(records: Iterable[RunRecord]) -> list[CellSummary]:
    """Group records by cell (everything but the seed) and aggregate.

    Cells differing only in workload/timing/params get separate rows
    (their displayed columns may coincide; the averages never mix).
    """
    groups: dict[tuple, list[RunRecord]] = {}
    for record in records:
        s = record.scenario
        key = (
            s.algorithm, s.n, s.t, s.f, s.adversary,
            s.with_(seed=0).to_json(),  # the full non-seed configuration
        )
        groups.setdefault(key, []).append(record)
    out = []
    for (algorithm, n, t, f, adversary, _config), group in sorted(
        groups.items(),
        key=lambda kv: (
            kv[0][0],
            kv[0][1],
            -1 if kv[0][2] is None else kv[0][2],  # t=None ("auto") sorts first
            kv[0][3],
            kv[0][4],
            kv[0][5],
        ),
    ):
        rounds = [r.last_decision_round for r in group]
        times = [r.sim_time for r in group if r.sim_time is not None]
        out.append(CellSummary(
            algorithm=algorithm,
            n=n,
            t=t,
            f=f,
            adversary=adversary,
            seeds=len(group),
            mean_last_round=sum(rounds) / len(group),
            max_last_round=max(rounds),
            mean_messages=sum(r.messages_sent for r in group) / len(group),
            mean_bits=sum(r.bits_sent for r in group) / len(group),
            spec_ok=all(r.spec_ok for r in group),
            mean_sim_time=sum(times) / len(times) if times else None,
        ))
    return out

"""Grid sweeps over scenarios: pluggable executors + JSONL persistence.

:class:`SweepRunner` takes any iterable of :class:`Scenario` cells and
executes them under a chosen executor:

* ``"serial"`` — in-process loop (debuggable, zero overhead);
* ``"process"`` — a ``multiprocessing`` pool, scenarios chunked so each
  worker task amortizes pickling over ``chunk_size`` cells.  Workers
  resolve names against the registries their own import of
  :mod:`repro.scenarios` built, so custom entries must be registered at
  module import time.
* ``"sharded"`` — the :mod:`repro.fabric` work-stealing executor:
  ``jsonl_path`` names a shard *directory* (manifest + one columnar
  JSONL file per shard), results return through shared-memory scalar
  slabs, and resume is shard-wise off the manifest.  See
  :class:`repro.fabric.ShardedSweep`.

The data path is columnar end to end (PR 5).  Two independent knobs keep
the legacy one-dict-per-cell shapes available for comparison:

* ``wire`` — how cells cross the process-pool boundary.  ``"delta"``
  (default) ships one shared base-scenario dict plus compact per-cell
  :func:`CellDelta <repro.scenarios.scenario.scenario_delta>` dicts and
  receives one :class:`~repro.scenarios.record.RecordBatch` payload per
  chunk; ``"dict"`` ships full scenario dicts and receives one record
  dict per cell.
* ``writer`` — the JSONL persistence layout.  ``"columnar"`` (default)
  appends one ``{"batch": ...}`` line per flushed chunk (a single encode
  pass over the batch payload); ``"legacy"`` appends one
  ``{"record": ...}`` line per cell.  **Resume reads both layouts
  regardless of the writer**, so files may mix them across reruns.

With a ``jsonl_path`` every finished record is persisted, and a rerun
**resumes**: cells whose canonical scenario key already appears in the
file are loaded instead of re-run.  The resume index is built without
re-instantiating a :class:`Scenario` per line — the canonical key of a
stored scenario dict is just its sorted-key JSON dump, and malformed or
foreign lines produce keys no pending cell can match (torn final lines
from an interrupted sweep fail JSON decoding and are skipped outright).
Writes are buffered and flushed once per completed chunk rather than per
record; interrupting a sweep therefore loses at most the in-flight
chunk — the same durability unit the process pool already had.  Serial
sweeps additionally flush every :attr:`SweepRunner.FLUSH_INTERVAL_S`
seconds, so slow cells keep near-per-record durability.

Results come back in input order regardless of executor, wire format, and
writer, and are byte-identical across all of them (pinned by
``tests/scenarios/test_sweep.py`` and
``tests/scenarios/test_columnar_parity.py``).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.scenarios.execute import EngineLease, execute
from repro.scenarios.record import RecordBatch, RunRecord
from repro.scenarios.registry import ADVERSARIES, ALGORITHMS
from repro.scenarios.scenario import Scenario, scenario_delta, scenario_key

__all__ = [
    "SweepRunner",
    "expand_grid",
    "CellSummary",
    "summarize_records",
    "summarize_record_sources",
]


def expand_grid(
    algorithms: Sequence[str],
    n_values: Sequence[int],
    *,
    f_values: Sequence[int] | None = None,
    adversaries: Sequence[str] = ("none",),
    seeds: int = 1,
    t_rule: Callable[[str, int], int | None] | None = None,
    base: Scenario | None = None,
) -> list[Scenario]:
    """Expand a cartesian grid into scenario cells.

    ``f_values=None`` means "0..t for crashing adversaries, 0 for none".
    ``t_rule(algorithm, n)`` may pin ``t`` per cell; by default the
    algorithm's own rule applies (``t=None`` in the scenario).  ``base``
    supplies non-grid fields (workload, timing, params).

    Explicit ``f_values`` exceeding a combination's effective ``t``, and
    (algorithm, adversary) pairs the adversary's backend plans cannot
    serve, are dropped with a :class:`UserWarning` (a mixed grid
    legitimately caps ``f`` or pairs adversaries per algorithm, but
    silent drops would fake coverage — and an incompatible cell would
    otherwise abort the sweep mid-run); a grid that expands to zero
    cells is an error.
    """
    template = base if base is not None else Scenario(algorithm="crw", n=1)
    cells: list[Scenario] = []
    dropped: list[str] = []
    for algorithm in algorithms:
        algo = ALGORITHMS.get(algorithm)
        for n in n_values:
            t = t_rule(algorithm, n) if t_rule is not None else None
            effective_t = t if t is not None else algo.default_t(n)
            for adversary in adversaries:
                adv = ADVERSARIES.get(adversary)
                plan = (
                    adv.make_sync
                    if algo.backend in ("extended", "classic")
                    else adv.make_timed
                )
                if plan is None:
                    dropped.append(
                        f"{algorithm} ({algo.backend}): adversary {adversary!r} "
                        f"has no plan for that backend"
                    )
                    continue
                if f_values is not None:
                    fs = [f for f in f_values if f <= effective_t]
                    if len(fs) < len(f_values):
                        dropped.append(
                            f"{algorithm} n={n} {adversary}: "
                            f"f={sorted(set(f_values) - set(fs))} > t={effective_t}"
                        )
                elif adversary == "none":
                    fs = [0]
                else:
                    fs = list(range(0, effective_t + 1))
                for f in fs:
                    for seed in range(seeds):
                        cells.append(template.with_(
                            algorithm=algorithm,
                            n=n,
                            t=t,
                            f=f,
                            adversary=adversary,
                            seed=seed,
                        ))
    if dropped and cells:  # fully-empty grids raise below instead
        warnings.warn(
            "expand_grid dropped unexpressible cells: " + "; ".join(dropped),
            UserWarning,
            stacklevel=2,
        )
    if not cells:
        # A silently empty grid would let `scenario sweep` "pass" without
        # running anything; the usual cause is every requested f exceeding
        # the effective t for the given algorithms and n values.
        raise ConfigurationError(
            f"grid expanded to zero cells (algorithms={list(algorithms)}, "
            f"n={list(n_values)}, f={list(f_values) if f_values is not None else 'auto'}, "
            f"adversaries={list(adversaries)}, seeds={seeds})"
        )
    return cells


# -- process-pool workers (module level: must be picklable) -----------------


def _run_cell(
    scenario_dict: dict[str, Any], lease: EngineLease | None = None
) -> dict[str, Any]:
    # trace=False pins sweep cells to the engines' allocation-free fast
    # path; per-event traces of thousands of cells would be pure overhead
    # (records are byte-identical either way — see the fast-path parity
    # grid in tests/sync/test_fastpath_parity.py).
    record = execute(Scenario.from_dict(scenario_dict), trace=False, lease=lease)
    return record.to_dict()


def _run_chunk(task: tuple[int, list[dict[str, Any]]]) -> tuple[int, list[dict[str, Any]]]:
    # One engine lease per chunk: seed-dense grids re-run the same
    # configuration cell after cell, so every cell past a chunk's first
    # resets a cached engine instead of rebuilding factories and wiring.
    # Records are identical with or without the lease (pinned by
    # tests/scenarios/test_engine_reuse.py); worker-local, never pickled.
    # The chunk index rides along so the parent can map results back to
    # the scenarios (and keys) it dispatched without re-parsing them.
    idx, chunk = task
    lease = EngineLease()
    return idx, [_run_cell(cell, lease) for cell in chunk]


#: Per-worker shared base scenario for the delta wire, set once by the
#: pool initializer instead of riding every chunk task through the pipe.
_POOL_BASE: Scenario | None = None
_POOL_BASE_DICT: dict[str, Any] | None = None


def _pool_init_base(base_dict: dict[str, Any]) -> None:
    """Pool initializer: materialize the sweep-wide base scenario once.

    Every delta-wire chunk task used to carry (and re-pickle) the full
    base-scenario dict; hoisting it here means only the compact per-cell
    deltas cross the pipe per task.
    """
    global _POOL_BASE, _POOL_BASE_DICT
    _POOL_BASE_DICT = base_dict
    _POOL_BASE = Scenario.from_dict(base_dict)


def _run_chunk_delta(
    task: tuple[int, list[dict[str, Any]]],
) -> tuple[int, dict[str, Any]]:
    """Delta-wire worker: CellDeltas in, one batch payload out.

    The shared base scenario was materialized once per worker by
    :func:`_pool_init_base`; each cell is its ``with_`` variation, so no
    per-cell ``Scenario.from_dict`` validation pass runs in the worker,
    and the whole chunk's records return as one columnar
    :class:`~repro.scenarios.record.RecordBatch` payload instead of one
    dict per cell.  The payload's ``base`` entry is stripped — the
    parent knows it and re-attaches it, so it never crosses the result
    pipe either.
    """
    idx, deltas = task
    base = _POOL_BASE
    assert base is not None, "pool initialized without _pool_init_base"
    lease = EngineLease()
    batch = RecordBatch()
    for delta in deltas:
        cell = base.with_(**delta) if delta else base
        batch.append(execute(cell, trace=False, lease=lease).normalized())
    payload = batch.to_payload(_POOL_BASE_DICT)
    del payload["base"]
    return idx, payload


def _dict_key(scenario_dict: Any) -> str | None:
    """Canonical resume key of a stored scenario dict, or None if unkeyable.

    For any dict that round-tripped through :meth:`Scenario.to_dict` this
    equals ``scenario_key(Scenario.from_dict(d))`` — a sorted-key JSON
    dump — without paying a Scenario construction per line.  Foreign or
    malformed dicts either fail the dump (None) or produce a key that no
    pending cell can match, which re-runs the cell exactly like the old
    validating loader did.
    """
    try:
        return json.dumps(scenario_dict, sort_keys=True)
    except (TypeError, ValueError):
        return None


class SweepRunner:
    """Execute a list of scenario cells with persistence and resume.

    Parameters
    ----------
    scenarios:
        The cells to run (ordering is preserved in the results).
    executor:
        ``"serial"``, ``"process"``, or ``"sharded"`` (the
        :mod:`repro.fabric` work-stealing executor; ``jsonl_path`` then
        names a shard *directory*, and ``writer`` must stay columnar).
    processes:
        Pool/worker count for the process and sharded executors
        (default: ``os.cpu_count()``, capped at the number of
        chunks/shards).
    shards:
        Shard count for a fresh sharded plan (default: ~4 per worker);
        an existing shard directory's manifest always wins on resume.
    chunk_size:
        Cells per worker task; seed-dense grids amortize pickling and
        registry warm-up over each chunk.  ``None`` (the default) sizes
        chunks automatically: large enough to amortize IPC, small enough
        to keep every worker busy (~4 chunks per worker).
    jsonl_path:
        Append-mode persistence file; pre-existing lines are treated as
        completed cells (resume).
    writer:
        JSONL layout: ``"columnar"`` (default, one batch line per flush)
        or ``"legacy"`` (one record line per cell).  Resume reads both.
    wire:
        Process-pool cell format: ``"delta"`` (default, base + CellDeltas
        out / batch payload back) or ``"dict"`` (full scenario dicts out /
        record dicts back).  Serial sweeps never serialize cells at all.
    faults, liveness_timeout, max_respawns, max_shard_retries, retry_backoff_s:
        Sharded-executor supervision knobs, passed through to
        :class:`repro.fabric.ShardedSweep` (fault injection, hung-worker
        detection, respawn budget, retry/quarantine policy).  ``None``
        keeps the fabric's defaults; setting any of them with another
        executor is an error.  A sweep that quarantined poison cells
        returns ``None`` at their positions (see
        :attr:`quarantined`).
    """

    #: Serial executor: flush the JSONL buffer at least this often even
    #: when the per-count threshold is not reached, so sweeps over slow
    #: cells keep near-per-record durability.
    FLUSH_INTERVAL_S = 2.0

    def __init__(
        self,
        scenarios: Iterable[Scenario],
        *,
        executor: str = "serial",
        processes: int | None = None,
        chunk_size: int | None = None,
        jsonl_path: str | os.PathLike[str] | None = None,
        writer: str = "columnar",
        wire: str = "delta",
        shards: int | None = None,
        faults: Any | None = None,
        liveness_timeout: float | None = None,
        max_respawns: int | None = None,
        max_shard_retries: int | None = None,
        retry_backoff_s: float | None = None,
    ) -> None:
        self.scenarios = list(scenarios)
        if executor not in ("serial", "process", "sharded"):
            raise ConfigurationError(
                f"unknown executor {executor!r}; available: serial, process, "
                f"sharded"
            )
        if writer not in ("columnar", "legacy"):
            raise ConfigurationError(
                f"unknown writer {writer!r}; available: columnar, legacy"
            )
        if executor == "sharded" and writer != "columnar":
            raise ConfigurationError(
                "the sharded executor writes columnar shard files; "
                "writer='legacy' would be silently ignored"
            )
        if wire not in ("delta", "dict"):
            raise ConfigurationError(
                f"unknown wire format {wire!r}; available: delta, dict"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if processes is not None and processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        supervision = {
            "faults": faults,
            "liveness_timeout": liveness_timeout,
            "max_respawns": max_respawns,
            "max_shard_retries": max_shard_retries,
            "retry_backoff_s": retry_backoff_s,
        }
        set_knobs = [name for name, value in supervision.items() if value is not None]
        if set_knobs and executor != "sharded":
            raise ConfigurationError(
                f"{', '.join(set_knobs)} require(s) the sharded executor "
                f"(supervision lives in the fabric dispatcher), got "
                f"executor={executor!r}"
            )
        self.faults = faults
        self.liveness_timeout = liveness_timeout
        self.max_respawns = max_respawns
        self.max_shard_retries = max_shard_retries
        self.retry_backoff_s = retry_backoff_s
        self.executor = executor
        self.processes = processes
        self.chunk_size = chunk_size
        self.jsonl_path = os.fspath(jsonl_path) if jsonl_path is not None else None
        self.writer = writer
        self.wire = wire
        self.shards = shards
        #: Cells actually executed by the last :meth:`run` (excludes resumed).
        self.executed = 0
        #: Cells loaded from the JSONL file by the last :meth:`run`.
        self.resumed = 0
        #: Wall-clock seconds spent inside the last :meth:`run`.
        self.elapsed = 0.0
        #: Sharded executor only: shard counts, steal count, per-shard stats
        #: (see :class:`repro.fabric.ShardedSweep`); zero/empty otherwise.
        self.resumed_shards = 0
        self.fresh_shards = 0
        self.stolen_chunks = 0
        self.shard_stats: list[dict[str, Any]] = []
        #: Sharded executor supervision counters: shard failures handled,
        #: replacement workers spawned, quarantined cells; zero otherwise.
        self.retries = 0
        self.respawns = 0
        self.quarantined = 0

    # -- persistence -------------------------------------------------------

    def _load_done(self) -> dict[str, Any]:
        """Resume index: canonical scenario key → stored record.

        Reads both line layouts — ``{"record": row}`` (legacy, stored as
        the raw row dict and decoded lazily at collection) and
        ``{"batch": payload}`` (columnar, stored directly as normalized
        :class:`RunRecord` objects) — keyed without constructing a
        Scenario per line (see :func:`_dict_key`).  Unreadable lines
        (torn tail of an interrupted sweep, foreign JSONL) are skipped;
        their cells simply re-run.
        """
        done: dict[str, Any] = {}
        if self.jsonl_path is None or not os.path.exists(self.jsonl_path):
            return done
        with open(self.jsonl_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from an interrupted sweep
                if not isinstance(entry, dict):
                    continue  # foreign JSONL: valid JSON but not an object
                record = entry.get("record")
                if isinstance(record, dict) and "scenario" in record:
                    key = _dict_key(record["scenario"])
                    if key is not None:
                        done[key] = record
                    continue
                payload = entry.get("batch")
                if isinstance(payload, dict):
                    try:
                        records = RecordBatch.from_payload(payload).to_records()
                        base = payload["base"]
                        deltas = payload["cells"]
                    except (ConfigurationError, IndexError, KeyError,
                            TypeError, ValueError):
                        continue  # foreign/incompatible batch: re-run its cells
                    # Stored straight as normalized records (no dict round
                    # trip); the key of base|delta is the record scenario's
                    # canonical key without an asdict pass per cell.
                    for delta, record in zip(deltas, records):
                        key = _dict_key({**base, **delta})
                        if key is not None:
                            done[key] = record
        return done

    def _flush(self, fh, buffer: list[RunRecord]) -> None:
        """Persist buffered records as one syscall-sized append, then flush.

        The columnar writer encodes the whole buffer as one batch line
        (a single ``json.dumps`` pass); the legacy writer emits one
        ``{"record": ...}`` line per record.
        """
        if fh is None or not buffer:
            buffer.clear()
            return
        if self.writer == "columnar":
            payload = RecordBatch.from_records(buffer).to_payload()
            fh.write(json.dumps({"batch": payload}, sort_keys=True) + "\n")
        else:
            fh.write(
                "".join(
                    json.dumps({"record": record.to_dict()}, sort_keys=True) + "\n"
                    for record in buffer
                )
            )
        fh.flush()
        buffer.clear()

    # -- execution ---------------------------------------------------------

    def _effective_chunk_size(self, pending_count: int, workers: int) -> int:
        """The chunk size actually used for this run.

        Auto-tuning targets ~4 chunks per worker so a straggler chunk
        cannot idle the rest of the pool, capped at 64 cells so one chunk
        never holds back persistence for too long, floored at 8 to keep
        pickling/IPC amortized.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if workers <= 1 or pending_count == 0:
            return 32
        per_worker = -(-pending_count // (workers * 4))  # ceil division
        return max(8, min(64, per_worker))

    def _chunks(self, cells: list, chunk_size: int) -> Iterator[list]:
        for i in range(0, len(cells), chunk_size):
            yield cells[i : i + chunk_size]

    def run(self) -> list[RunRecord]:
        """Run every pending cell; return records for *all* cells, in order."""
        started = time.perf_counter()
        if self.executor == "sharded":
            try:
                return self._run_sharded()
            finally:
                self.elapsed = time.perf_counter() - started
        done = self._load_done()
        keys = [scenario_key(s) for s in self.scenarios]
        pending: list[Scenario] = []
        pending_keys: list[str] = []
        seen_pending: set[str] = set()
        resumed_keys: set[str] = set()
        for s, key in zip(self.scenarios, keys):
            if key in done:
                resumed_keys.add(key)
            elif key not in seen_pending:  # duplicate cells run once
                pending.append(s)
                pending_keys.append(key)
                seen_pending.add(key)
        self.resumed = len(resumed_keys)
        self.executed = 0

        fh = None
        if self.jsonl_path is not None:
            fh = open(self.jsonl_path, "a", encoding="utf-8")
            # Heal a torn tail before appending: a sweep killed mid-write
            # leaves a partial final line, and appending straight after it
            # would glue the first new record onto the garbage — losing a
            # whole fresh chunk on the *next* resume.  A newline turns the
            # torn fragment into its own (skippable) line instead.
            size = os.path.getsize(self.jsonl_path)
            if size:
                with open(self.jsonl_path, "rb") as tail:
                    tail.seek(size - 1)
                    if tail.read(1) != b"\n":
                        fh.write("\n")
        buffer: list[RunRecord] = []
        try:
            if self.executor == "serial":
                chunk_size = self._effective_chunk_size(len(pending), workers=1)
                last_flush = time.monotonic()
                lease = EngineLease()  # engine reuse across the whole pass
                for scenario, key in zip(pending, pending_keys):
                    record = execute(scenario, trace=False, lease=lease).normalized()
                    done[key] = record
                    buffer.append(record)
                    # Count-based flushing amortizes write+flush over fast
                    # cells; the time trigger bounds how much work an
                    # interrupted sweep of *slow* cells can lose.
                    if (
                        len(buffer) >= chunk_size
                        or time.monotonic() - last_flush >= self.FLUSH_INTERVAL_S
                    ):
                        self._flush(fh, buffer)
                        last_flush = time.monotonic()
                    self.executed += 1
            else:
                self._run_pool(pending, pending_keys, done, fh, buffer)
        finally:
            self._flush(fh, buffer)
            if fh is not None:
                fh.close()
            self.elapsed = time.perf_counter() - started

        # Fresh cells are already normalized records; resumed cells decode
        # from their stored rows here (once, at collection).  Duplicate
        # cells get an independent copy per position — callers could
        # mutate one occurrence's containers in place, and aliasing would
        # silently edit the others.
        out: list[RunRecord] = []
        emitted: set[str] = set()
        for key in keys:
            value = done[key]
            if not isinstance(value, RunRecord):
                value = done[key] = RunRecord.from_dict(value)
            if key in emitted:
                value = value.normalized()  # fresh containers, equal value
            else:
                emitted.add(key)
            out.append(value)
        return out

    def _run_sharded(self) -> list[RunRecord]:
        """Delegate to the :mod:`repro.fabric` work-stealing executor.

        The fabric runs the *unique* cells (duplicates collapse exactly as
        on the other executors) with ``jsonl_path`` as its shard
        directory — or an ephemeral one when no path was given — and this
        wrapper maps its stats back onto the runner's counters.
        """
        from repro.fabric.dispatcher import ShardedSweep

        unique: list[Scenario] = []
        unique_keys: list[str] = []
        keys = [scenario_key(s) for s in self.scenarios]
        seen: set[str] = set()
        for scenario, key in zip(self.scenarios, keys):
            if key not in seen:
                unique.append(scenario)
                unique_keys.append(key)
                seen.add(key)
        supervision = {
            name: value
            for name, value in (
                ("faults", self.faults),
                ("liveness_timeout", self.liveness_timeout),
                ("max_respawns", self.max_respawns),
                ("max_shard_retries", self.max_shard_retries),
                ("retry_backoff_s", self.retry_backoff_s),
            )
            if value is not None  # None → keep the fabric's own defaults
        }
        fabric = ShardedSweep(
            unique,
            directory=self.jsonl_path,
            processes=self.processes,
            shards=self.shards,
            chunk_size=self.chunk_size,
            keys=unique_keys,  # already computed for the dedupe above
            **supervision,
        )
        records = fabric.run()
        self.executed = fabric.executed
        self.resumed = fabric.resumed
        self.resumed_shards = fabric.resumed_shards
        self.fresh_shards = fabric.fresh_shards
        self.stolen_chunks = fabric.stolen_chunks
        self.shard_stats = fabric.shard_stats
        self.retries = fabric.retries
        self.respawns = fabric.respawns
        self.quarantined = fabric.quarantined
        if len(unique) == len(keys):  # no duplicates: fabric order IS grid order
            return records
        done = dict(zip(unique_keys, records))
        out: list[RunRecord | None] = []
        emitted: set[str] = set()
        for key in keys:
            value = done[key]
            # Quarantined cells come back as None; they carry no
            # containers, so duplicates need no defensive copy either.
            if value is not None and key in emitted:
                value = value.normalized()  # fresh containers per duplicate
            else:
                emitted.add(key)
            out.append(value)
        return out  # type: ignore[return-value]

    def _run_pool(self, pending, pending_keys, done, fh, buffer) -> None:
        import multiprocessing

        if not pending:
            return
        workers = self.processes or os.cpu_count() or 2
        chunk_size = self._effective_chunk_size(len(pending), workers)
        key_chunks = list(self._chunks(pending_keys, chunk_size))
        initializer, initargs = None, ()
        if self.wire == "delta":
            # One sweep-wide base scenario, shipped once per worker via the
            # pool initializer; every cell crosses the pool boundary as a
            # compact CellDelta against it.
            base = pending[0]
            base_dict = base.to_dict()
            initializer, initargs = _pool_init_base, (base_dict,)
            tasks = [
                (idx, [scenario_delta(base, cell) for cell in chunk])
                for idx, chunk in enumerate(self._chunks(pending, chunk_size))
            ]
            worker = _run_chunk_delta
        else:
            tasks = [
                (idx, [cell.to_dict() for cell in chunk])
                for idx, chunk in enumerate(self._chunks(pending, chunk_size))
            ]
            worker = _run_chunk
        workers = max(1, min(workers, len(tasks)))
        with multiprocessing.Pool(
            processes=workers, initializer=initializer, initargs=initargs
        ) as pool:
            for idx, result in pool.imap_unordered(worker, tasks):
                if self.wire == "delta":
                    result["base"] = base_dict  # stripped worker-side
                    records = RecordBatch.from_payload(result).to_records()
                else:
                    records = [RunRecord.from_dict(row) for row in result]
                for key, record in zip(key_chunks[idx], records):
                    done[key] = record
                    buffer.append(record)
                    self.executed += 1
                self._flush(fh, buffer)  # one append+flush per finished chunk


# ---------------------------------------------------------------------------
# Aggregation.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CellSummary:
    """Aggregate of the seeds of one (algorithm, n, t, f, adversary) cell."""

    algorithm: str
    n: int
    t: int | None
    f: int
    adversary: str
    seeds: int
    mean_last_round: float
    max_last_round: int
    mean_messages: float
    mean_bits: float
    spec_ok: bool
    #: Mean simulated completion time; None for the round-based backends
    #: (for ffd this is the metric that matters — rounds are always 0).
    mean_sim_time: float | None = None


def _group_key(s: Scenario) -> tuple:
    """Cheap full non-seed configuration key, same partition as the old
    per-record JSON config dump.

    The dict-valued fields are keyed by their canonical JSON (not
    ``repr``): a summary may mix records built from live scenarios with
    records resumed through ``json.loads``, and JSON-equivalent values —
    a tuple-valued param vs its decoded list — must land in one group,
    exactly as the full config dump merged them.  The dicts are almost
    always empty, so this stays far cheaper than the Scenario copy + full
    JSON dump per record it replaced.
    """
    return (
        s.algorithm,
        s.n,
        s.t,
        s.f,
        s.adversary,
        s.workload,
        json.dumps(s.workload_params, sort_keys=True),
        json.dumps(s.timing, sort_keys=True),
        json.dumps(s.params, sort_keys=True),
        s.max_rounds,
        s.model,
    )


class _CellAggregate:
    """Incremental accumulator for one cell group (streaming summaries)."""

    __slots__ = ("scenario", "seeds", "sum_rounds", "max_round",
                 "sum_messages", "sum_bits", "spec_ok", "sum_time", "n_time")

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario  # the group's first record's scenario
        self.seeds = 0
        self.sum_rounds = 0
        self.max_round = 0
        self.sum_messages = 0
        self.sum_bits = 0
        self.spec_ok = True
        self.sum_time = 0.0
        self.n_time = 0

    def add(self, record: RunRecord) -> None:
        self.seeds += 1
        self.sum_rounds += record.last_decision_round
        if record.last_decision_round > self.max_round or self.seeds == 1:
            self.max_round = record.last_decision_round
        self.sum_messages += record.messages_sent
        self.sum_bits += record.bits_sent
        self.spec_ok = self.spec_ok and record.spec_ok
        if record.sim_time is not None:
            self.sum_time += record.sim_time
            self.n_time += 1

    def summary(self) -> CellSummary:
        s = self.scenario
        return CellSummary(
            algorithm=s.algorithm,
            n=s.n,
            t=s.t,
            f=s.f,
            adversary=s.adversary,
            seeds=self.seeds,
            mean_last_round=self.sum_rounds / self.seeds,
            max_last_round=self.max_round,
            mean_messages=self.sum_messages / self.seeds,
            mean_bits=self.sum_bits / self.seeds,
            spec_ok=self.spec_ok,
            mean_sim_time=self.sum_time / self.n_time if self.n_time else None,
        )


def summarize_record_sources(
    sources: Iterable[Iterable[RunRecord] | RecordBatch],
) -> list[CellSummary]:
    """Streaming :func:`summarize_records` over multiple record sources.

    Each source is any record iterable (a list, a lazy generator over one
    shard file — see :func:`repro.fabric.atlas.iter_shard_records`) or a
    :class:`RecordBatch`.  Aggregation is incremental: only one
    accumulator per distinct cell group stays in memory, never the
    records themselves, so a million-cell sweep spread over per-shard
    files reduces in shard-file-sized working memory.  The output —
    grouping, ordering, and every mean — is identical to feeding all
    records to :func:`summarize_records` at once (sums accumulate in the
    same record order).
    """
    groups: dict[tuple, _CellAggregate] = {}
    for source in sources:
        if isinstance(source, RecordBatch):
            source = source.to_records()
        for record in source:
            key = _group_key(record.scenario)
            agg = groups.get(key)
            if agg is None:
                agg = groups[key] = _CellAggregate(record.scenario)
            agg.add(record)
    ordered = sorted(
        groups.values(),
        key=lambda agg: (
            (s := agg.scenario).algorithm,
            s.n,
            -1 if s.t is None else s.t,  # t=None ("auto") sorts first
            s.f,
            s.adversary,
            s.with_(seed=0).to_json(),  # the full non-seed configuration
        ),
    )
    return [agg.summary() for agg in ordered]


def summarize_records(
    records: Iterable[RunRecord] | RecordBatch,
) -> list[CellSummary]:
    """Group records by cell (everything but the seed) and aggregate.

    Accepts any record iterable or a :class:`RecordBatch`.  Cells
    differing only in workload/timing/params get separate rows (their
    displayed columns may coincide; the averages never mix).  Grouping
    runs over cheap per-record tuples into incremental per-group
    accumulators (records are never retained); the canonical non-seed
    config JSON is computed once per **group**, only to order the output
    rows.  For many sources — e.g. per-shard files — use
    :func:`summarize_record_sources` directly.
    """
    return summarize_record_sources((records,))

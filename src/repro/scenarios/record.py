"""The normalized result schema every backend reduces to.

Whatever executes a scenario — round engine, asynchronous event queue, or
the timed FFD environment — the caller gets one :class:`RunRecord`:
decisions, decision rounds, crash set, message/bit totals, and a spec
verdict, in backend-independent form.  The backend-native result object
stays reachable via ``record.raw`` for callers that need model-specific
detail (it is excluded from serialization).

Records serialize to plain JSON (``to_dict``/``from_dict``) so sweeps can
persist one record per line in a JSONL file and resume from it.  Decision
payloads are mapped through :func:`jsonable` — value types the library
uses (ints, strings, :class:`~repro.net.payload.SizedValue`, IC vectors,
the ⊥ sentinels) all have stable encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.scenarios.scenario import Scenario

__all__ = ["RunRecord", "jsonable"]


def jsonable(value: Any) -> Any:
    """Best-effort stable JSON encoding of a decision/proposal payload."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # SizedValue and the ⊥ sentinels are detected structurally to avoid
    # importing every payload-defining module here.
    if hasattr(value, "value") and hasattr(value, "bits"):
        return {"$sized": [jsonable(value.value), value.bits]}
    if repr(value) == "⊥":
        return {"$bot": True}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    return {"$repr": repr(value)}


@dataclass(slots=True)
class RunRecord:
    """Everything observable about one executed scenario, normalized."""

    scenario: Scenario
    backend: str  # "extended" | "classic" | "async" | "ffd"
    decisions: dict[int, Any]  # pid -> decided value
    decision_rounds: dict[int, int]  # pid -> round (0 for purely timed decisions)
    crashed: list[int]  # pids that crashed during the run
    f_actual: int  # crashes that actually happened
    rounds_executed: int
    last_decision_round: int
    messages_sent: int
    bits_sent: int
    spec_ok: bool
    violations: tuple[str, ...]
    sim_time: float | None = None  # continuous-time backends only
    raw: Any = field(default=None, compare=False)  # backend-native result

    def summary(self) -> str:
        """One-line human summary."""
        verdict = "OK" if self.spec_ok else "; ".join(self.violations)
        return (
            f"{self.backend} run {self.scenario.algorithm} n={self.scenario.n} "
            f"f={self.f_actual} rounds={self.last_decision_round} "
            f"msgs={self.messages_sent} bits={self.bits_sent} spec={verdict}"
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (drops ``raw``)."""
        return {
            "scenario": self.scenario.to_dict(),
            "backend": self.backend,
            "decisions": {str(pid): jsonable(v) for pid, v in self.decisions.items()},
            "decision_rounds": {
                str(pid): r for pid, r in self.decision_rounds.items()
            },
            "crashed": list(self.crashed),
            "f_actual": self.f_actual,
            "rounds_executed": self.rounds_executed,
            "last_decision_round": self.last_decision_round,
            "messages_sent": self.messages_sent,
            "bits_sent": self.bits_sent,
            "spec_ok": self.spec_ok,
            "violations": list(self.violations),
            "sim_time": self.sim_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Decision payloads come back in their encoded (``jsonable``) form;
        resumed sweep rows are used for aggregation and dedup, not for
        re-instantiating payload objects.
        """
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            backend=data["backend"],
            decisions={int(pid): v for pid, v in data["decisions"].items()},
            decision_rounds={
                int(pid): int(r) for pid, r in data["decision_rounds"].items()
            },
            crashed=[int(pid) for pid in data["crashed"]],
            f_actual=int(data["f_actual"]),
            rounds_executed=int(data["rounds_executed"]),
            last_decision_round=int(data["last_decision_round"]),
            messages_sent=int(data["messages_sent"]),
            bits_sent=int(data["bits_sent"]),
            spec_ok=bool(data["spec_ok"]),
            violations=tuple(data["violations"]),
            sim_time=data.get("sim_time"),
        )

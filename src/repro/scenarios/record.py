"""The normalized result schema every backend reduces to.

Whatever executes a scenario — round engine, asynchronous event queue, or
the timed FFD environment — the caller gets one :class:`RunRecord`:
decisions, decision rounds, crash set, message/bit totals, and a spec
verdict, in backend-independent form.  The backend-native result object
stays reachable via ``record.raw`` for callers that need model-specific
detail (it is excluded from serialization).

Records serialize to plain JSON (``to_dict``/``from_dict``) so sweeps can
persist one record per line in a JSONL file and resume from it.  Decision
payloads are mapped through :func:`jsonable` — value types the library
uses (ints, strings, :class:`~repro.net.payload.SizedValue`, IC vectors,
the ⊥ sentinels) all have stable encodings.

Sweeps move records in bulk, and one dict per cell is the wrong shape for
that: :class:`RecordBatch` holds a whole chunk of records as cell-indexed
parallel columns.  A batch round-trips through the per-record row form
(``to_rows``/``from_rows``), reduces straight to normalized records
(``to_records``), and — paired with the :func:`CellDelta
<repro.scenarios.scenario.scenario_delta>` wire format — encodes to one
compact payload per chunk (``to_payload``/``from_payload``): one shared
base-scenario dict plus per-cell deltas instead of a full scenario dict
per record.  That payload is both the process-pool wire format and the
columnar JSONL line format of :class:`~repro.scenarios.sweep.SweepRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.scenarios.scenario import (
    Scenario,
    apply_scenario_delta,
    scenario_delta,
)

__all__ = ["RunRecord", "RecordBatch", "jsonable"]

#: JSON-native scalar types that pass through :func:`jsonable` unchanged —
#: the overwhelmingly common decision payloads (ints) skip every check.
_JSON_SCALARS = (bool, int, float, str)


def jsonable(value: Any) -> Any:
    """Best-effort stable JSON encoding of a decision/proposal payload."""
    if value is None or isinstance(value, _JSON_SCALARS):
        return value
    # The ⊥ sentinels advertise themselves through a protocol marker
    # (``__consensus_bottom__``) rather than their repr: matching on
    # ``repr(value) == "⊥"`` would silently swallow any user payload that
    # happens to print as "⊥".  SizedValue stays structural (value+bits)
    # to avoid importing every payload-defining module here.
    if getattr(value, "__consensus_bottom__", False):
        return {"$bot": True}
    if hasattr(value, "value") and hasattr(value, "bits"):
        return {"$sized": [jsonable(value.value), value.bits]}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    return {"$repr": repr(value)}


def _encode_decisions(decisions: Mapping[int, Any]) -> dict[int, Any]:
    """One-pass ``jsonable`` over a decision map (int keys preserved)."""
    return {
        pid: v if v is None or type(v) in (int, str, bool, float) else jsonable(v)
        for pid, v in decisions.items()
    }


@dataclass(slots=True)
class RunRecord:
    """Everything observable about one executed scenario, normalized."""

    scenario: Scenario
    backend: str  # "extended" | "classic" | "async" | "ffd"
    decisions: dict[int, Any]  # pid -> decided value
    decision_rounds: dict[int, int]  # pid -> round (0 for purely timed decisions)
    crashed: list[int]  # pids that crashed during the run
    f_actual: int  # crashes that actually happened
    rounds_executed: int
    last_decision_round: int
    messages_sent: int
    bits_sent: int
    spec_ok: bool
    violations: tuple[str, ...]
    sim_time: float | None = None  # continuous-time backends only
    raw: Any = field(default=None, compare=False)  # backend-native result

    def summary(self) -> str:
        """One-line human summary."""
        verdict = "OK" if self.spec_ok else "; ".join(self.violations)
        return (
            f"{self.backend} run {self.scenario.algorithm} n={self.scenario.n} "
            f"f={self.f_actual} rounds={self.last_decision_round} "
            f"msgs={self.messages_sent} bits={self.bits_sent} spec={verdict}"
        )

    # -- serialization -----------------------------------------------------

    def normalized(self) -> "RunRecord":
        """The serialization-stable form of this record, without the JSON trip.

        Equal (``==``) to ``RunRecord.from_dict(self.to_dict())`` — decision
        payloads in their encoded ``jsonable`` form, ``raw`` dropped — but
        built directly, skipping the dict materialization and the
        ``Scenario.from_dict`` revalidation.  Sweeps normalize every
        freshly executed record so serial and pooled runs return
        byte-identical results cell for cell.
        """
        return RunRecord(
            scenario=self.scenario,
            backend=self.backend,
            decisions=_encode_decisions(self.decisions),
            decision_rounds=dict(self.decision_rounds),
            crashed=list(self.crashed),
            f_actual=self.f_actual,
            rounds_executed=self.rounds_executed,
            last_decision_round=self.last_decision_round,
            messages_sent=self.messages_sent,
            bits_sent=self.bits_sent,
            spec_ok=self.spec_ok,
            violations=tuple(self.violations),
            sim_time=self.sim_time,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (drops ``raw``)."""
        return {
            "scenario": self.scenario.to_dict(),
            "backend": self.backend,
            "decisions": {str(pid): jsonable(v) for pid, v in self.decisions.items()},
            "decision_rounds": {
                str(pid): r for pid, r in self.decision_rounds.items()
            },
            "crashed": list(self.crashed),
            "f_actual": self.f_actual,
            "rounds_executed": self.rounds_executed,
            "last_decision_round": self.last_decision_round,
            "messages_sent": self.messages_sent,
            "bits_sent": self.bits_sent,
            "spec_ok": self.spec_ok,
            "violations": list(self.violations),
            "sim_time": self.sim_time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Decision payloads come back in their encoded (``jsonable``) form;
        resumed sweep rows are used for aggregation and dedup, not for
        re-instantiating payload objects.
        """
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            backend=data["backend"],
            decisions={int(pid): v for pid, v in data["decisions"].items()},
            decision_rounds={
                int(pid): int(r) for pid, r in data["decision_rounds"].items()
            },
            crashed=[int(pid) for pid in data["crashed"]],
            f_actual=int(data["f_actual"]),
            rounds_executed=int(data["rounds_executed"]),
            last_decision_round=int(data["last_decision_round"]),
            messages_sent=int(data["messages_sent"]),
            bits_sent=int(data["bits_sent"]),
            spec_ok=bool(data["spec_ok"]),
            violations=tuple(data["violations"]),
            sim_time=data.get("sim_time"),
        )


# ---------------------------------------------------------------------------
# Columnar batches: a chunk of records as parallel columns.
# ---------------------------------------------------------------------------

#: RunRecord fields carried as plain columns (scenario and decisions need
#: bespoke encoding; ``raw`` never crosses a batch boundary).
_PLAIN_COLUMNS = (
    "backend",
    "decision_rounds",
    "crashed",
    "f_actual",
    "rounds_executed",
    "last_decision_round",
    "messages_sent",
    "bits_sent",
    "spec_ok",
    "sim_time",
)


class RecordBatch:
    """A chunk of normalized records as cell-indexed parallel columns.

    The batch is the bulk currency of the sweep layer: process-pool
    workers fill one per chunk and ship it back as a single payload, the
    columnar JSONL writer encodes one per flush, and resume/aggregation
    read columns instead of grouping record objects.

    Append :meth:`normalized <RunRecord.normalized>` records only —
    columns store decision payloads in their encoded ``jsonable`` form and
    the batch never re-encodes (:meth:`append` is called once per executed
    cell on the sweep hot path).
    """

    __slots__ = (
        "scenarios",
        "backend",
        "decisions",
        "decision_rounds",
        "crashed",
        "f_actual",
        "rounds_executed",
        "last_decision_round",
        "messages_sent",
        "bits_sent",
        "spec_ok",
        "violations",
        "sim_time",
    )

    def __init__(self) -> None:
        self.scenarios: list[Scenario] = []
        self.backend: list[str] = []
        self.decisions: list[dict[int, Any]] = []  # encoded payloads, int pids
        self.decision_rounds: list[dict[int, int]] = []
        self.crashed: list[list[int]] = []
        self.f_actual: list[int] = []
        self.rounds_executed: list[int] = []
        self.last_decision_round: list[int] = []
        self.messages_sent: list[int] = []
        self.bits_sent: list[int] = []
        self.spec_ok: list[bool] = []
        self.violations: list[tuple[str, ...]] = []
        self.sim_time: list[float | None] = []

    def __len__(self) -> int:
        return len(self.scenarios)

    def append(self, record: RunRecord) -> None:
        """Append one (already normalized) record to the columns."""
        self.scenarios.append(record.scenario)
        self.backend.append(record.backend)
        self.decisions.append(record.decisions)
        self.decision_rounds.append(record.decision_rounds)
        self.crashed.append(record.crashed)
        self.f_actual.append(record.f_actual)
        self.rounds_executed.append(record.rounds_executed)
        self.last_decision_round.append(record.last_decision_round)
        self.messages_sent.append(record.messages_sent)
        self.bits_sent.append(record.bits_sent)
        self.spec_ok.append(record.spec_ok)
        self.violations.append(record.violations)
        self.sim_time.append(record.sim_time)

    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "RecordBatch":
        """Batch up normalized records (see :meth:`append`)."""
        batch = cls()
        for record in records:
            batch.append(record)
        return batch

    def to_records(self) -> list[RunRecord]:
        """The batch as normalized :class:`RunRecord` objects (no JSON trip)."""
        return [
            RunRecord(
                scenario=self.scenarios[i],
                backend=self.backend[i],
                decisions=self.decisions[i],
                decision_rounds=self.decision_rounds[i],
                crashed=self.crashed[i],
                f_actual=self.f_actual[i],
                rounds_executed=self.rounds_executed[i],
                last_decision_round=self.last_decision_round[i],
                messages_sent=self.messages_sent[i],
                bits_sent=self.bits_sent[i],
                spec_ok=self.spec_ok[i],
                violations=self.violations[i],
                sim_time=self.sim_time[i],
            )
            for i in range(len(self.scenarios))
        ]

    # -- row form (the legacy one-dict-per-record shape) --------------------

    def to_rows(self) -> list[dict[str, Any]]:
        """Per-record :meth:`RunRecord.to_dict`-shaped dicts."""
        return [record.to_dict() for record in self.to_records()]

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, Any]]) -> "RecordBatch":
        """Rebuild a batch from :meth:`RunRecord.to_dict`-shaped rows."""
        return cls.from_records(RunRecord.from_dict(row) for row in rows)

    # -- chunk payload (wire + columnar JSONL form) -------------------------

    def to_payload(
        self,
        base: Mapping[str, Any] | None = None,
        deltas: Sequence[Mapping[str, Any]] | None = None,
    ) -> dict[str, Any]:
        """One compact chunk payload: shared base scenario + columns.

        ``base`` is the shared base-scenario dict (defaults to the first
        cell's); every cell is stored as its :func:`CellDelta
        <repro.scenarios.scenario.scenario_delta>` against it.  The dict is
        JSON-ready (``json.dumps`` stringifies the int pid keys of the
        decision columns) and pickles compactly across a process pool.

        ``deltas`` short-circuits the per-cell :func:`scenario_delta` pass
        with deltas the caller already holds — the sharded fabric's
        workers receive each cell *as* its delta against ``base``, so
        recomputing them per flush would be pure overhead.  Callers must
        guarantee ``base.with_(**deltas[i]) == scenarios[i]``.
        """
        if deltas is not None:
            if base is None or len(deltas) != len(self.scenarios):
                raise ValueError(
                    "to_payload(deltas=...) needs the matching base dict "
                    "and one delta per batched cell"
                )
            cells = [dict(delta) for delta in deltas]
        else:
            if base is None:
                base = self.scenarios[0].to_dict() if self.scenarios else {}
            base_scenario = Scenario.from_dict(base) if base else None
            cells = [scenario_delta(base_scenario, s) for s in self.scenarios]
        return {
            "base": dict(base),
            "cells": cells,
            "decisions": self.decisions,
            "violations": [list(v) for v in self.violations],
            **{name: getattr(self, name) for name in _PLAIN_COLUMNS},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RecordBatch":
        """Inverse of :meth:`to_payload` (accepts wire and JSON-decoded forms).

        Key normalization makes the two sources converge: pid keys arrive
        as ints off the process-pool wire and as strings out of
        ``json.loads``; both land as ints in the columns.
        """
        batch = cls()
        base = payload["base"]
        base_scenario = Scenario.from_dict(base) if base else None
        batch.scenarios = [
            apply_scenario_delta(base_scenario, delta) for delta in payload["cells"]
        ]
        batch.decisions = [
            {int(pid): v for pid, v in cell.items()} for cell in payload["decisions"]
        ]
        batch.violations = [tuple(v) for v in payload["violations"]]
        for name in _PLAIN_COLUMNS:
            setattr(batch, name, list(payload[name]))
        batch.decision_rounds = [
            {int(pid): int(r) for pid, r in cell.items()}
            for cell in batch.decision_rounds
        ]
        return batch


def _check_batch_columns() -> None:
    """The batch columns must mirror RunRecord's serialized fields exactly."""
    record_fields = set(RunRecord.__dataclass_fields__) - {"raw"}
    assert set(RecordBatch.__slots__) == (record_fields | {"scenarios"}) - {
        "scenario"
    }, "RecordBatch columns out of sync with RunRecord fields"


_check_batch_columns()

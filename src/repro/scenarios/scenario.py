"""The declarative :class:`Scenario` — one JSON-serializable run description.

A scenario names *what* to run (algorithm, system size, fault budget,
adversary, proposal workload, timing model, seed) without touching *how*
it runs; :func:`repro.scenarios.execute.execute` resolves the names
against the registries in :mod:`repro.scenarios.registry` and drives
the algorithm's backend: the extended or classic synchronous engine,
the asynchronous event simulator, or the timed fast-failure-detector
environment.  (Cross-model embeddings from ``repro.simulation`` are
separate, direct-call utilities.)

Scenarios are plain data: they round-trip through JSON (``to_json`` /
``from_json``), compare by value, and are safe to pickle across process
boundaries — which is what lets :class:`repro.scenarios.sweep.SweepRunner`
fan a grid of them out over a process pool.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = [
    "Scenario",
    "scenario_key",
    "scenario_delta",
    "apply_scenario_delta",
    "SCENARIO_FIELDS",
]


@dataclass(frozen=True)
class Scenario:
    """One fully specified consensus run, as data.

    Parameters
    ----------
    algorithm:
        Name in the algorithm registry (``repro.scenarios.ALGORITHMS``).
    n:
        Number of processes (pids ``1..n``).
    t:
        Resilience bound; ``None`` uses the algorithm's default rule
        (``n - 1`` for synchronous algorithms, the majority bound
        ``(n - 1) // 2`` for the ◇S-based asynchronous ones).
    f:
        Crash budget handed to the adversary for this run.
    adversary:
        Name in the adversary registry (crash plan family).
    workload:
        Name in the workload registry (proposal-vector generator), with
        generator keyword arguments in ``workload_params``.
    timing:
        Timing/delay parameters for the continuous-time backends, e.g.
        ``{"delay": "lognormal", "mu": 0.0, "sigma": 0.75}`` for the
        asynchronous simulator or ``{"D": 100.0, "d": 1.0}`` for the
        fast-failure-detector model.  Ignored by the round-based engines.
    seed:
        Root seed; every stochastic component draws from a labelled
        child stream, so a run is a pure function of the scenario.
    max_rounds:
        Round budget override for the synchronous engines.
    params:
        Algorithm-specific extras (e.g. ``{"k": 2}`` for ``truncated-crw``).
    model:
        Optional assertion of the execution model ("extended",
        "classic", "async", "ffd").  ``None`` means "whatever backend the
        algorithm runs on"; a mismatch is rejected at execution time.
    """

    algorithm: str
    n: int
    t: int | None = None
    f: int = 0
    adversary: str = "none"
    workload: str = "distinct-ints"
    workload_params: dict[str, Any] = field(default_factory=dict)
    timing: dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    max_rounds: int | None = None
    params: dict[str, Any] = field(default_factory=dict)
    model: str | None = None

    def __post_init__(self) -> None:
        # Snapshot the dict fields: a frozen Scenario must not change
        # value (or JSONL resume key) when the caller mutates the dicts
        # it passed in.
        for name in ("workload_params", "timing", "params"):
            object.__setattr__(self, name, dict(getattr(self, name)))
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise ConfigurationError("scenario needs an algorithm name")
        for name in ("n", "t", "f", "max_rounds"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, int):
                # Hand-authored JSON with quoted numbers would otherwise
                # surface as a raw TypeError from the comparisons below.
                raise ConfigurationError(
                    f"{name} must be an int, got {type(value).__name__}"
                )
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.f < 0:
            raise ConfigurationError(f"f must be >= 0, got {self.f}")
        if self.t is not None and not 0 <= self.t < self.n:
            raise ConfigurationError(
                f"t must satisfy 0 <= t < n, got t={self.t}, n={self.n}"
            )
        if self.t is not None and self.f > self.t:
            raise ConfigurationError(f"f={self.f} exceeds t={self.t}")
        if not isinstance(self.seed, int):
            raise ConfigurationError("seed must be an int")

    # -- derived -----------------------------------------------------------

    def with_(self, **changes: Any) -> "Scenario":
        """A copy with the given fields replaced (grid-expansion helper)."""
        return replace(self, **changes)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (stable key order, JSON-ready)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown and missing keys are rejected."""
        fields = {f for f in cls.__dataclass_fields__}
        extra = set(data) - fields
        if extra:
            raise ConfigurationError(f"unknown scenario keys: {sorted(extra)}")
        try:
            return cls(**dict(data))
        except TypeError as exc:
            # Missing required keys (e.g. a hand-written file without
            # "algorithm") must surface as the scenario layer's own error,
            # not a raw TypeError that bypasses the curated CLI/resume paths.
            raise ConfigurationError(f"incomplete scenario: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError("scenario JSON must be an object")
        return cls.from_dict(data)


def scenario_key(scenario: Scenario) -> str:
    """Canonical string identity of a scenario (JSONL resume key)."""
    return scenario.to_json()


#: Field names of :class:`Scenario`, in declaration order (delta helpers
#: iterate this instead of rediscovering the dataclass shape per cell).
SCENARIO_FIELDS: tuple[str, ...] = tuple(Scenario.__dataclass_fields__)


def _same_wire_value(a: Any, b: Any) -> bool:
    """Type-exact equality for delta elision.

    Plain ``==`` is too loose for a wire format: ``1 == 1.0 == True`` and
    ``(1, 2) == [1, 2]``, yet the variants serialize (and resume-key)
    differently — eliding such a field would rebuild the cell with the
    *base's* spelling and silently change its canonical key.  A field is
    droppable only when every element matches in concrete type and value.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            _same_wire_value(v, b[k]) for k, v in a.items()
        )
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(_same_wire_value, a, b))
    return a == b


def scenario_delta(base: Scenario | None, cell: Scenario) -> dict[str, Any]:
    """The **CellDelta** wire form of ``cell``: fields differing from ``base``.

    Grid cells differ from a shared base in a handful of fields (typically
    just the seed, sometimes ``f``/``n``/``algorithm``), so shipping one
    base-scenario dict plus per-cell deltas replaces a full scenario dict
    per cell — both across the process-pool boundary and in the columnar
    JSONL lines.  Field values are compared directly on the dataclass (no
    ``asdict`` materialization), with concrete types respected (see
    :func:`_same_wire_value`); ``base=None`` yields the full dict.
    ``apply_scenario_delta`` is the exact inverse.
    """
    if base is None:
        return cell.to_dict()
    delta = {
        name: getattr(cell, name)
        for name in SCENARIO_FIELDS
        if not _same_wire_value(getattr(cell, name), getattr(base, name))
    }
    # Dict-valued fields are snapshotted so a wire/JSONL payload can never
    # alias live scenario state (scalars are immutable already).
    for name in ("workload_params", "timing", "params"):
        if name in delta:
            delta[name] = dict(delta[name])
    return delta


def apply_scenario_delta(
    base: Scenario | None, delta: Mapping[str, Any]
) -> Scenario:
    """Rebuild the scenario a :func:`scenario_delta` described.

    With a ``base``, the delta's fields replace the base's (re-running
    scenario validation through ``with_``); without one the delta must be
    a full scenario dict.
    """
    if base is None:
        return Scenario.from_dict(delta)
    if not delta:
        return base
    unknown = set(delta) - set(SCENARIO_FIELDS)
    if unknown:
        raise ConfigurationError(f"unknown scenario keys: {sorted(unknown)}")
    return base.with_(**delta)

"""Unified scenario API: one declarative entry point over all four stacks.

The three-line quickstart::

    from repro.scenarios import Scenario, execute

    record = execute(Scenario(algorithm="crw", n=8, f=3, adversary="coordinator-killer"))
    assert record.spec_ok and record.last_decision_round == record.f_actual + 1

Any run expressible across ``sync/`` (extended + classic engines),
``asyncsim/`` (◇S event simulation), and ``ffd/`` (timed fast failure
detector) is a :class:`Scenario`; :func:`execute` resolves its names
against the registries and returns a backend-independent
:class:`RunRecord`.  :class:`SweepRunner` runs grids of scenarios
serially or over a process pool with JSONL resume.  (The ``simulation/``
cross-model *embeddings* remain direct calls —
``run_classic_on_extended`` / ``run_extended_on_classic`` — though note
the classic backend here already *is* the extended engine with the
control step suppressed.)

See ``DESIGN.md`` for the layer inventory and extension guide.
"""

from repro.scenarios.execute import EngineLease, delay_model_from, execute, resolved_t
from repro.scenarios.record import RecordBatch, RunRecord, jsonable
from repro.scenarios.registry import (
    ADVERSARIES,
    ALGORITHMS,
    WORKLOADS,
    AdversaryDef,
    AlgorithmDef,
    Registry,
    WorkloadDef,
    register_adversary,
    register_algorithm,
    register_workload,
)
from repro.scenarios.scenario import (
    Scenario,
    apply_scenario_delta,
    scenario_delta,
    scenario_key,
)
from repro.scenarios.sweep import (
    CellSummary,
    SweepRunner,
    expand_grid,
    summarize_record_sources,
    summarize_records,
)

__all__ = [
    "Scenario",
    "scenario_key",
    "scenario_delta",
    "apply_scenario_delta",
    "RunRecord",
    "RecordBatch",
    "jsonable",
    "execute",
    "EngineLease",
    "resolved_t",
    "delay_model_from",
    "Registry",
    "AlgorithmDef",
    "AdversaryDef",
    "WorkloadDef",
    "ALGORITHMS",
    "ADVERSARIES",
    "WORKLOADS",
    "register_algorithm",
    "register_adversary",
    "register_workload",
    "SweepRunner",
    "expand_grid",
    "CellSummary",
    "summarize_records",
    "summarize_record_sources",
]

"""``execute(scenario) -> RunRecord``: one front door over four backends.

The facade resolves the scenario's names against the registries, builds
the proposal workload and crash plan from labelled child RNG streams
(``workload`` / ``adversary`` / ``engine``), dispatches on the
algorithm's backend, and reduces whatever the backend returns to the
normalized :class:`~repro.scenarios.record.RunRecord`.

Determinism contract: the labelled RNG tree makes a record a pure
function of its scenario, and — because child streams depend only on
``(seed, label)``, never on draw order — the synchronous path here is
**byte-identical** to the legacy ``repro.harness.runner.run_once`` for
every ``(algorithm, adversary, seed)`` it could express.  The parity test
in ``tests/scenarios/test_execute.py`` pins that equivalence.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.scenarios.record import RunRecord
from repro.scenarios.registry import ADVERSARIES, ALGORITHMS, WORKLOADS, AlgorithmDef
from repro.scenarios.scenario import Scenario
from repro.util.rng import RandomSource

__all__ = ["execute", "resolved_t", "delay_model_from", "EngineLease"]


class EngineLease:
    """A cache of reusable engines, keyed by non-seed scenario configuration.

    Per-run engine construction — process-table bookkeeping, schedule
    maps, detector/network/context wiring on the asynchronous backend —
    is a fixed cost that seed-dense sweeps pay thousands of times for
    identically shaped runs.  A lease passed to :func:`execute` amortizes
    it: the first run of a configuration builds its engine as usual, and
    every later run with the same key **resets** that engine
    (:meth:`repro.sync.engine.SynchronousEngine.reset` /
    :meth:`repro.asyncsim.runner.AsyncRunner.reset`) instead of
    rebuilding it.

    The key is everything that shapes the engine except the seed: the
    scenario's non-seed fields plus the ``trace``/``batched`` execute
    flags.  Reset is pinned byte-identical to fresh construction
    (``tests/scenarios/test_engine_reuse.py``), so leased and unleased
    runs of any scenario produce the same record.

    Leases are not thread-safe and not meant to cross process
    boundaries; :class:`~repro.scenarios.sweep.SweepRunner` holds one per
    worker chunk (and one for the whole serial pass).  The cache is a
    small LRU (``MAX_ENTRIES``) so a sweep over many configurations
    cannot grow it without bound.
    """

    #: Upper bound on cached engines; least-recently-used beyond this.
    MAX_ENTRIES = 32

    __slots__ = ("_engines",)

    def __init__(self) -> None:
        self._engines: dict[tuple, Any] = {}

    def __len__(self) -> int:
        return len(self._engines)

    @staticmethod
    def key_for(scenario: Scenario, trace: bool, batched: bool | str | None) -> tuple:
        """The cache key: the full non-seed configuration, cheaply hashable.

        ``repr`` flattens the (JSON-typed, possibly nested) dict fields
        instead of ``to_json`` — an order of magnitude cheaper per cell,
        and exact: two scenarios with equal reprs of their sorted items
        are the same configuration.
        """
        return (
            scenario.algorithm,
            scenario.n,
            scenario.t,
            scenario.f,
            scenario.adversary,
            scenario.workload,
            repr(sorted(scenario.workload_params.items())),
            repr(sorted(scenario.timing.items())),
            repr(sorted(scenario.params.items())),
            scenario.max_rounds,
            scenario.model,
            trace,
            batched,
        )

    def get(self, key: tuple) -> Any:
        """The cached engine for ``key`` (refreshing LRU), or None."""
        engine = self._engines.pop(key, None)
        if engine is not None:
            self._engines[key] = engine  # re-insert: most recently used
        return engine

    def put(self, key: tuple, engine: Any) -> None:
        """Cache ``engine`` under ``key``, evicting the oldest past the cap."""
        self._engines[key] = engine
        if len(self._engines) > self.MAX_ENTRIES:
            self._engines.pop(next(iter(self._engines)))


def resolved_t(scenario: Scenario, algo: AlgorithmDef | None = None) -> int:
    """The resilience bound actually used: explicit ``t`` or the default rule."""
    if scenario.t is not None:
        return scenario.t
    algo = algo or ALGORITHMS.get(scenario.algorithm)
    return algo.default_t(scenario.n)


#: Per-delay-model parameter keys accepted in ``Scenario.timing``.
_DELAY_KEYS = {
    "constant": {"value"},
    "uniform": {"lo", "hi"},
    "lognormal": {"mu", "sigma"},
    "gst": {"gst", "wild", "bound"},
}
#: Non-delay timing keys accepted per continuous-time backend.
_TIMING_KEYS = {
    "async": {
        "delay", "stabilization_time", "detection_latency", "churn_rate",
        "false_suspicion_duration", "until", "max_events",
    },
    "ffd": {"D", "d", "delta_min"},
}


def _check_timing_keys(timing: dict[str, Any], backend: str) -> None:
    """Reject typoed/unsupported timing keys instead of silently defaulting."""
    allowed = set(_TIMING_KEYS[backend])
    if backend == "async":
        allowed |= _DELAY_KEYS.get(timing.get("delay"), set())
    unknown = set(timing) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown timing key(s) {sorted(unknown)} for the {backend!r} "
            f"backend; accepted: {sorted(allowed)}"
        )


def delay_model_from(timing: dict[str, Any]):
    """Build the async delay model described by ``timing`` (None = default)."""
    from repro.asyncsim.network import (
        ConstantDelay,
        GstDelay,
        LogNormalDelay,
        UniformDelay,
    )

    name = timing.get("delay")
    if name is None:
        return None
    if name == "constant":
        return ConstantDelay(value=float(timing.get("value", 1.0)))
    if name == "uniform":
        return UniformDelay(
            lo=float(timing.get("lo", 0.5)), hi=float(timing.get("hi", 1.5))
        )
    if name == "lognormal":
        return LogNormalDelay(
            mu=float(timing.get("mu", 0.0)), sigma=float(timing.get("sigma", 0.5))
        )
    if name == "gst":
        return GstDelay(
            gst=float(timing.get("gst", 10.0)),
            wild=float(timing.get("wild", 5.0)),
            bound=float(timing.get("bound", 1.0)),
        )
    raise ConfigurationError(
        f"unknown delay model {name!r}; available: constant, uniform, lognormal, gst"
    )


def _timed_crashes(scenario: Scenario, n: int, t: int, rng: RandomSource):
    adv = ADVERSARIES.get(scenario.adversary)
    if adv.make_timed is None:
        raise ConfigurationError(
            f"adversary {scenario.adversary!r} has no timed crash plan; "
            f"usable on continuous-time backends: "
            f"{[name for name, a in ADVERSARIES.items() if a.make_timed is not None]}"
        )
    return adv.make_timed(n, t, scenario.f, rng)


def execute(
    scenario: Scenario,
    *,
    trace: bool = False,
    batched: bool | str | None = None,
    lease: EngineLease | None = None,
) -> RunRecord:
    """Run one scenario on its backend and return the normalized record.

    ``batched`` is forwarded to the engines (None = auto: the fastest
    eligible stepping mode — with tracing off, the synchronous engines
    prefer a registered vector table, then the list-batched columnar
    table, then per-process stepping.  ``"vector"`` requires the vector
    table, ``True`` the list-batched one, and ``False`` forces
    per-process/per-object stepping — the parity grids compare the
    modes).  The ``ffd`` backend ignores it.

    ``lease`` opts into engine reuse: runs whose non-seed configuration
    matches a previous run through the same :class:`EngineLease` reset
    that run's engine instead of constructing a new one.  Records are
    identical either way; sweeps hold a lease per chunk.
    """
    algo = ALGORITHMS.get(scenario.algorithm)
    if scenario.model is not None and scenario.model != algo.backend:
        raise ConfigurationError(
            f"scenario pins model {scenario.model!r} but algorithm "
            f"{scenario.algorithm!r} runs on the {algo.backend!r} backend"
        )
    n, t = scenario.n, resolved_t(scenario, algo)
    if not 0 <= t < n:
        raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
    if scenario.f > t:
        raise ConfigurationError(f"f={scenario.f} exceeds t={t}")

    rng = RandomSource(scenario.seed)
    workload = WORKLOADS.get(scenario.workload)
    proposals = workload.build(n, rng.spawn("workload"), dict(scenario.workload_params))
    if len(proposals) != n:
        raise ConfigurationError(
            f"workload {scenario.workload!r} produced {len(proposals)} proposals for n={n}"
        )

    if algo.backend in ("extended", "classic"):
        return _execute_sync(scenario, algo, n, t, proposals, rng, trace, batched, lease)
    if algo.backend == "async":
        return _execute_async(scenario, algo, n, t, proposals, rng, batched, lease)
    if algo.backend == "ffd":
        return _execute_ffd(scenario, algo, n, t, proposals, rng)
    raise ConfigurationError(f"unhandled backend {algo.backend!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Round-based backends.
# ---------------------------------------------------------------------------


def _execute_sync(
    scenario: Scenario,
    algo: AlgorithmDef,
    n: int,
    t: int,
    proposals: list[Any],
    rng: RandomSource,
    trace: bool,
    batched: bool | str | None = None,
    lease: EngineLease | None = None,
) -> RunRecord:
    from repro.sync.engine import ClassicSynchronousEngine
    from repro.sync.extended import ExtendedSynchronousEngine
    from repro.sync.spec import check_consensus

    adversary_name = scenario.adversary
    if algo.backend == "classic" and adversary_name == "random":
        adversary_name = "random-classic"  # classic model: no control step
    adv = ADVERSARIES.get(adversary_name)
    if adv.make_sync is None:
        raise ConfigurationError(
            f"adversary {adversary_name!r} has no synchronous crash plan"
        )
    schedule = adv.make_sync(scenario.f).schedule(n, t, rng.spawn("adversary"))
    engine_cls = (
        ExtendedSynchronousEngine if algo.backend == "extended" else ClassicSynchronousEngine
    )
    engine = None
    key: tuple | None = None
    if lease is not None:
        key = EngineLease.key_for(scenario, trace, batched)
        engine = lease.get(key)
    # A leased engine with a refillable batched table takes the run with
    # no process construction at all: the table columns are rewritten in
    # place from the proposals.  Only when that is declined does the
    # n-object factory run (fresh construction or full reset).
    if engine is None or not engine.refill(
        proposals, schedule, rng=rng.spawn("engine"), trace=trace
    ):
        procs = algo.factory(n, t, proposals, dict(scenario.params))
        if engine is None:
            engine = engine_cls(
                procs, schedule, t=t, rng=rng.spawn("engine"), trace=trace,
                batched=batched,
            )
            if lease is not None:
                lease.put(key, engine)
        else:
            engine.reset(
                procs, schedule, rng=rng.spawn("engine"), trace=trace, batched=batched
            )
    result = engine.run(scenario.max_rounds)

    if algo.spec is not None:
        violations = tuple(algo.spec(result))
    else:
        violations = check_consensus(result).violations
    # Straight off the engine's ledgers (identical to the per-outcome
    # derivation but with C-level dict copies instead of an n-wide
    # attribute-reading loop).
    decisions = engine.decisions
    decision_rounds = engine.decision_rounds
    crashed = sorted(engine.crashed_rounds)
    last_decision_round = max(decision_rounds.values(), default=0)
    return RunRecord(
        scenario=scenario,
        backend=algo.backend,
        decisions=decisions,
        decision_rounds=decision_rounds,
        crashed=crashed,
        f_actual=len(crashed),
        rounds_executed=result.rounds_executed,
        last_decision_round=last_decision_round,
        messages_sent=result.stats.messages_sent,
        bits_sent=result.stats.bits_sent,
        spec_ok=not violations,
        violations=violations,
        raw=result,
    )


# ---------------------------------------------------------------------------
# Asynchronous (◇S) backend.
# ---------------------------------------------------------------------------


def _execute_async(
    scenario: Scenario,
    algo: AlgorithmDef,
    n: int,
    t: int,
    proposals: list[Any],
    rng: RandomSource,
    batched: bool | None = None,
    lease: EngineLease | None = None,
) -> RunRecord:
    from repro.asyncsim.failure_detector import DetectorSpec
    from repro.asyncsim.runner import AsyncCrash, AsyncRunner

    if batched == "vector":
        raise ConfigurationError(
            f'batched="vector" is synchronous-only; algorithm '
            f"{scenario.algorithm!r} runs on the async backend"
        )
    timing = dict(scenario.timing)
    _check_timing_keys(timing, "async")
    crashes = [
        AsyncCrash(pid, time)
        for pid, time in _timed_crashes(scenario, n, t, rng.spawn("adversary"))
    ]
    runner = None
    key: tuple | None = None
    if lease is not None:
        key = EngineLease.key_for(scenario, False, batched)
        runner = lease.get(key)
    # Mirror of the synchronous path: a leased runner with a refillable
    # columnar table reruns the configuration without constructing a
    # single process object.
    if runner is None or not runner.refill(
        proposals, crashes=crashes, rng=rng.spawn("engine")
    ):
        procs = algo.factory(n, t, proposals, dict(scenario.params))
        if runner is None:
            detector = DetectorSpec(
                stabilization_time=float(timing.get("stabilization_time", 0.0)),
                detection_latency=float(timing.get("detection_latency", 1.0)),
                churn_rate=float(timing.get("churn_rate", 0.0)),
                false_suspicion_duration=float(
                    timing.get("false_suspicion_duration", 1.0)
                ),
            )
            runner = AsyncRunner(
                procs,
                t=t,
                crashes=crashes,
                delay_model=delay_model_from(timing),
                detector_spec=detector,
                rng=rng.spawn("engine"),
                batched=batched,
            )
            if lease is not None:
                lease.put(key, runner)
        else:
            runner.reset(procs, crashes=crashes, rng=rng.spawn("engine"))
    result = runner.run(
        until=float(timing.get("until", 10_000.0)),
        max_events=int(timing.get("max_events", 2_000_000)),
    )
    violations = tuple(result.check_consensus())
    last_round = max(result.decision_rounds.values(), default=0)
    return RunRecord(
        scenario=scenario,
        backend="async",
        decisions=dict(result.decisions),
        decision_rounds=dict(result.decision_rounds),
        crashed=sorted(result.crashed),
        f_actual=result.f,
        rounds_executed=last_round,
        last_decision_round=last_round,
        messages_sent=result.stats.messages_sent,
        bits_sent=result.stats.bits_sent,
        spec_ok=not violations,
        violations=violations,
        sim_time=result.sim_time,
        raw=result,
    )


# ---------------------------------------------------------------------------
# Fast-failure-detector backend.
# ---------------------------------------------------------------------------


def _execute_ffd(
    scenario: Scenario,
    algo: AlgorithmDef,
    n: int,
    t: int,
    proposals: list[Any],
    rng: RandomSource,
) -> RunRecord:
    from repro.ffd.consensus import run_ffd_consensus
    from repro.ffd.timed import TimedCrash, TimedSpec

    timing = dict(scenario.timing)
    _check_timing_keys(timing, "ffd")
    spec = TimedSpec(
        n=n,
        D=float(timing.get("D", 100.0)),
        d=float(timing.get("d", 1.0)),
        delta_min=float(timing.get("delta_min", 0.3)),
    )
    crashes = [
        TimedCrash(pid, time)
        for pid, time in _timed_crashes(scenario, n, t, rng.spawn("adversary"))
    ]
    result = run_ffd_consensus(spec, proposals, crashes, rng=rng.spawn("engine"))
    violations = tuple(result.check_consensus())
    stats = result.stats
    return RunRecord(
        scenario=scenario,
        backend="ffd",
        decisions=dict(result.decisions),
        decision_rounds={pid: 0 for pid in result.decisions},
        crashed=sorted(result.crashed),
        f_actual=result.f,
        rounds_executed=0,
        last_decision_round=0,
        messages_sent=stats.messages_sent if stats is not None else 0,
        bits_sent=stats.bits_sent if stats is not None else 0,
        spec_ok=not violations,
        violations=violations,
        sim_time=result.sim_time,
        raw=result,
    )

"""Unified registries: algorithms, adversaries, and proposal workloads.

This module is the single naming authority the scenario layer resolves
against.  It absorbs the legacy ``harness.runner.ALGORITHMS`` and
``workloads.crashes.ADVERSARIES`` tables and extends coverage to every
algorithm shipped in the repository, across all four execution backends:

========== =========================================================
backend     algorithms
========== =========================================================
extended    ``crw``, ``eager-crw``, ``truncated-crw``,
            ``increasing-commit-crw``, ``full-broadcast-crw``
classic     ``floodset``, ``early-stopping``,
            ``interactive-consistency``, ``ic-consensus``
async       ``mr99``, ``chandra-toueg``
ffd         ``ffd``
========== =========================================================

Registration is explicit and duplicate-safe: :func:`register_algorithm`,
:func:`register_adversary`, and :func:`register_workload` raise
:class:`~repro.errors.ConfigurationError` on name collisions unless
``replace=True`` is passed, and lookups of unknown names raise with the
list of available names.  Entries registered at import time here are what
worker processes of a sweep see; user extensions must be registered at
module import time to be visible across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, Iterator, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.util.rng import RandomSource

__all__ = [
    "Registry",
    "AlgorithmDef",
    "AdversaryDef",
    "WorkloadDef",
    "ALGORITHMS",
    "ADVERSARIES",
    "WORKLOADS",
    "register_algorithm",
    "register_adversary",
    "register_workload",
]

T = TypeVar("T")

#: Execution backends a registered algorithm may target.
BACKENDS = ("extended", "classic", "async", "ffd")


class Registry(Generic[T]):
    """A named table with duplicate rejection and helpful unknown-name errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, value: T, *, replace: bool = False) -> T:
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not replace:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered (pass replace=True to override)"
            )
        self._entries[name] = value
        return value

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {sorted(self._entries)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def items(self) -> list[tuple[str, T]]:
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Entry shapes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AlgorithmDef:
    """How to instantiate one consensus algorithm on its backend.

    ``factory(n, t, proposals, params)`` builds the process list for the
    round-based and asynchronous backends (the ``ffd`` backend wires its
    own processes inside :func:`repro.ffd.consensus.run_ffd_consensus`).
    ``spec`` optionally overrides the default uniform-consensus check for
    algorithms whose decision values are not proposals (interactive
    consistency decides vectors).
    """

    name: str
    backend: str
    factory: Callable[[int, int, Sequence[Any], dict[str, Any]], list[Any]] | None
    round_bound: Callable[[int, int], int] | None = None
    default_t: Callable[[int], int] = lambda n: n - 1
    spec: Callable[[Any], list[str]] | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"algorithm {self.name!r}: backend must be one of {BACKENDS}, "
                f"got {self.backend!r}"
            )


@dataclass(frozen=True)
class AdversaryDef:
    """A named crash-plan family, per backend.

    ``make_sync(f)`` yields a :class:`repro.sync.adversary.Adversary` for
    the round-based engines; ``make_timed(n, t, f, rng)`` yields
    ``(pid, time)`` crash instants for the continuous-time backends.  An
    adversary may support either or both; using one on an unsupported
    backend is a configuration error.
    """

    name: str
    make_sync: Callable[[int], Any] | None = None
    make_timed: Callable[[int, int, int, RandomSource], list[tuple[int, float]]] | None = None
    description: str = ""


@dataclass(frozen=True)
class WorkloadDef:
    """A named proposal-vector generator: ``build(n, rng, params)``."""

    name: str
    build: Callable[[int, RandomSource, dict[str, Any]], list[Any]]
    description: str = ""


ALGORITHMS: Registry[AlgorithmDef] = Registry("algorithm")
ADVERSARIES: Registry[AdversaryDef] = Registry("adversary")
WORKLOADS: Registry[WorkloadDef] = Registry("workload")


def register_algorithm(algo: AlgorithmDef, *, replace: bool = False) -> AlgorithmDef:
    """Register ``algo`` under ``algo.name``; rejects duplicates."""
    return ALGORITHMS.register(algo.name, algo, replace=replace)


def register_adversary(adv: AdversaryDef, *, replace: bool = False) -> AdversaryDef:
    """Register ``adv`` under ``adv.name``; rejects duplicates."""
    return ADVERSARIES.register(adv.name, adv, replace=replace)


def register_workload(wl: WorkloadDef, *, replace: bool = False) -> WorkloadDef:
    """Register ``wl`` under ``wl.name``; rejects duplicates."""
    return WORKLOADS.register(wl.name, wl, replace=replace)


# ---------------------------------------------------------------------------
# Built-in algorithms.
# ---------------------------------------------------------------------------


def _register_builtin_algorithms() -> None:
    from repro.asyncsim.chandra_toueg import ChandraTouegConsensus
    from repro.asyncsim.mr99 import MR99Consensus
    from repro.baselines.early_stopping import EarlyStoppingConsensus
    from repro.baselines.floodset import FloodSetConsensus
    from repro.baselines.interactive_consistency import (
        ICConsensus,
        InteractiveConsistency,
        check_interactive_consistency,
    )
    from repro.core.crw import CRWConsensus
    from repro.core.variants import (
        EagerCRW,
        FullBroadcastCRW,
        IncreasingCommitCRW,
        TruncatedCRW,
    )

    majority_t = lambda n: max(0, (n - 1) // 2)  # noqa: E731

    def crw_like(cls):
        return lambda n, t, props, params: [
            cls(pid, n, props[pid - 1]) for pid in range(1, n + 1)
        ]

    def classic_with_t(cls):
        return lambda n, t, props, params: [
            cls(pid, n, props[pid - 1], t) for pid in range(1, n + 1)
        ]

    register_algorithm(AlgorithmDef(
        name="crw",
        backend="extended",
        factory=crw_like(CRWConsensus),
        round_bound=lambda f, t: f + 1,
        description="the paper's Figure-1 algorithm (f+1 rounds, extended model)",
    ))
    register_algorithm(AlgorithmDef(
        name="eager-crw",
        backend="extended",
        factory=crw_like(EagerCRW),
        round_bound=lambda f, t: f + 1,
        description="ablation: decides on DATA alone (agreement breaks under crashes)",
    ))
    register_algorithm(AlgorithmDef(
        name="truncated-crw",
        backend="extended",
        factory=lambda n, t, props, params: [
            TruncatedCRW(pid, n, props[pid - 1], k=int(params.get("k", t)))
            for pid in range(1, n + 1)
        ],
        round_bound=lambda f, t: t,  # the (impossible) deadline it enforces
        description="ablation: force-decides at round k (params: k, default t)",
    ))
    register_algorithm(AlgorithmDef(
        name="increasing-commit-crw",
        backend="extended",
        factory=crw_like(IncreasingCommitCRW),
        description="ablation: COMMIT order reversed (safe, loses the f+1 bound)",
    ))
    register_algorithm(AlgorithmDef(
        name="full-broadcast-crw",
        backend="extended",
        factory=crw_like(FullBroadcastCRW),
        round_bound=lambda f, t: f + 1,
        description="ablation: coordinator broadcasts to everyone (extra traffic)",
    ))
    register_algorithm(AlgorithmDef(
        name="floodset",
        backend="classic",
        factory=classic_with_t(FloodSetConsensus),
        round_bound=lambda f, t: t + 1,
        description="textbook flooding consensus (t+1 rounds, classic model)",
    ))
    register_algorithm(AlgorithmDef(
        name="early-stopping",
        backend="classic",
        factory=classic_with_t(EarlyStoppingConsensus),
        round_bound=lambda f, t: min(f + 2, t + 1),
        description="early-stopping classic consensus (min(f+2, t+1) rounds)",
    ))
    register_algorithm(AlgorithmDef(
        name="interactive-consistency",
        backend="classic",
        factory=classic_with_t(InteractiveConsistency),
        round_bound=lambda f, t: t + 1,
        spec=lambda result: check_interactive_consistency(result),
        description="flooding IC: agree on the full proposal vector (t+1 rounds)",
    ))
    register_algorithm(AlgorithmDef(
        name="ic-consensus",
        backend="classic",
        factory=classic_with_t(ICConsensus),
        round_bound=lambda f, t: t + 1,
        description="the IC -> consensus reduction (decide the minimum entry)",
    ))
    register_algorithm(AlgorithmDef(
        name="mr99",
        backend="async",
        factory=classic_with_t(MR99Consensus),
        default_t=majority_t,
        description="Mostefaoui-Raynal ◇S consensus (async, t < n/2)",
    ))
    register_algorithm(AlgorithmDef(
        name="chandra-toueg",
        backend="async",
        factory=classic_with_t(ChandraTouegConsensus),
        default_t=majority_t,
        description="Chandra-Toueg ◇S consensus (async, t < n/2)",
    ))
    register_algorithm(AlgorithmDef(
        name="ffd",
        backend="ffd",
        factory=None,
        default_t=lambda n: n - 1,
        description="fast-failure-detector consensus, decides by D + f*d (ALT02)",
    ))


# ---------------------------------------------------------------------------
# Built-in adversaries.
# ---------------------------------------------------------------------------


def _initial_crashes(n: int, t: int, f: int, rng: RandomSource) -> list[tuple[int, float]]:
    """Crash the first ``f`` rotating coordinators at time 0."""
    return [(pid, 0.0) for pid in range(1, min(f, n) + 1)]


def _staggered_crashes(n: int, t: int, f: int, rng: RandomSource) -> list[tuple[int, float]]:
    """Crash the ``f`` highest pids (never early coordinators), spread in time."""
    return [(n - i, float(i)) for i in range(min(f, n))]


def _random_crashes(n: int, t: int, f: int, rng: RandomSource) -> list[tuple[int, float]]:
    pids = rng.sample(range(1, n + 1), min(f, n))
    return [(pid, rng.uniform(0.0, 5.0)) for pid in pids]


def _register_builtin_adversaries() -> None:
    from repro.workloads.crashes import ADVERSARIES as LEGACY_SYNC

    timed = {
        "none": lambda n, t, f, rng: [],
        "coordinator-killer": _initial_crashes,
        "staggered": _staggered_crashes,
        "random": _random_crashes,
    }
    descriptions = {
        "none": "failure-free",
        "coordinator-killer": "crashes each rotating coordinator mid-control-step",
        "coordinator-killer-subset": "cascade delivering to a random subset",
        "commit-splitter": "splits the COMMIT prefix at the worst position",
        "max-traffic": "cascade maximising retransmission traffic",
        "staggered": "crashes processes that are never coordinators",
        "random": "random pids, points, and prefixes",
        "random-classic": "random crashes restricted to classic crash points",
    }
    for name, ctor in LEGACY_SYNC.items():
        register_adversary(AdversaryDef(
            name=name,
            make_sync=ctor,
            make_timed=timed.get(name),
            description=descriptions.get(name, ""),
        ))


# ---------------------------------------------------------------------------
# Built-in workloads.
# ---------------------------------------------------------------------------


def _register_builtin_workloads() -> None:
    from repro.workloads import proposals as P

    register_workload(WorkloadDef(
        name="distinct-ints",
        build=lambda n, rng, params: P.distinct_ints(n, base=int(params.get("base", 100))),
        description="everyone proposes a distinct int (base+pid)",
    ))
    register_workload(WorkloadDef(
        name="sized",
        build=lambda n, rng, params: P.sized_proposals(
            n, bits=int(params.get("bits", 64)), base=int(params.get("base", 100))
        ),
        description="distinct values with a declared wire width (params: bits)",
    ))
    register_workload(WorkloadDef(
        name="identical",
        build=lambda n, rng, params: P.identical(n, value=params.get("value", 7)),
        description="everyone proposes the same value",
    ))
    register_workload(WorkloadDef(
        name="binary",
        build=lambda n, rng, params: P.binary_vector(
            n, rng, p_one=float(params.get("p_one", 0.5))
        ),
        description="random 0/1 proposals (params: p_one)",
    ))
    register_workload(WorkloadDef(
        name="skewed",
        build=lambda n, rng, params: P.skewed(
            n, rng, alphabet=int(params.get("alphabet", 3))
        ),
        description="small-alphabet random proposals (params: alphabet)",
    ))


_register_builtin_algorithms()
_register_builtin_adversaries()
_register_builtin_workloads()

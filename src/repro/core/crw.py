"""The paper's uniform consensus algorithm (Figure 1).

``CRWConsensus`` (Cao–Raynal–Wang–Wu) is a rotating-coordinator algorithm
for the **extended** synchronous model.  Pseudo-code for process ``p_i``
with proposal ``v_i`` (paper, Figure 1)::

    est := v_i
    when r = 1, 2, ... do
        case r = i:   for j in i+1..n:        send DATA(est) to p_j
                      for j in n, n-1, .., i+1: send COMMIT to p_j   # ordered!
                      return est                                     # decide
        case r < i:   if DATA(v) received from p_r:  est := v
                      if COMMIT received from p_r:   return est      # decide
        case r > i:   cannot happen

Key facts the implementation mirrors:

* **Round ``r`` is coordinated by ``p_r``.**  Since each coordinator either
  decides at its own round or crashes, a process never observes a round
  greater than its own id (the ``cannot happen`` branch raises).
* **COMMIT destinations are in decreasing id order** (``p_n`` first).  On a
  crash during the control step an ordered *prefix* is delivered, i.e. a
  contiguous *top* range of ids — exactly what Lemma 3's case 1 needs so
  that if the first correct process ``p_{f+1}`` decided early, every higher
  id decided with it.
* **COMMIT means "line 4 completed"**: the engine only enters the control
  step after the full data step, so receiving COMMIT implies every live
  process received DATA this round and the value is *locked* (Lemma 2).
* The coordinator decides in its round's computation phase, which is
  observably identical to the paper's decide-right-after-sending: a crash
  point of ``AFTER_SEND`` delivers everything but suppresses the decision,
  matching "crashes just after line 5".

Properties (Theorems 1 and 2): uniform consensus, decision by round
``f + 1`` where ``f`` is the number of crashes in the run, one round when
``p_1`` survives round 1, bit complexity between ``(n-1)(|v|+1)`` and
``Σ_{r=1..t+1} (n-r)(|v|+1)`` bits.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Mapping, Sequence

from repro.errors import ModelViolationError
from repro.sync.api import (
    EMPTY_INBOX,
    NO_SEND,
    BatchedAlgorithm,
    RoundInbox,
    SendPlan,
    SyncProcess,
    VectorAlgorithm,
    VectorSend,
    register_batched_table,
    register_vector_table,
)
from repro.util.columns import all_int64, int_column, put
from repro.util.tables import refill_column

__all__ = ["CRWConsensus", "CRWTable", "CRWVectorTable"]

#: Missing-payload sentinel for the table's single-lookup inbox reads.
_MISS = object()


class CRWConsensus(SyncProcess):
    """Process of the paper's Figure-1 algorithm (extended model only)."""

    __slots__ = ("proposal", "est")

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n)
        self.proposal = proposal
        self.est: Any = proposal  # the paper's est_i, initialised to v_i

    # -- round hooks --------------------------------------------------------

    def send_phase(self, round_no: int) -> SendPlan:
        if round_no > self.pid:
            raise ModelViolationError(
                f"p{self.pid} reached round {round_no} > own id; "
                "coordinators decide or crash at their own round (Figure 1: 'cannot happen')"
            )
        if round_no < self.pid:
            return NO_SEND
        # Coordinator: line 4 (DATA to higher ids) then line 5 (COMMIT in
        # decreasing id order).  The engine sends control strictly after all
        # data, and applies prefix-truncation on a control-step crash.
        higher = range(self.pid + 1, self.n + 1)
        return SendPlan(
            data={j: self.est for j in higher},
            control=tuple(range(self.n, self.pid, -1)),
        )

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        if round_no == self.pid:
            # Line 6: the coordinator decides its own estimate.  Reaching the
            # computation phase means the whole send phase completed.
            self.decide(self.est)
            return
        # round_no < self.pid: wait for the round's coordinator p_r.
        coord = round_no
        if coord in inbox.data:  # line 7: adopt the coordinator's estimate
            self.est = inbox.data[coord]
        if coord in inbox.control:  # line 8: value is locked -> decide
            if coord not in inbox.data:
                # COMMIT follows a *completed* data step over reliable
                # channels, so DATA must have arrived with it; anything else
                # is an engine bug worth failing loudly on.
                raise ModelViolationError(
                    f"p{self.pid}: COMMIT from p{coord} without its DATA in round {round_no}"
                )
            self.decide(self.est)


@register_batched_table(CRWConsensus)
class CRWTable(BatchedAlgorithm):
    """Columnar Figure-1 table: every ``est`` in one pid-indexed list.

    Round ``r`` of the algorithm touches one coordinator plan and, per
    receiver, two inbox membership tests and at most one adoption — none
    of which needs a per-process method dispatch.  The table mirrors
    :class:`CRWConsensus` hook for hook (same plans, same adoptions, same
    model-violation errors), which the batched parity grid pins.
    """

    __slots__ = ("n", "est")

    def __init__(self, n: int, est: list[Any]) -> None:
        self.n = n
        self.est = est  # pid-indexed (slot 0 unused)

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "CRWTable":
        est: list[Any] = [None] * (processes[0].n + 1)
        for p in processes:
            est[p.pid] = p.est
        return cls(processes[0].n, est)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        # A fresh Figure-1 process is just est = proposal; the est column
        # is the table's only run-varying state (ablation subclasses reuse
        # this — their extra behaviour lives in the hooks, not in state).
        refill_column(self.est, proposals, offset=1)
        return True

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        if active and active[0] < round_no:
            # Mirrors the per-process guard, raised for the same (lowest
            # active) pid the per-process loop would have reached first.
            raise ModelViolationError(
                f"p{active[0]} reached round {round_no} > own id; "
                "coordinators decide or crash at their own round (Figure 1: 'cannot happen')"
            )
        plans = dict.fromkeys(active, NO_SEND)
        if round_no in plans:
            plans[round_no] = SendPlan(
                data=dict.fromkeys(
                    range(round_no + 1, self.n + 1), self.est[round_no]
                ),
                control=tuple(range(self.n, round_no, -1)),
            )
        return plans

    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        est = self.est
        decisions: dict[int, Any] = {}
        for pid, inbox in inboxes.items():
            if inbox is EMPTY_INBOX:
                # An empty inbox only matters to the coordinator (line 6:
                # it decides its own estimate regardless of receipt).
                if pid == round_no:
                    decisions[pid] = est[pid]
                continue
            if pid == round_no:
                decisions[pid] = est[pid]  # line 6: coordinator decides
                continue
            value = inbox.data.get(round_no, _MISS)
            if value is not _MISS:  # line 7: adopt the coordinator's estimate
                est[pid] = value
                if round_no in inbox.control:  # line 8: locked -> decide
                    decisions[pid] = value
            elif round_no in inbox.control:
                raise ModelViolationError(
                    f"p{pid}: COMMIT from p{round_no} without its DATA in round {round_no}"
                )
        return decisions


@register_vector_table(CRWConsensus)
class CRWVectorTable(VectorAlgorithm):
    """Array-columnar Figure-1 table: ``est`` as one int64 column.

    Round ``r`` is a single coordinator send — one :data:`VectorSend`
    with contiguous ``range`` destinations — and, crash-free, a closed
    form: every receiver above the coordinator adopts and decides the
    coordinator's value (one column write + one ``dict.fromkeys``).
    Crash rounds fall back to set arithmetic over the truncated
    destination subsets, still without per-pid plan or inbox objects.
    Subclassed by the ablation variants' vector tables.
    """

    __slots__ = ("n", "est")

    def __init__(self, n: int, est: Any) -> None:
        self.n = n
        self.est = est  # pid-indexed int64 column (slot 0 unused)

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "CRWVectorTable | None":
        values = [p.est for p in processes]
        if not all_int64(values):
            return None  # non-int payloads: step list-batched instead
        est = int_column([0] * (processes[0].n + 1))
        for p in processes:
            est[p.pid] = p.est
        return cls(processes[0].n, est)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        if not all_int64(proposals):
            return False  # fall back to factory + reset (mode re-detected)
        refill_column(self.est, proposals, offset=1)
        return True

    def send_phase_vector(self, round_no: int, active: Sequence[int]) -> list[VectorSend]:
        if active and active[0] < round_no:
            # Mirrors the per-process guard, raised for the same (lowest
            # active) pid the per-process loop would have reached first.
            raise ModelViolationError(
                f"p{active[0]} reached round {round_no} > own id; "
                "coordinators decide or crash at their own round (Figure 1: 'cannot happen')"
            )
        if not active or active[0] != round_no:
            return []  # coordinator already crashed; everyone else is silent
        data = range(round_no + 1, self.n + 1)
        control = range(self.n, round_no, -1)
        if not data:  # p_n's round: nobody above it to tell
            return []
        return [(round_no, data, int(self.est[round_no]), control)]

    def compute_phase_vector(
        self,
        round_no: int,
        receivers: set[int],
        receiver_order: list[int],
        sends: list[VectorSend],
        crash_free: bool,
    ) -> dict[int, Any]:
        est = self.est
        decisions: dict[int, Any] = {}
        coord_alive = round_no in receivers
        if not sends:
            # Nothing escaped (dead coordinator, or p_n's empty round).
            if coord_alive:
                decisions[round_no] = int(est[round_no])  # line 6
            return decisions
        _sender, dests, value, control = sends[0]
        if crash_free:
            # Uniform round: every receiver above the coordinator got
            # DATA + COMMIT -> adopts and decides (lines 7-8); the
            # coordinator decides its own estimate (line 6).
            if coord_alive:
                decisions[round_no] = value
            followers = receiver_order[bisect_right(receiver_order, round_no):]
            put(est, followers, value)
            decisions.update(dict.fromkeys(followers, value))
            return decisions
        # Crash round: intersect the (possibly truncated) destination
        # subsets with the survivors.  Bounded by f rounds per run.
        got_data = receivers.intersection(dests)
        got_control = receivers.intersection(control)
        orphaned = got_control - got_data
        if orphaned:
            pid = min(orphaned)
            raise ModelViolationError(
                f"p{pid}: COMMIT from p{round_no} without its DATA in round {round_no}"
            )
        if coord_alive:
            decisions[round_no] = value
        if got_data:
            put(est, sorted(got_data), value)  # line 7 for every DATA receiver
        for pid in sorted(got_control):  # line 8: locked -> decide
            decisions[pid] = value
        return decisions

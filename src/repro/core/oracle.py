"""A closed-form oracle for Figure-1 runs — the engine's independent double.

Given a *resolved* crash schedule (explicit subsets and prefixes), the
behaviour of the paper's algorithm is a simple deterministic recurrence —
no simulation needed:

* round ``r`` is coordinated by ``p_r`` if ``p_r`` is still active;
* if the coordinator completes its data step, every active process with a
  higher id adopts its estimate; with a partial subset, only the subset
  adopts;
* commits delivered = a prefix of ``(p_n, …, p_{r+1})``; every active
  recipient decides, and a surviving coordinator decides too;
* crashed processes leave the game at their crash round.

:func:`predict` runs that recurrence and returns per-process decisions,
decision rounds, and exact message counts.  Its value is **differential
testing**: the oracle and the engine implement the same semantics twice,
from independent starting points (an event pipeline vs a recurrence), so
agreement over randomized schedules is strong evidence both are right —
the reproduction's analogue of testing against the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sync.crash import CrashEvent, CrashPoint, CrashSchedule

__all__ = ["OraclePrediction", "predict"]


@dataclass(frozen=True, slots=True)
class OraclePrediction:
    """What a Figure-1 run must look like."""

    decisions: dict[int, Any]
    decision_rounds: dict[int, int]
    crashed_rounds: dict[int, int]
    rounds_executed: int
    data_sent: int
    control_sent: int
    completed: bool


def _resolved_choices(
    event: CrashEvent, planned_data: list[int], planned_control: list[int]
) -> tuple[set[int], int]:
    """Explicit (subset, prefix) of a crash event against a plan."""
    if event.point is CrashPoint.BEFORE_SEND:
        return set(), 0
    if event.point is CrashPoint.DURING_DATA:
        if event.data_subset is None:
            raise ConfigurationError(
                "oracle needs explicit data subsets (no rng at prediction time)"
            )
        return set(event.data_subset) & set(planned_data), 0
    if event.point is CrashPoint.DURING_CONTROL:
        if event.control_prefix is None:
            raise ConfigurationError("oracle needs explicit control prefixes")
        return set(planned_data), min(event.control_prefix, len(planned_control))
    return set(planned_data), len(planned_control)  # AFTER_SEND


def predict(
    n: int,
    proposals: Sequence[Any],
    schedule: CrashSchedule,
    *,
    max_rounds: int | None = None,
) -> OraclePrediction:
    """Predict the run of ``CRWConsensus`` under ``schedule`` exactly."""
    if len(proposals) != n:
        raise ConfigurationError(f"need {n} proposals, got {len(proposals)}")
    est: dict[int, Any] = {pid: proposals[pid - 1] for pid in range(1, n + 1)}
    active = set(range(1, n + 1))
    decisions: dict[int, Any] = {}
    decision_rounds: dict[int, int] = {}
    crashed_rounds: dict[int, int] = {}
    data_sent = 0
    control_sent = 0
    budget = (n + 1) if max_rounds is None else max_rounds

    rounds = 0
    while active and rounds < budget:
        r = rounds + 1
        rounds = r
        coord = r
        # Who crashes this round (only active processes can).
        crash_events = {
            ev.pid: ev for ev in schedule.crashes_in_round(r) if ev.pid in active
        }

        # Only the coordinator sends anything in a Figure-1 round.
        if coord in active and coord <= n:
            planned_data = list(range(coord + 1, n + 1))
            planned_control = list(range(n, coord, -1))
            ev = crash_events.get(coord)
            if ev is None:
                delivered_data = set(planned_data)
                prefix = len(planned_control)
                coordinator_survives = True
            else:
                delivered_data, prefix = _resolved_choices(
                    ev, planned_data, planned_control
                )
                coordinator_survives = False
            data_sent += len(delivered_data)
            delivered_control = planned_control[:prefix]
            control_sent += len(delivered_control)

            receivers = active - set(crash_events)  # crashing procs receive nothing
            for dest in sorted(delivered_data):
                if dest in receivers:
                    est[dest] = est[coord]
            for dest in delivered_control:
                if dest in receivers and dest not in decisions:
                    decisions[dest] = est[dest]
                    decision_rounds[dest] = r
            if coordinator_survives and coord not in crash_events:
                decisions[coord] = est[coord]
                decision_rounds[coord] = r

        # Apply the round's crashes (coordinator or not).
        for pid in crash_events:
            crashed_rounds[pid] = r
            active.discard(pid)
        for pid in list(active):
            if pid in decisions:
                active.discard(pid)

    return OraclePrediction(
        decisions=decisions,
        decision_rounds=decision_rounds,
        crashed_rounds=crashed_rounds,
        rounds_executed=rounds,
        data_sent=data_sent,
        control_sent=control_sent,
        completed=not active,
    )

"""Value-locking analysis (the paper's Lemma 2 made executable).

Lemma 2's engine is *claim C1*: there is a first round ``r0 <= t+1`` whose
coordinator executes its entire data step (line 4); from the end of ``r0``
every estimate in the system equals the coordinator's value — the value is
**locked** — and only that value can ever be decided.

:func:`analyze_locking` recomputes ``r0`` and the locked value from a run's
trace and checks every decision against it.  Tests run it over adversarial
schedules to certify the locking invariant, and the E4 experiment uses it
to explain *where* broken variants go wrong (they decide before any value
is locked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError
from repro.sync.crash import CrashPoint
from repro.sync.result import RunResult

__all__ = ["LockReport", "analyze_locking"]

#: Crash points that still complete the whole data step (line 4).
_DATA_COMPLETE_POINTS = frozenset(
    {CrashPoint.DURING_CONTROL.value, CrashPoint.AFTER_SEND.value}
)


@dataclass(frozen=True, slots=True)
class LockReport:
    """Outcome of the locking analysis for one run."""

    locking_round: int | None  # r0, or None if no coordinator ever completed line 4
    locked_value: Any  # the locked estimate (None when locking_round is None)
    decisions_consistent: bool  # every decision equals the locked value
    conflicting: tuple[int, ...]  # pids whose decision differs from the lock


def _coordinator_active_at(result: RunResult, pid: int, round_no: int) -> bool:
    """Was ``pid`` still running (not crashed, not decided) entering ``round_no``?"""
    o = result.outcomes[pid]
    if o.crashed and o.crashed_round < round_no:
        return False
    if o.decided and o.decided_round < round_no:
        return False
    return True


def analyze_locking(result: RunResult) -> LockReport:
    """Recompute the locking round ``r0`` and audit decisions against it.

    Requires the run to have been executed with tracing enabled (the
    default); raises :class:`~repro.errors.ConfigurationError` otherwise,
    because without a trace the data-step completion of a crashing
    coordinator cannot be reconstructed.
    """
    if not result.trace.enabled:
        raise ConfigurationError("locking analysis needs a run with tracing enabled")

    locking_round: int | None = None
    locked_value: Any = None

    for r in range(1, result.rounds_executed + 1):
        coord = r
        if coord > result.n:
            break
        if not _coordinator_active_at(result, coord, r):
            continue
        crash_events = result.trace.events(kind="crash", pid=coord, round_no=r)
        if crash_events:
            point = crash_events[0].get("point")
            if point not in _DATA_COMPLETE_POINTS:
                continue  # died inside (or before) the data step: line 4 incomplete
        # Coordinator completed line 4 in round r.
        locking_round = r
        # Recover the locked value: any DATA it delivered this round, or —
        # when it addressed nobody (coord == n) or every receiver was gone —
        # its own decision (a coordinator deciding at line 6 decides est).
        delivered = result.trace.events(kind="deliver.data", pid=coord, round_no=r)
        if delivered:
            locked_value = delivered[0].get("payload")
        elif result.outcomes[coord].decided:
            locked_value = result.outcomes[coord].decision
        else:
            # Completed data step with no surviving witnesses and no own
            # decision (AFTER_SEND crash with nobody to talk to): the locked
            # value is the coordinator's estimate, which equals what it
            # attempted to send; recover it from drop events.
            drops = result.trace.events(kind="drop.data", pid=coord, round_no=r)
            locked_value = drops[0].get("payload") if drops else None
        break

    if locking_round is None:
        return LockReport(None, None, True, ())

    conflicting = tuple(
        pid
        for pid, value in sorted(result.decisions.items())
        if value != locked_value
    )
    return LockReport(
        locking_round=locking_round,
        locked_value=locked_value,
        decisions_consistent=not conflicting,
        conflicting=conflicting,
    )

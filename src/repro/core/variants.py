"""Deliberately modified variants of the paper's algorithm.

These exist to make the *limit* half of the paper executable:

* :class:`EagerCRW` — decides on DATA alone, without waiting for COMMIT
  (drops the paper's line-8 guard).  A crash during the coordinator's data
  step then produces split brains: the sub-round the COMMIT step closes is
  exactly what eagerness gives up.  The lower-bound explorer finds uniform
  (indeed plain) agreement violations.
* :class:`TruncatedCRW` — behaves like the real algorithm but force-decides
  its current estimate at the end of round ``k``.  For ``k <= t`` this is
  "an algorithm that always decides within ``t`` rounds", the object
  Theorem 3 proves cannot exist; the explorer exhibits its bad runs.
* :class:`IncreasingCommitCRW` — identical to the real algorithm except the
  COMMIT sequence runs in *increasing* id order.  Safety survives (the
  value is still locked by a completed data step) but Lemma 3's case-1
  argument collapses: a prefix now covers a *bottom* id range, and runs
  exist where the last decision lands **after** round ``f + 1``.  This is
  the ablation showing the sending *order* carries real power, not just the
  extra message.
* :class:`SilentProcess` — proposes and never sends or decides; used to
  validate that the spec checker reports termination violations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Mapping, Sequence

from repro.core.crw import CRWConsensus, CRWTable, CRWVectorTable
from repro.sync.api import (
    EMPTY_INBOX,
    NO_SEND,
    BatchedAlgorithm,
    RoundInbox,
    SendPlan,
    SyncProcess,
    VectorAlgorithm,
    VectorSend,
    register_batched_table,
    register_vector_table,
)
from repro.util.columns import all_int64, int_column, put
from repro.util.tables import refill_column

__all__ = ["EagerCRW", "TruncatedCRW", "IncreasingCommitCRW", "FullBroadcastCRW", "SilentProcess"]


class EagerCRW(CRWConsensus):
    """Figure 1 without the COMMIT wait: decides as soon as DATA arrives.

    Still *sends* COMMITs as coordinator (they are simply never needed by
    receivers), so its message pattern matches the real algorithm and the
    only delta is the removed guard — a one-line ablation.
    """

    __slots__ = ()

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        if round_no == self.pid:
            self.decide(self.est)
            return
        coord = round_no
        if coord in inbox.data:
            self.est = inbox.data[coord]
            self.decide(self.est)  # eager: no COMMIT check


class TruncatedCRW(CRWConsensus):
    """Figure 1 with a hard decision deadline at round ``k``.

    Models "a (hypothetical) algorithm that always decides by round ``k``".
    Theorem 3 says no correct such algorithm exists for ``k <= t``; the
    explorer demonstrates it on this one.
    """

    __slots__ = ("k",)

    def __init__(self, pid: int, n: int, proposal: Any, k: int) -> None:
        super().__init__(pid, n, proposal)
        self.k = k

    def send_phase(self, round_no: int) -> SendPlan:
        # Reuse the real protocol's sends while the deadline has not passed;
        # the base class guard (round > pid cannot happen) must be bypassed
        # because truncation lets non-decided processes outlive their own
        # coordinator round only when k < pid.
        if round_no < self.pid:
            return NO_SEND
        if round_no == self.pid:
            return SendPlan(
                data={j: self.est for j in range(self.pid + 1, self.n + 1)},
                control=tuple(range(self.n, self.pid, -1)),
            )
        return NO_SEND

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        coord = round_no
        if round_no == self.pid:
            self.decide(self.est)
            return
        if coord in inbox.data:
            self.est = inbox.data[coord]
        if coord in inbox.control:
            self.decide(self.est)
            return
        if round_no >= self.k:
            # Deadline: decide whatever we currently estimate.
            self.decide(self.est)


class IncreasingCommitCRW(CRWConsensus):
    """Figure 1 with the COMMIT sequence in increasing id order.

    The delivered prefix of a crashing coordinator then covers the *lowest*
    ids after the coordinator instead of the highest, so an early decider
    no longer implies that every higher id decided too — and the ``f + 1``
    early-stopping bound breaks (uniform agreement is unaffected).
    """

    __slots__ = ()

    def send_phase(self, round_no: int) -> SendPlan:
        plan = super().send_phase(round_no)
        if plan.control:
            return SendPlan(data=plan.data, control=tuple(sorted(plan.control)))
        return plan


class FullBroadcastCRW(CRWConsensus):
    """Figure 1 with DATA (and COMMIT) sent to *every* other process.

    The paper's coordinator addresses only higher ids, because every lower
    id has provably decided or crashed by round ``r`` (claim C2).  This
    ablation drops the optimisation: correctness and round counts are
    unchanged, but the message bill grows from ``2(n-r)`` to ``2(n-1)``
    per round — the E2/ablation benches quantify the waste the paper's
    id-ordering argument saves.
    """

    __slots__ = ()

    def send_phase(self, round_no: int) -> SendPlan:
        plan = super().send_phase(round_no)
        if round_no != self.pid:
            return plan
        others = [j for j in range(1, self.n + 1) if j != self.pid]
        # compute_phase is inherited unchanged: DATA still accompanies every
        # COMMIT (now for lower ids too), so the base-class line-8 invariant
        # holds as-is.
        return SendPlan(
            data={j: self.est for j in others},
            control=tuple(sorted(others, reverse=True)),
        )


class SilentProcess(SyncProcess):
    """Proposes a value, never communicates, never decides."""

    __slots__ = ("proposal",)

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n)
        self.proposal = proposal

    def send_phase(self, round_no: int) -> SendPlan:
        return NO_SEND

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        return None


# ---------------------------------------------------------------------------
# Columnar tables (batched stepping).  Each mirrors its per-process class
# hook for hook; the batched parity grid pins the equivalence.
# ---------------------------------------------------------------------------


@register_batched_table(EagerCRW)
class _EagerCRWTable(CRWTable):
    """CRW table minus the line-8 COMMIT guard."""

    __slots__ = ()

    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        est = self.est
        decisions: dict[int, Any] = {}
        for pid, inbox in inboxes.items():
            if inbox is EMPTY_INBOX:
                if pid == round_no:
                    decisions[pid] = est[pid]
            elif pid == round_no:
                decisions[pid] = est[pid]
            elif round_no in inbox.data:
                est[pid] = inbox.data[round_no]
                decisions[pid] = est[pid]  # eager: no COMMIT check
        return decisions


@register_batched_table(IncreasingCommitCRW)
class _IncreasingCommitCRWTable(CRWTable):
    """CRW table with the COMMIT sequence ascending instead of descending."""

    __slots__ = ()

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        plans = super().send_phase_all(round_no, active)
        plan = plans.get(round_no)
        if plan is not None and plan.control:
            plans[round_no] = SendPlan(
                data=plan.data, control=tuple(sorted(plan.control))
            )
        return plans


@register_batched_table(FullBroadcastCRW)
class _FullBroadcastCRWTable(CRWTable):
    """CRW table with DATA and COMMIT addressed to every other process."""

    __slots__ = ()

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        plans = super().send_phase_all(round_no, active)
        if round_no in plans:
            others = [j for j in range(1, self.n + 1) if j != round_no]
            plans[round_no] = SendPlan(
                data=dict.fromkeys(others, self.est[round_no]),
                control=tuple(sorted(others, reverse=True)),
            )
        return plans


@register_batched_table(TruncatedCRW)
class _TruncatedCRWTable(BatchedAlgorithm):
    """Columnar TruncatedCRW: ``est`` plus the per-process deadline ``k``."""

    supports_refill = True

    __slots__ = ("n", "est", "k")

    def refill(self, proposals: Sequence[Any]) -> bool:
        # The deadline column ``k`` is configuration (params + t), fixed
        # across a lease; only the estimates vary run to run.
        refill_column(self.est, proposals, offset=1)
        return True

    def __init__(self, n: int, est: list[Any], k: list[int]) -> None:
        self.n = n
        self.est = est
        self.k = k

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "_TruncatedCRWTable":
        n = processes[0].n
        est: list[Any] = [None] * (n + 1)
        k: list[int] = [0] * (n + 1)
        for p in processes:
            est[p.pid] = p.est
            k[p.pid] = p.k
        return cls(n, est, k)

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        # No 'cannot happen' guard: truncation lets processes outlive their
        # own coordinator round (they just stay silent there).
        plans = dict.fromkeys(active, NO_SEND)
        if round_no in plans:
            plans[round_no] = SendPlan(
                data=dict.fromkeys(
                    range(round_no + 1, self.n + 1), self.est[round_no]
                ),
                control=tuple(range(self.n, round_no, -1)),
            )
        return plans

    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        est = self.est
        k = self.k
        decisions: dict[int, Any] = {}
        for pid, inbox in inboxes.items():
            if inbox is EMPTY_INBOX:
                # Nothing received: the coordinator still decides, and the
                # deadline still fires for everyone at round >= k.
                if pid == round_no or round_no >= k[pid]:
                    decisions[pid] = est[pid]
                continue
            if pid == round_no:
                decisions[pid] = est[pid]
                continue
            if round_no in inbox.data:
                est[pid] = inbox.data[round_no]
            if round_no in inbox.control or round_no >= k[pid]:
                decisions[pid] = est[pid]
        return decisions


@register_batched_table(SilentProcess)
class _SilentTable(BatchedAlgorithm):
    """Silent processes: all-NO_SEND plans, no decisions, no state."""

    supports_refill = True

    __slots__ = ()

    def refill(self, proposals: Sequence[Any]) -> bool:
        return True  # stateless: nothing to rewrite

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "_SilentTable":
        return cls()

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        return dict.fromkeys(active, NO_SEND)

    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        return {}


# ---------------------------------------------------------------------------
# Vector tables (array-columnar stepping).  The CRW-shaped variants subclass
# :class:`~repro.core.crw.CRWVectorTable` and override only their delta, like
# the batched tables above; the vector parity grid pins all of them against
# the per-process classes.  SilentProcess keeps no vector table (its batched
# table is already O(1) per round).
# ---------------------------------------------------------------------------


@register_vector_table(EagerCRW)
class _EagerCRWVectorTable(CRWVectorTable):
    """CRW vector table minus the line-8 COMMIT guard."""

    __slots__ = ()

    def compute_phase_vector(
        self,
        round_no: int,
        receivers: set[int],
        receiver_order: list[int],
        sends: list[VectorSend],
        crash_free: bool,
    ) -> dict[int, Any]:
        if crash_free:
            # Crash-free rounds are indistinguishable from the real
            # algorithm: every DATA receiver also holds the COMMIT.
            return super().compute_phase_vector(
                round_no, receivers, receiver_order, sends, crash_free
            )
        est = self.est
        decisions: dict[int, Any] = {}
        if round_no in receivers:
            decisions[round_no] = int(est[round_no])
        if not sends:
            return decisions
        _sender, dests, value, _control = sends[0]
        got_data = receivers.intersection(dests)
        if got_data:
            deciders = sorted(got_data)
            put(est, deciders, value)
            decisions.update(dict.fromkeys(deciders, value))  # eager: DATA alone
        return decisions


@register_vector_table(IncreasingCommitCRW)
class _IncreasingCommitCRWVectorTable(CRWVectorTable):
    """CRW vector table with the COMMIT sequence ascending instead."""

    __slots__ = ()

    def send_phase_vector(self, round_no: int, active: Sequence[int]) -> list[VectorSend]:
        sends = super().send_phase_vector(round_no, active)
        if sends:
            sender, data, value, _control = sends[0]
            sends[0] = (sender, data, value, range(round_no + 1, self.n + 1))
        return sends


@register_vector_table(FullBroadcastCRW)
class _FullBroadcastCRWVectorTable(CRWVectorTable):
    """CRW vector table with DATA and COMMIT addressed to every other pid.

    Only the send differs: active pids below the coordinator cannot exist
    (the inherited 'cannot happen' guard), so the extra low-id messages
    change the accounting, never the computation — compute is inherited
    (its destination intersections are shape-agnostic).
    """

    __slots__ = ()

    def send_phase_vector(self, round_no: int, active: Sequence[int]) -> list[VectorSend]:
        sends = super().send_phase_vector(round_no, active)
        if not sends and active and active[0] == round_no == self.n:
            # p_n's round: the base table goes silent (nobody above), the
            # broadcast variant still addresses 1..n-1.
            sends = [(round_no, None, int(self.est[round_no]), None)]
        if sends:
            sender = sends[0][0]
            others = tuple(j for j in range(1, self.n + 1) if j != sender)
            control = tuple(sorted(others, reverse=True))
            sends[0] = (sender, others, sends[0][2], control)
        return sends


@register_vector_table(TruncatedCRW)
class _TruncatedCRWVectorTable(VectorAlgorithm):
    """Array-columnar TruncatedCRW: int64 ``est`` plus a uniform deadline.

    Only uniform-``k`` tables vectorize (one scalar deadline instead of a
    per-pid column keeps the whole-column round closed-form); mixed-``k``
    process sets fall back to the list-batched table.
    """

    __slots__ = ("n", "est", "k")

    def __init__(self, n: int, est: Any, k: int) -> None:
        self.n = n
        self.est = est  # pid-indexed int64 column (slot 0 unused)
        self.k = k

    @classmethod
    def from_processes(
        cls, processes: Sequence[SyncProcess]
    ) -> "_TruncatedCRWVectorTable | None":
        k = processes[0].k
        if any(p.k != k for p in processes):
            return None
        values = [p.est for p in processes]
        if not all_int64(values):
            return None
        est = int_column([0] * (processes[0].n + 1))
        for p in processes:
            est[p.pid] = p.est
        return cls(processes[0].n, est, k)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        if not all_int64(proposals):
            return False
        refill_column(self.est, proposals, offset=1)
        return True

    def send_phase_vector(self, round_no: int, active: Sequence[int]) -> list[VectorSend]:
        # No 'cannot happen' guard: truncation lets processes outlive their
        # own coordinator round (they just stay silent there).
        pos = bisect_left(active, round_no)
        if pos == len(active) or active[pos] != round_no:
            return []
        data = range(round_no + 1, self.n + 1)
        if not data:
            return []
        return [(round_no, data, int(self.est[round_no]), range(self.n, round_no, -1))]

    def compute_phase_vector(
        self,
        round_no: int,
        receivers: set[int],
        receiver_order: list[int],
        sends: list[VectorSend],
        crash_free: bool,
    ) -> dict[int, Any]:
        est = self.est
        deadline = round_no >= self.k
        decisions: dict[int, Any] = {}
        if crash_free and sends:
            _sender, _dests, value, _control = sends[0]
            pos = bisect_right(receiver_order, round_no)
            followers = receiver_order[pos:]
            put(est, followers, value)
            for pid in receiver_order[:pos]:  # at/below the coordinator
                if pid == round_no or deadline:
                    decisions[pid] = int(est[pid])
            decisions.update(dict.fromkeys(followers, value))  # COMMIT held
            return decisions
        if not sends:
            # Dead coordinator (or p_n's empty round): only the coordinator
            # slot and the deadline can decide, on unchanged estimates.
            for pid in receiver_order:
                if pid == round_no or deadline:
                    decisions[pid] = int(est[pid])
            return decisions
        # Crash round with a (possibly truncated) coordinator send.
        _sender, dests, value, control = sends[0]
        got_data = receivers.intersection(dests)
        got_control = receivers.intersection(control)
        if got_data:
            put(est, sorted(got_data), value)
        for pid in receiver_order:
            if pid == round_no or pid in got_control or deadline:
                decisions[pid] = int(est[pid])  # post-adoption estimate
        return decisions

"""Deliberately modified variants of the paper's algorithm.

These exist to make the *limit* half of the paper executable:

* :class:`EagerCRW` — decides on DATA alone, without waiting for COMMIT
  (drops the paper's line-8 guard).  A crash during the coordinator's data
  step then produces split brains: the sub-round the COMMIT step closes is
  exactly what eagerness gives up.  The lower-bound explorer finds uniform
  (indeed plain) agreement violations.
* :class:`TruncatedCRW` — behaves like the real algorithm but force-decides
  its current estimate at the end of round ``k``.  For ``k <= t`` this is
  "an algorithm that always decides within ``t`` rounds", the object
  Theorem 3 proves cannot exist; the explorer exhibits its bad runs.
* :class:`IncreasingCommitCRW` — identical to the real algorithm except the
  COMMIT sequence runs in *increasing* id order.  Safety survives (the
  value is still locked by a completed data step) but Lemma 3's case-1
  argument collapses: a prefix now covers a *bottom* id range, and runs
  exist where the last decision lands **after** round ``f + 1``.  This is
  the ablation showing the sending *order* carries real power, not just the
  extra message.
* :class:`SilentProcess` — proposes and never sends or decides; used to
  validate that the spec checker reports termination violations.
"""

from __future__ import annotations

from typing import Any

from repro.core.crw import CRWConsensus
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess

__all__ = ["EagerCRW", "TruncatedCRW", "IncreasingCommitCRW", "FullBroadcastCRW", "SilentProcess"]


class EagerCRW(CRWConsensus):
    """Figure 1 without the COMMIT wait: decides as soon as DATA arrives.

    Still *sends* COMMITs as coordinator (they are simply never needed by
    receivers), so its message pattern matches the real algorithm and the
    only delta is the removed guard — a one-line ablation.
    """

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        if round_no == self.pid:
            self.decide(self.est)
            return
        coord = round_no
        if coord in inbox.data:
            self.est = inbox.data[coord]
            self.decide(self.est)  # eager: no COMMIT check


class TruncatedCRW(CRWConsensus):
    """Figure 1 with a hard decision deadline at round ``k``.

    Models "a (hypothetical) algorithm that always decides by round ``k``".
    Theorem 3 says no correct such algorithm exists for ``k <= t``; the
    explorer demonstrates it on this one.
    """

    def __init__(self, pid: int, n: int, proposal: Any, k: int) -> None:
        super().__init__(pid, n, proposal)
        self.k = k

    def send_phase(self, round_no: int) -> SendPlan:
        # Reuse the real protocol's sends while the deadline has not passed;
        # the base class guard (round > pid cannot happen) must be bypassed
        # because truncation lets non-decided processes outlive their own
        # coordinator round only when k < pid.
        if round_no < self.pid:
            return NO_SEND
        if round_no == self.pid:
            return SendPlan(
                data={j: self.est for j in range(self.pid + 1, self.n + 1)},
                control=tuple(range(self.n, self.pid, -1)),
            )
        return NO_SEND

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        coord = round_no
        if round_no == self.pid:
            self.decide(self.est)
            return
        if coord in inbox.data:
            self.est = inbox.data[coord]
        if coord in inbox.control:
            self.decide(self.est)
            return
        if round_no >= self.k:
            # Deadline: decide whatever we currently estimate.
            self.decide(self.est)


class IncreasingCommitCRW(CRWConsensus):
    """Figure 1 with the COMMIT sequence in increasing id order.

    The delivered prefix of a crashing coordinator then covers the *lowest*
    ids after the coordinator instead of the highest, so an early decider
    no longer implies that every higher id decided too — and the ``f + 1``
    early-stopping bound breaks (uniform agreement is unaffected).
    """

    def send_phase(self, round_no: int) -> SendPlan:
        plan = super().send_phase(round_no)
        if plan.control:
            return SendPlan(data=plan.data, control=tuple(sorted(plan.control)))
        return plan


class FullBroadcastCRW(CRWConsensus):
    """Figure 1 with DATA (and COMMIT) sent to *every* other process.

    The paper's coordinator addresses only higher ids, because every lower
    id has provably decided or crashed by round ``r`` (claim C2).  This
    ablation drops the optimisation: correctness and round counts are
    unchanged, but the message bill grows from ``2(n-r)`` to ``2(n-1)``
    per round — the E2/ablation benches quantify the waste the paper's
    id-ordering argument saves.
    """

    def send_phase(self, round_no: int) -> SendPlan:
        plan = super().send_phase(round_no)
        if round_no != self.pid:
            return plan
        others = [j for j in range(1, self.n + 1) if j != self.pid]
        # compute_phase is inherited unchanged: DATA still accompanies every
        # COMMIT (now for lower ids too), so the base-class line-8 invariant
        # holds as-is.
        return SendPlan(
            data={j: self.est for j in others},
            control=tuple(sorted(others, reverse=True)),
        )


class SilentProcess(SyncProcess):
    """Proposes a value, never communicates, never decides."""

    def __init__(self, pid: int, n: int, proposal: Any) -> None:
        super().__init__(pid, n)
        self.proposal = proposal

    def send_phase(self, round_no: int) -> SendPlan:
        return NO_SEND

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        return None

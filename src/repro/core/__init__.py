"""The paper's primary contribution: the Figure-1 consensus algorithm."""

from repro.core.crw import CRWConsensus
from repro.core.locking import LockReport, analyze_locking
from repro.core.oracle import OraclePrediction, predict
from repro.core.variants import (
    EagerCRW,
    FullBroadcastCRW,
    IncreasingCommitCRW,
    SilentProcess,
    TruncatedCRW,
)

__all__ = [
    "CRWConsensus",
    "LockReport",
    "analyze_locking",
    "OraclePrediction",
    "predict",
    "EagerCRW",
    "FullBroadcastCRW",
    "IncreasingCommitCRW",
    "SilentProcess",
    "TruncatedCRW",
]

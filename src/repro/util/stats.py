"""Tiny summary-statistics helpers used by the harness and benchmarks.

Deliberately dependency-free (no numpy import at module scope) so that the
core library stays importable in minimal environments; the benchmark layer
may still use numpy for heavier analysis.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Summary", "summarize", "percentile"]


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample of real values."""

    count: int
    mean: float
    std: float
    min: float
    p50: float
    p95: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.min:.3f} p50={self.p50:.3f} p95={self.p95:.3f} max={self.max:.3f}"
        )


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile ``q`` in [0, 100] of a *sorted* list."""
    if not sorted_values:
        raise ConfigurationError("percentile of empty sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = (q / 100.0) * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    v_lo, v_hi = float(sorted_values[lo]), float(sorted_values[hi])
    # lo + (hi - lo) * frac rather than the convex-combination form: the
    # latter underflows to 0.0 on subnormal inputs (e.g. two copies of
    # 5e-324), breaking min <= p50.
    return v_lo + (v_hi - v_lo) * frac


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``values`` (must be non-empty)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigurationError("summarize() needs at least one value")
    n = len(data)
    # Clamp into [min, max]: mathematically guaranteed, but float summation
    # can drift by an ulp (e.g. three identical values).
    mean = min(max(sum(data) / n, data[0]), data[-1])
    var = sum((v - mean) ** 2 for v in data) / n if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        min=data[0],
        p50=percentile(data, 50.0),
        p95=percentile(data, 95.0),
        max=data[-1],
    )

"""Shared utilities: deterministic RNG trees, tables, stats, traces."""

from repro.util.rng import RandomSource, derive_seed
from repro.util.stats import Summary, percentile, summarize
from repro.util.tables import Table, render_ascii, render_markdown
from repro.util.trace import Trace, TraceEvent

__all__ = [
    "RandomSource",
    "derive_seed",
    "Summary",
    "percentile",
    "summarize",
    "Table",
    "render_ascii",
    "render_markdown",
    "Trace",
    "TraceEvent",
]

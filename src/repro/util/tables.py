"""Table utilities: report rendering and columnar-table refill helpers.

The benchmark harness prints every reproduced table with the rendering
helpers so the output can be pasted straight into Markdown documents (the
experiment record rendered by :mod:`repro.harness.report`, ``DESIGN.md``,
PRs).

The refill helpers serve a different kind of table: the pid-indexed
columnar process tables of the batched engines
(:class:`repro.sync.api.BatchedAlgorithm` /
:class:`repro.asyncsim.process.AsyncBatchedTable`).  Their ``refill``
implementations rewrite per-process state columns in place for a fresh
run of the same configuration — new proposals in, constants re-armed —
and every one of them needs the same two moves, so they live here once:

* :func:`refill_column` — overwrite the per-pid slots from a 0-indexed
  value list (synchronous tables keep slot 0 unused, asynchronous tables
  are 0-indexed; ``offset`` covers both conventions);
* :func:`fill_column` — re-arm the per-pid slots with one constant.

Columns may be plain Python lists (the list-batched tables) or
array-backed (numpy / :class:`array.array`, the vectorized tables of
:mod:`repro.util.columns`): both helpers dispatch on the column's
concrete type, keeping the length check and in-place-rewrite contract
identical across backends.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import ConfigurationError
from repro.util.columns import assign_slice, fill_slice

__all__ = [
    "Table",
    "render_ascii",
    "render_markdown",
    "refill_column",
    "fill_column",
]


def refill_column(column: Any, values: Sequence[Any], *, offset: int = 0) -> None:
    """Overwrite ``column[offset:]`` in place from the 0-indexed ``values``.

    The column object (and anything holding a reference to it) survives;
    only its per-pid slots change — which is the whole point of a table
    refill: no list, no table, no array, and no process objects are
    reallocated.  Works on list, numpy, and ``array.array`` columns; the
    length check runs up front for all of them (a bare numpy slice
    assignment would broadcast a scalar or raise a shape error with a
    less useful message, and an ``array`` slice assignment would silently
    resize).
    """
    if len(column) - offset != len(values):
        raise ConfigurationError(
            f"column holds {len(column) - offset} slots but got "
            f"{len(values)} values"
        )
    assign_slice(column, values, offset=offset)


def fill_column(column: Any, value: Any, *, offset: int = 0) -> None:
    """Re-arm ``column[offset:]`` in place with a shared constant ``value``."""
    fill_slice(column, value, offset=offset)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Table:
    """A small column-typed table with ASCII and Markdown renderers.

    >>> t = Table(["n", "rounds"], title="demo")
    >>> t.add_row(4, 1)
    >>> print(t.to_markdown())   # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate column names: {list(columns)}")
        self.columns: tuple[str, ...] = tuple(str(c) for c in columns)
        self.title = title
        self.rows: list[tuple[str, ...]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row given positionally or by column name (not both)."""
        if values and named:
            raise ConfigurationError("pass row values positionally or by name, not both")
        if named:
            missing = set(self.columns) - set(named)
            extra = set(named) - set(self.columns)
            if missing or extra:
                raise ConfigurationError(
                    f"row keys mismatch: missing={sorted(missing)} extra={sorted(extra)}"
                )
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(_cell(v) for v in values))

    # -- rendering --------------------------------------------------------

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def to_ascii(self) -> str:
        """Render with box-drawing-free ASCII (stable under any terminal)."""
        widths = self._widths()
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        out: list[str] = []
        if self.title:
            out.append(self.title)
        out.append(sep)
        out.append(
            "|" + "|".join(f" {c.ljust(w)} " for c, w in zip(self.columns, widths)) + "|"
        )
        out.append(sep)
        for row in self.rows:
            out.append(
                "|" + "|".join(f" {c.ljust(w)} " for c, w in zip(row, widths)) + "|"
            )
        out.append(sep)
        return "\n".join(out)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        widths = self._widths()
        out: list[str] = []
        if self.title:
            out.append(f"**{self.title}**")
            out.append("")
        out.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)) + " |"
        )
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in self.rows:
            out.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)


def render_ascii(columns: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """One-shot ASCII rendering of ``rows`` under ``columns``."""
    t = Table(columns, title=title)
    for row in rows:
        t.add_row(*row)
    return t.to_ascii()


def render_markdown(columns: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """One-shot Markdown rendering of ``rows`` under ``columns``."""
    t = Table(columns, title=title)
    for row in rows:
        t.add_row(*row)
    return t.to_markdown()

"""ASCII / Markdown table rendering for benchmark and experiment reports.

The benchmark harness prints every reproduced table with these helpers so
the output can be pasted straight into Markdown documents (the experiment
record rendered by :mod:`repro.harness.report`, ``DESIGN.md``, PRs).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["Table", "render_ascii", "render_markdown"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Table:
    """A small column-typed table with ASCII and Markdown renderers.

    >>> t = Table(["n", "rounds"], title="demo")
    >>> t.add_row(4, 1)
    >>> print(t.to_markdown())   # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate column names: {list(columns)}")
        self.columns: tuple[str, ...] = tuple(str(c) for c in columns)
        self.title = title
        self.rows: list[tuple[str, ...]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row given positionally or by column name (not both)."""
        if values and named:
            raise ConfigurationError("pass row values positionally or by name, not both")
        if named:
            missing = set(self.columns) - set(named)
            extra = set(named) - set(self.columns)
            if missing or extra:
                raise ConfigurationError(
                    f"row keys mismatch: missing={sorted(missing)} extra={sorted(extra)}"
                )
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(_cell(v) for v in values))

    # -- rendering --------------------------------------------------------

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def to_ascii(self) -> str:
        """Render with box-drawing-free ASCII (stable under any terminal)."""
        widths = self._widths()
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        out: list[str] = []
        if self.title:
            out.append(self.title)
        out.append(sep)
        out.append(
            "|" + "|".join(f" {c.ljust(w)} " for c, w in zip(self.columns, widths)) + "|"
        )
        out.append(sep)
        for row in self.rows:
            out.append(
                "|" + "|".join(f" {c.ljust(w)} " for c, w in zip(row, widths)) + "|"
            )
        out.append(sep)
        return "\n".join(out)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        widths = self._widths()
        out: list[str] = []
        if self.title:
            out.append(f"**{self.title}**")
            out.append("")
        out.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)) + " |"
        )
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in self.rows:
            out.append(
                "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            )
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)


def render_ascii(columns: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """One-shot ASCII rendering of ``rows`` under ``columns``."""
    t = Table(columns, title=title)
    for row in rows:
        t.add_row(*row)
    return t.to_ascii()


def render_markdown(columns: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None) -> str:
    """One-shot Markdown rendering of ``rows`` under ``columns``."""
    t = Table(columns, title=title)
    for row in rows:
        t.add_row(*row)
    return t.to_markdown()

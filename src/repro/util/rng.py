"""Deterministic random-number plumbing.

Every stochastic component in the library (adversaries, delay models,
workload generators) draws from a :class:`RandomSource` handed to it by its
caller.  Sources form a tree: ``spawn(label)`` derives an independent child
stream whose state depends only on the parent seed and the label, never on
how many draws happened before.  This gives two properties the experiment
harness relies on:

* **Reproducibility** — a run is a pure function of ``(seed, parameters)``.
* **Insensitivity to refactoring** — adding a draw in one component does not
  perturb the stream seen by a sibling component.

The implementation uses :class:`random.Random` seeded through SHA-256 of the
``(seed, label-path)`` pair, so it has no third-party dependencies and is
stable across Python versions and platforms.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from typing import TypeVar

from repro.errors import ConfigurationError

__all__ = ["RandomSource", "derive_seed"]

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, *labels: str) -> int:
    """Derive a 64-bit child seed from ``seed`` and a label path.

    The derivation is a SHA-256 hash of the decimal seed and the labels
    joined with ``/``; it is collision-resistant for any practical number of
    children and completely independent of call ordering.
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("ascii"))
    for label in labels:
        h.update(b"/")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & _MASK64


class RandomSource:
    """A labelled, spawnable deterministic random stream.

    Parameters
    ----------
    seed:
        Root seed. Any Python int; reduced to 64 bits internally.
    path:
        Label path from the root (used in ``repr`` and child derivation).
    """

    __slots__ = ("_seed", "_path", "_rng")

    def __init__(self, seed: int, path: tuple[str, ...] = ()) -> None:
        if not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed & _MASK64
        self._path = path
        self._rng = random.Random(derive_seed(self._seed, *path, "stream"))

    # -- identity ---------------------------------------------------------

    @property
    def seed(self) -> int:
        """Root seed this source was derived from."""
        return self._seed

    @property
    def path(self) -> tuple[str, ...]:
        """Label path from the root source."""
        return self._path

    @property
    def raw(self) -> random.Random:
        """The underlying stdlib generator, for C-speed bulk draws.

        Hot paths (the asynchronous network's delay fan-outs) draw from
        it directly to skip the wrapper frame per draw; it is the same
        stream the wrapper methods consume, so interleaving is safe.
        Never reseed or replace it — that would break the labelled-stream
        determinism contract.
        """
        return self._rng

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(seed={self._seed}, path={'/'.join(self._path) or '<root>'})"

    # -- spawning ---------------------------------------------------------

    def spawn(self, label: str) -> "RandomSource":
        """Return an independent child stream identified by ``label``.

        Spawning the same label twice returns streams with identical
        sequences; use distinct labels (e.g. ``f"proc{i}"``) for distinct
        streams.
        """
        return RandomSource(self._seed, self._path + (label,))

    # -- draws ------------------------------------------------------------

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        if lo > hi:
            raise ConfigurationError(f"empty integer range [{lo}, {hi}]")
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform float in ``[lo, hi]``."""
        return self._rng.uniform(lo, hi)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal draw (used by heavy-tailed delay models)."""
        return self._rng.lognormvariate(mu, sigma)

    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean."""
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be > 0, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        if not items:
            raise ConfigurationError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def shuffle(self, items: list[T]) -> list[T]:
        """Shuffle *a copy* of ``items`` and return it (input untouched)."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items (order randomised)."""
        if k < 0 or k > len(items):
            raise ConfigurationError(f"cannot sample {k} of {len(items)} items")
        return self._rng.sample(list(items), k)

    def subset(self, items: Sequence[T], p: float = 0.5) -> list[T]:
        """Independent-inclusion subset: each item kept with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"inclusion probability must be in [0,1], got {p}")
        return [x for x in items if self._rng.random() < p]

    def bool(self, p_true: float = 0.5) -> bool:
        """Bernoulli draw."""
        if not 0.0 <= p_true <= 1.0:
            raise ConfigurationError(f"probability must be in [0,1], got {p_true}")
        return self._rng.random() < p_true

    # -- bulk draws --------------------------------------------------------

    def randints(self, k: int, lo: int, hi: int) -> list[int]:
        """``k`` uniform integers in ``[lo, hi]`` — one call per vector.

        Stream-identical to ``k`` :meth:`randint` calls (same underlying
        draws, same order), so replacing a per-element loop with one bulk
        call never perturbs a seeded run.  The saving is the wrapper
        frame and argument validation per element — workload generators
        draw one value per process per cell, which a seed-dense sweep
        multiplies by millions.
        """
        if k < 0:
            raise ConfigurationError(f"draw count must be >= 0, got {k}")
        if lo > hi:
            raise ConfigurationError(f"empty integer range [{lo}, {hi}]")
        draw = self._rng.randint
        return [draw(lo, hi) for _ in range(k)]

    def bools(self, k: int, p_true: float = 0.5) -> list[bool]:
        """``k`` Bernoulli draws; stream-identical to ``k`` :meth:`bool` calls."""
        if k < 0:
            raise ConfigurationError(f"draw count must be >= 0, got {k}")
        if not 0.0 <= p_true <= 1.0:
            raise ConfigurationError(f"probability must be in [0,1], got {p_true}")
        draw = self._rng.random
        return [draw() < p_true for _ in range(k)]

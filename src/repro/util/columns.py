"""Typed array columns: numpy when available, stdlib ``array`` fallback.

The columnar tables of PRs 3–5 hold per-process state in pid-indexed
Python *lists*.  This module provides the array-backed replacement the
vectorized tables build on: int64 / bool / uint64 columns that are numpy
arrays when numpy is importable and :class:`array.array` buffers when it
is not, plus a small set of element accessors (gather / scatter / reduce)
that dispatch on the column's concrete type.

Two properties every helper keeps, because the vectorized engine paths
are pinned byte-identical to the object paths:

* **Python scalars out.**  ``take`` / ``min_at`` / ``any_at`` /
  ``or_at`` return built-in ``int`` / ``bool`` values (``tolist`` on the
  numpy side), never numpy scalars — payloads and decisions feed the
  bit-accounting memo and JSON serialization, both of which are
  type-sensitive.
* **Backend equivalence.**  The numpy and fallback paths compute the
  same values; ``REPRO_NO_NUMPY=1`` forces the fallback so CI can pin
  the whole suite on it.

Eligibility: the vectorized tables only engage when every value fits a
plain int64 (:func:`all_int64`); anything else — ``SizedValue``, strings,
service commands — falls back to the list-batched tables unchanged.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Iterable, Sequence

__all__ = [
    "HAVE_NUMPY",
    "np",
    "int64_fits",
    "all_int64",
    "int_column",
    "bool_column",
    "uint64_column",
    "is_array_column",
    "assign_slice",
    "fill_slice",
    "take",
    "put",
    "min_at",
    "any_at",
    "or_at",
]

if os.environ.get("REPRO_NO_NUMPY"):
    np = None  # forced fallback (the no-numpy CI job pins this path)
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        np = None

HAVE_NUMPY = np is not None

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def int64_fits(value: Any) -> bool:
    """Whether ``value`` is a plain int representable as an int64.

    Exact-type check on purpose: ``bool`` is an ``int`` subclass but
    serializes (and bit-sizes) differently, so it does not qualify.
    """
    return type(value) is int and _INT64_MIN <= value <= _INT64_MAX


def all_int64(values: Iterable[Any]) -> bool:
    """Whether every value passes :func:`int64_fits` (vector eligibility)."""
    return all(int64_fits(v) for v in values)


# -- constructors -----------------------------------------------------------


def int_column(values: Sequence[int], *, offset: int = 0):
    """An int64 column: ``offset`` zeroed slots then ``values``.

    Synchronous tables are pid-indexed with slot 0 unused — they pass
    ``offset=1``.
    """
    if np is not None:
        col = np.zeros(len(values) + offset, dtype=np.int64)
        col[offset:] = values
        return col
    return array("q", bytes(8 * offset)) + array("q", values)


def bool_column(values: Sequence[bool], *, offset: int = 0):
    """A bool column (``b`` int8 0/1 in the fallback)."""
    if np is not None:
        col = np.zeros(len(values) + offset, dtype=np.bool_)
        col[offset:] = values
        return col
    return array("b", bytes(offset)) + array("b", [1 if v else 0 for v in values])


def uint64_column(values: Sequence[int], *, offset: int = 0):
    """A uint64 column (bitmask state, e.g. FloodSet value sets)."""
    if np is not None:
        col = np.zeros(len(values) + offset, dtype=np.uint64)
        col[offset:] = values
        return col
    return array("Q", bytes(8 * offset)) + array("Q", values)


def is_array_column(column: Any) -> bool:
    """Whether ``column`` is an array-backed column (numpy or ``array``)."""
    if isinstance(column, array):
        return True
    return np is not None and isinstance(column, np.ndarray)


# -- whole-column writes (the refill path) ----------------------------------


def assign_slice(column: Any, values: Sequence[Any], *, offset: int = 0) -> None:
    """``column[offset:] = values`` for list, numpy, and ``array`` columns.

    The stdlib ``array`` only accepts a same-typecode array on slice
    assignment, and numpy handles any sequence natively; lists take the
    plain slice write.  Length checking is the caller's job
    (:func:`repro.util.tables.refill_column` fronts this with the
    dtype-aware check and error message).
    """
    if isinstance(column, array):
        column[offset:] = array(column.typecode, values)
    else:
        column[offset:] = values


def fill_slice(column: Any, value: Any, *, offset: int = 0) -> None:
    """``column[offset:] = [value] * k`` for list, numpy, and ``array``."""
    if isinstance(column, array):
        column[offset:] = array(column.typecode, [value]) * (len(column) - offset)
    elif np is not None and isinstance(column, np.ndarray):
        column[offset:] = value
    else:
        column[offset:] = [value] * (len(column) - offset)


# -- element accessors (gather / scatter / reduce) --------------------------


def take(column: Any, indices: Sequence[int]) -> list:
    """Gather ``column[i] for i in indices`` as Python scalars."""
    if np is not None and isinstance(column, np.ndarray):
        return column[indices].tolist()
    return [column[i] for i in indices]


def put(column: Any, indices: Sequence[int], value: Any) -> None:
    """Scatter one ``value`` into every slot named by ``indices``."""
    if np is not None and isinstance(column, np.ndarray):
        if indices:
            column[indices] = value
        return
    for i in indices:
        column[i] = value


def min_at(column: Any, indices: Sequence[int]) -> int:
    """``min(column[i] for i in indices)`` as a Python int."""
    if np is not None and isinstance(column, np.ndarray):
        return int(column[indices].min())
    return min(column[i] for i in indices)


def any_at(column: Any, indices: Sequence[int]) -> bool:
    """``any(column[i] for i in indices)`` as a Python bool."""
    if np is not None and isinstance(column, np.ndarray):
        return bool(column[indices].any())
    return any(column[i] for i in indices)


def or_at(column: Any, indices: Sequence[int]) -> int:
    """Bitwise OR over ``column[i] for i in indices`` as a Python int."""
    if np is not None and isinstance(column, np.ndarray):
        if not len(indices):
            return 0
        return int(np.bitwise_or.reduce(column[indices]))
    out = 0
    for i in indices:
        out |= column[i]
    return out

"""Structured event tracing for simulated runs.

Engines optionally record a :class:`Trace` — an append-only list of
:class:`TraceEvent` — which tests and the lower-bound explorer use to assert
*how* a result was produced (who crashed when, which messages were dropped,
which prefix of a control sequence was delivered), not merely the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped simulation event.

    Attributes
    ----------
    round_no:
        Round in which the event occurred (0 for pre-run events, simulated
        time bucket for asynchronous runs).
    kind:
        Machine-readable event name, e.g. ``"crash"``, ``"deliver.data"``,
        ``"drop.control"``, ``"decide"``.
    pid:
        Primary process involved (sender for sends, the process itself for
        crash/decide), or 0 when not applicable.
    detail:
        Free-form key/value payload (kept small; values must be immutable).
    """

    round_no: int
    kind: str
    pid: int
    detail: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Look up a detail value by key."""
        for k, v in self.detail:
            if k == key:
                return v
        return default


class Trace:
    """Append-only event log with simple query helpers."""

    __slots__ = ("_events", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        self._events: list[TraceEvent] = []
        self.enabled = enabled

    def record(self, round_no: int, kind: str, pid: int, **detail: Any) -> None:
        """Record one event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(round_no=round_no, kind=kind, pid=pid, detail=tuple(sorted(detail.items())))
        )

    # -- queries ----------------------------------------------------------

    def events(self, kind: str | None = None, pid: int | None = None, round_no: int | None = None) -> list[TraceEvent]:
        """All events matching the given filters (``None`` = wildcard)."""
        return [
            e
            for e in self._events
            if (kind is None or e.kind == kind)
            and (pid is None or e.pid == pid)
            and (round_no is None or e.round_no == round_no)
        ]

    def count(self, kind: str) -> int:
        """Number of events of ``kind``."""
        return sum(1 for e in self._events if e.kind == kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def format(self) -> str:
        """Human-readable multi-line rendering (for debugging failed runs)."""
        lines = []
        for e in self._events:
            kv = " ".join(f"{k}={v!r}" for k, v in e.detail)
            lines.append(f"[r{e.round_no:>3}] {e.kind:<16} p{e.pid} {kv}")
        return "\n".join(lines)

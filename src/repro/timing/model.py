"""Round-cost model (Section 2.2) and the ``d < D/(f+1)`` crossover.

The paper prices rounds as follows:

* classic round: duration ``D`` (an upper bound on message transfer delay
  plus local processing);
* extended round: ``D + d`` where ``d`` is the extra time of the pipelined
  control send — crucially *not* a message-delay bound, because the two
  sends are back-to-back on the same channel (footnote 4: the data and
  control message are pipelined, so the control message rides within the
  same ``D`` window, adding only its injection time ``d``).

With the algorithms at hand, completion times are:

* extended-model algorithm (this paper):  ``(f+1)(D+d)``
* classic early-stopping uniform consensus: ``(f+2)D``
* classic FloodSet: ``(t+1)D``
* fast-FD consensus (related work [1]):   ``≈ D + f·d_fd``

The extended algorithm beats the classic early-stopping one iff
``(f+1)(D+d) < (f+2)D  ⟺  d < D/(f+1)`` — "always satisfied for realistic
values" since failures are rare (``f ∈ {0, 1}`` dominates) and ``d ≪ D``
on a LAN with reliable links.  :func:`crossover_d` and
:func:`timing_series` regenerate the paper's comparison as data (E3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["RoundCost", "crossover_d", "timing_series", "TimingPoint"]


@dataclass(frozen=True)
class RoundCost:
    """Durations of one round in each model."""

    D: float  # classic round: message delay + processing bound
    d: float  # extended model's pipelined control-send surcharge

    def __post_init__(self) -> None:
        if self.D <= 0:
            raise ConfigurationError(f"D must be > 0, got {self.D}")
        if self.d < 0:
            raise ConfigurationError(f"d must be >= 0, got {self.d}")

    # -- per-algorithm completion times ------------------------------------

    def classic_time(self, rounds: int) -> float:
        """Completion time of ``rounds`` classic rounds."""
        self._check_rounds(rounds)
        return rounds * self.D

    def extended_time(self, rounds: int) -> float:
        """Completion time of ``rounds`` extended rounds."""
        self._check_rounds(rounds)
        return rounds * (self.D + self.d)

    def crw_time(self, f: int) -> float:
        """The paper's algorithm: ``(f+1)(D+d)``."""
        self._check_f(f)
        return self.extended_time(f + 1)

    def early_stopping_time(self, f: int, t: int | None = None) -> float:
        """Classic early-stopping uniform consensus: ``min(f+2, t+1)·D``."""
        self._check_f(f)
        rounds = f + 2 if t is None else min(f + 2, t + 1)
        return self.classic_time(rounds)

    def floodset_time(self, t: int) -> float:
        """Classic FloodSet: ``(t+1)·D`` regardless of ``f``."""
        self._check_f(t)
        return self.classic_time(t + 1)

    def ffd_time(self, f: int, d_fd: float) -> float:
        """Fast-failure-detector consensus: ``D + f·d_fd`` (+ one detector
        settle ``d_fd``, per our implementation's takeover-check offset)."""
        self._check_f(f)
        if d_fd < 0:
            raise ConfigurationError("d_fd must be >= 0")
        return self.D + f * d_fd + d_fd

    # -- comparisons ------------------------------------------------------------

    def extended_wins(self, f: int, t: int | None = None) -> bool:
        """Is ``(f+1)(D+d) < min(f+2, t+1)·D``?"""
        return self.crw_time(f) < self.early_stopping_time(f, t)

    @staticmethod
    def _check_rounds(rounds: int) -> None:
        if rounds < 0:
            raise ConfigurationError("rounds must be >= 0")

    @staticmethod
    def _check_f(f: int) -> None:
        if f < 0:
            raise ConfigurationError("f must be >= 0")


def crossover_d(D: float, f: int) -> float:
    """The break-even ``d``: extended wins iff ``d < D/(f+1)``.

    Derivation: ``(f+1)(D+d) < (f+2)D ⟺ (f+1)d < D``.
    """
    if D <= 0:
        raise ConfigurationError("D must be > 0")
    if f < 0:
        raise ConfigurationError("f must be >= 0")
    return D / (f + 1)


@dataclass(frozen=True, slots=True)
class TimingPoint:
    """One row of the E3 series."""

    d_over_D: float
    f: int
    crw: float
    early_stopping: float
    extended_wins: bool


def timing_series(
    D: float,
    f_values: tuple[int, ...] = (0, 1, 2, 4),
    d_fractions: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5),
) -> list[TimingPoint]:
    """The Section 2.2 comparison as a sweep over ``d/D`` and ``f``."""
    out = []
    for f in f_values:
        for frac in d_fractions:
            cost = RoundCost(D=D, d=frac * D)
            out.append(
                TimingPoint(
                    d_over_D=frac,
                    f=f,
                    crw=cost.crw_time(f),
                    early_stopping=cost.early_stopping_time(f),
                    extended_wins=cost.extended_wins(f),
                )
            )
    return out

"""Vectorized timing grids for fine-resolution crossover maps.

The scalar :mod:`repro.timing.model` is fine for tables; drawing the full
win/lose *map* over thousands of ``(d/D, f)`` cells calls for NumPy
broadcasting (one array expression instead of a Python double loop —
the optimisation the scientific-Python guides recommend once the scalar
version is correct and tested).

The grid is validated against the scalar implementation point-by-point in
the test suite, so the two can never drift apart silently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["timing_grid", "crossover_curve"]


def timing_grid(
    D: float,
    d_fractions: np.ndarray | list[float],
    f_values: np.ndarray | list[int],
) -> dict[str, np.ndarray]:
    """Completion-time surfaces over a ``(f, d/D)`` grid.

    Returns arrays of shape ``(len(f_values), len(d_fractions))``:

    * ``crw``            — ``(f+1)(D+d)``
    * ``early_stopping`` — ``(f+2)D``  (broadcast along the d axis)
    * ``extended_wins``  — boolean strict-win mask
    * ``margin``         — classic minus extended time (positive = win)
    """
    if D <= 0:
        raise ConfigurationError("D must be > 0")
    d_frac = np.asarray(d_fractions, dtype=np.float64)
    f = np.asarray(f_values, dtype=np.int64)
    if d_frac.ndim != 1 or f.ndim != 1:
        raise ConfigurationError("d_fractions and f_values must be 1-D")
    if (d_frac < 0).any():
        raise ConfigurationError("d fractions must be >= 0")
    if (f < 0).any():
        raise ConfigurationError("f values must be >= 0")

    d = d_frac[None, :] * D  # (1, K)
    rounds_ext = (f + 1)[:, None].astype(np.float64)  # (F, 1)
    crw = rounds_ext * (D + d)  # broadcast -> (F, K)
    early = ((f + 2).astype(np.float64) * D)[:, None] * np.ones_like(d_frac)[None, :]
    margin = early - crw
    return {
        "crw": crw,
        "early_stopping": early,
        "extended_wins": margin > 0,
        "margin": margin,
    }


def crossover_curve(D: float, f_values: np.ndarray | list[int]) -> np.ndarray:
    """The break-even ``d/D`` per ``f``: ``1 / (f + 1)`` (vectorized)."""
    if D <= 0:
        raise ConfigurationError("D must be > 0")
    f = np.asarray(f_values, dtype=np.float64)
    if (f < 0).any():
        raise ConfigurationError("f values must be >= 0")
    return 1.0 / (f + 1.0)

"""The Section 2.2 round-cost model and crossover analysis."""

from repro.timing.grid import crossover_curve, timing_grid
from repro.timing.model import RoundCost, TimingPoint, crossover_d, timing_series

__all__ = [
    "crossover_curve",
    "timing_grid",
    "RoundCost",
    "TimingPoint",
    "crossover_d",
    "timing_series",
]

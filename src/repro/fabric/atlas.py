"""Merge-on-read tradeoff atlases over a shard directory.

The point of a million-cell sweep is the paper's tradeoff surface —
rounds vs. messages vs. bits as synchronization messages (and faults)
are added — and the **atlas** is that surface as a regeneratable
artifact: one deterministic JSON document reduced from the per-shard
columnar files, the way zamlet's ``dse/`` sweeps are reduced by
``analyze_results.py``.

Nothing here materializes the sweep: shard files stream one line at a
time through the incremental aggregation of
:func:`repro.scenarios.sweep.summarize_record_sources`, so working
memory is one batch line plus one accumulator per distinct cell group.
The artifact carries the manifest's grid hash, which makes "same grid,
same results" checkable byte-for-byte: an interrupted-and-resumed sweep
must produce an atlas identical to an uninterrupted run's (pinned by
``tests/fabric/test_sharded_durability.py``).

A directory whose sweep quarantined poison cells (see
:class:`repro.fabric.manifest.QuarantineLog`) still summarizes: shards
marked ``"quarantined"`` are complete except for the quarantined cells,
and the atlas reports the shortfall honestly — ``quarantined`` counts
the excluded cells and ``covered_cells`` is what the rows actually
aggregate over, so partial coverage can never masquerade as full.

``repro-consensus atlas summarize --dir DIR`` is the CLI face.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.fabric.manifest import QuarantineLog, ShardManifest
from repro.fabric.shardio import iter_shard_records
from repro.scenarios.record import RunRecord
from repro.scenarios.sweep import CellSummary, summarize_record_sources

__all__ = [
    "ATLAS_SCHEMA",
    "atlas_summaries",
    "build_atlas",
    "write_atlas",
    "iter_directory_records",
]

ATLAS_SCHEMA = 2


def _shard_files(manifest: ShardManifest) -> list[str]:
    # "quarantined" shards are complete minus their quarantine.json
    # cells — their files hold every record that exists, so they merge.
    missing = [
        s.id for s in manifest.shards
        if s.status not in ("done", "quarantined")
    ]
    if missing:
        raise ConfigurationError(
            f"shard directory {manifest.directory!r} is incomplete: shards "
            f"{missing} are not done — rerun the sweep to resume them "
            f"before summarizing"
        )
    return [os.path.join(manifest.directory, s.file) for s in manifest.shards]


def iter_directory_records(
    directory: str | os.PathLike[str],
) -> Iterator[RunRecord]:
    """Stream every record of a completed shard directory, in grid order."""
    manifest = ShardManifest.load(os.fspath(directory))
    for path in _shard_files(manifest):
        yield from iter_shard_records(path)


def atlas_summaries(directory: str | os.PathLike[str]) -> list[CellSummary]:
    """Reduce a completed shard directory to per-cell summaries, streaming."""
    manifest = ShardManifest.load(os.fspath(directory))
    return summarize_record_sources(
        iter_shard_records(path) for path in _shard_files(manifest)
    )


def build_atlas(directory: str | os.PathLike[str]) -> dict[str, Any]:
    """The atlas document: grid identity + the rounds/messages/bits tables.

    A pure function of the shard files' record set — worker schedules,
    steal decisions, and kill/resume histories do not show up in it, so
    regenerating an atlas from a resumed sweep reproduces the
    uninterrupted run's bytes exactly.
    """
    directory = os.fspath(directory)
    manifest = ShardManifest.load(directory)
    quarantine = QuarantineLog.load(directory)
    rows = [asdict(summary) for summary in atlas_summaries(directory)]
    return {
        "schema": ATLAS_SCHEMA,
        "cells": manifest.cells,
        "covered_cells": manifest.cells - len(quarantine),
        "quarantined": len(quarantine),
        "shards": len(manifest.shards),
        "grid_hash": manifest.grid,
        "rows": rows,
    }


def write_atlas(
    directory: str | os.PathLike[str], out_path: str | os.PathLike[str]
) -> dict[str, Any]:
    """Write the atlas artifact JSON (deterministic bytes); returns the doc."""
    doc = build_atlas(directory)
    with open(os.fspath(out_path), "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return doc

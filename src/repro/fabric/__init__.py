"""The sharded sweep fabric: manifests, stealing workers, shm results, atlases.

This package is the distribution layer of the sweep stack — the
architecture the ROADMAP's million-cell tradeoff atlases run on:

* :mod:`~repro.fabric.manifest` — deterministic shard planning plus the
  resumable JSON manifest (shard id → cell range, status, output file,
  content hash);
* :mod:`~repro.fabric.shm` — shared-memory slabs carrying the numeric
  record columns back from workers (only small object columns cross the
  pipe);
* :mod:`~repro.fabric.shardio` — per-shard columnar JSONL files with
  the torn-tail-healing per-cell resume;
* :mod:`~repro.fabric.dispatcher` — :class:`ShardedSweep`, the
  work-stealing dispatcher over long-lived worker processes;
* :mod:`~repro.fabric.supervisor` — worker lifecycle supervision for
  the dispatcher: heartbeat-driven liveness, terminate→kill retirement,
  respawn with incarnation tracking, slab-safe shutdown;
* :mod:`~repro.fabric.faults` — deterministic fault injection
  (:class:`FaultPlan`: worker kills, hangs, poison cells, torn writes)
  so every recovery path is exercised by ordinary pytest;
* :mod:`~repro.fabric.atlas` — merge-on-read reduction of a shard
  directory into the regeneratable tradeoff-atlas artifact (honest
  about quarantined coverage).

``SweepRunner(executor="sharded")`` and ``repro-consensus scenario
sweep --executor sharded`` / ``repro-consensus atlas summarize`` are the
front doors; see ``DESIGN.md`` §3.6.
"""

from repro.fabric.atlas import (
    atlas_summaries,
    build_atlas,
    iter_directory_records,
    write_atlas,
)
from repro.fabric.dispatcher import ShardedSweep
from repro.fabric.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    ServiceFaultPlan,
    ServiceFaultSpec,
    parse_chaos,
    parse_service_chaos,
)
from repro.fabric.manifest import (
    QuarantineLog,
    ShardManifest,
    ShardSpec,
    grid_hash,
    plan_shards,
)
from repro.fabric.shardio import heal_torn_tail, iter_shard_records, load_shard_index
from repro.fabric.shm import ScalarSlab
from repro.fabric.supervisor import Supervisor, WorkerHandle

__all__ = [
    "ShardedSweep",
    "ShardManifest",
    "ShardSpec",
    "QuarantineLog",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "parse_chaos",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "parse_service_chaos",
    "Supervisor",
    "WorkerHandle",
    "plan_shards",
    "grid_hash",
    "ScalarSlab",
    "iter_shard_records",
    "load_shard_index",
    "heal_torn_tail",
    "atlas_summaries",
    "build_atlas",
    "write_atlas",
    "iter_directory_records",
]

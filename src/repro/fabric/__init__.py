"""The sharded sweep fabric: manifests, stealing workers, shm results, atlases.

This package is the distribution layer of the sweep stack — the
architecture the ROADMAP's million-cell tradeoff atlases run on:

* :mod:`~repro.fabric.manifest` — deterministic shard planning plus the
  resumable JSON manifest (shard id → cell range, status, output file,
  content hash);
* :mod:`~repro.fabric.shm` — shared-memory slabs carrying the numeric
  record columns back from workers (only small object columns cross the
  pipe);
* :mod:`~repro.fabric.shardio` — per-shard columnar JSONL files with
  the torn-tail-healing per-cell resume;
* :mod:`~repro.fabric.dispatcher` — :class:`ShardedSweep`, the
  work-stealing dispatcher over long-lived worker processes;
* :mod:`~repro.fabric.atlas` — merge-on-read reduction of a shard
  directory into the regeneratable tradeoff-atlas artifact.

``SweepRunner(executor="sharded")`` and ``repro-consensus scenario
sweep --executor sharded`` / ``repro-consensus atlas summarize`` are the
front doors; see ``DESIGN.md`` §3.6.
"""

from repro.fabric.atlas import (
    atlas_summaries,
    build_atlas,
    iter_directory_records,
    write_atlas,
)
from repro.fabric.dispatcher import ShardedSweep
from repro.fabric.manifest import ShardManifest, ShardSpec, grid_hash, plan_shards
from repro.fabric.shardio import heal_torn_tail, iter_shard_records, load_shard_index
from repro.fabric.shm import ScalarSlab

__all__ = [
    "ShardedSweep",
    "ShardManifest",
    "ShardSpec",
    "plan_shards",
    "grid_hash",
    "ScalarSlab",
    "iter_shard_records",
    "load_shard_index",
    "heal_torn_tail",
    "atlas_summaries",
    "build_atlas",
    "write_atlas",
    "iter_directory_records",
]

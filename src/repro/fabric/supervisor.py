"""Worker lifecycle supervision for the sharded dispatcher.

The dispatcher's scheduling state (shard queues, outstanding slots,
retry bookkeeping) stays in :class:`~repro.fabric.dispatcher.ShardedSweep`;
this module owns the *mechanics* of keeping workers alive:

* :class:`WorkerHandle` — one worker's process, pipe, shared-memory
  slab, shard queue, free result slots, and liveness clock, all in one
  place so replacing a worker swaps a single object.
* :class:`Supervisor` — spawns handles, retires them with
  **terminate → kill escalation** (a wedged worker ignoring SIGTERM
  cannot leave a zombie holding its slab), respawns replacements at the
  same worker index (incarnation + 1, inheriting the queue) up to
  ``max_respawns``, and tears everything down at shutdown — slabs are
  **always** unlinked, even when a join times out.

The worker lifecycle state machine (see DESIGN.md §3.6)::

    spawned ── dispatch ──▶ busy ── result ──▶ idle ──▶ ... ──▶ stopped
       ▲                     │ EOF (died) / liveness timeout (hung)
       │                     ▼
       └── respawn ◀── retired (terminate → kill; slab unlinked)
             │ budget exhausted
             ▼
           dead (queue redistributed; serial fallback if no one is left)
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable

from repro.fabric.shm import DEPTH, ScalarSlab

__all__ = ["WorkerHandle", "Supervisor"]


class WorkerHandle:
    """One shard worker: process, pipe, slab, queue, slots, liveness."""

    __slots__ = (
        "index",
        "incarnation",
        "proc",
        "conn",
        "slab",
        "queue",
        "free_slots",
        "last_seen",
        "alive",
        "_released",
    )

    def __init__(self, index: int, incarnation: int, proc: Any, conn: Any,
                 slab: ScalarSlab, queue: deque) -> None:
        self.index = index
        self.incarnation = incarnation
        self.proc = proc
        self.conn = conn
        self.slab = slab
        self.queue = queue
        self.free_slots: list[int] = list(range(DEPTH))
        self.last_seen = time.monotonic()
        self.alive = True
        self._released = False

    @property
    def busy(self) -> int:
        """Outstanding result slots (0 = idle, safe from liveness reaping)."""
        return DEPTH - len(self.free_slots)


class Supervisor:
    """Spawn, reap, respawn, and tear down the dispatcher's workers.

    Parameters
    ----------
    ctx:
        The ``multiprocessing`` context (pipes come from it).
    capacity:
        Slab capacity (cells) for every worker's :class:`ScalarSlab`.
    spawn:
        ``spawn(child_conn, slab_name, index, incarnation) -> Process``:
        builds and **starts** the worker process.  The dispatcher owns
        the target and its arguments; the supervisor owns the resources.
    max_respawns:
        Total replacement workers allowed across the whole sweep.  Once
        exhausted, :meth:`respawn` returns ``None`` and the dispatcher
        degrades (redistribute, then serial fallback) instead of raising.
    """

    #: Grace given to a politely stopped worker before escalation.
    STOP_GRACE_S = 5.0
    #: Grace after ``terminate()`` before escalating to ``kill()``.
    TERM_GRACE_S = 2.0
    #: Grace after ``kill()``; SIGKILL cannot be ignored, so this only
    #: bounds scheduler latency.
    KILL_GRACE_S = 5.0

    def __init__(self, *, ctx: Any, capacity: int,
                 spawn: Callable[[Any, str, int, int], Any],
                 max_respawns: int) -> None:
        self._ctx = ctx
        self._capacity = capacity
        self._spawn = spawn
        self.max_respawns = max_respawns
        #: Replacement workers spawned so far.
        self.respawns = 0
        #: Position == worker index; respawns replace in place, retired
        #: workers stay (``alive=False``) so their queues can be drained.
        self.handles: list[WorkerHandle] = []

    # -- lifecycle ---------------------------------------------------------

    def _make(self, index: int, incarnation: int, queue: deque) -> WorkerHandle:
        slab = ScalarSlab.create(self._capacity)
        parent_conn, child_conn = self._ctx.Pipe()
        try:
            proc = self._spawn(child_conn, slab.name, index, incarnation)
        except BaseException:
            parent_conn.close()
            child_conn.close()
            slab.unlink()
            raise
        child_conn.close()
        return WorkerHandle(index, incarnation, proc, parent_conn, slab, queue)

    def start(self, n_workers: int) -> list[WorkerHandle]:
        """Spawn the initial fleet (incarnation 0, empty queues)."""
        self.handles = [self._make(i, 0, deque()) for i in range(n_workers)]
        return self.handles

    def live(self) -> list[WorkerHandle]:
        return [h for h in self.handles if h.alive]

    def hung(self, timeout: float, now: float | None = None) -> list[WorkerHandle]:
        """Live workers with outstanding work and no sign of life lately."""
        now = time.monotonic() if now is None else now
        return [
            h for h in self.handles
            if h.alive and h.busy > 0 and now - h.last_seen > timeout
        ]

    def retire(self, handle: WorkerHandle) -> None:
        """Kill a worker (terminate → kill escalation) and free its resources.

        Never raises and never hangs past the graces: a worker that
        ignores SIGTERM gets SIGKILL, and the slab is unlinked
        regardless, so no zombie can pin shared memory.
        """
        handle.alive = False
        proc = handle.proc
        if proc.is_alive():
            proc.terminate()
            proc.join(self.TERM_GRACE_S)
            if proc.is_alive():
                proc.kill()
                proc.join(self.KILL_GRACE_S)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed by EOF handling
            pass
        self._release(handle)

    def respawn(self, handle: WorkerHandle) -> WorkerHandle | None:
        """Replace a retired worker in place, or ``None`` if out of budget.

        The replacement keeps the worker index (the dispatcher's
        bookkeeping is index-keyed) and inherits the queue; its
        incarnation increments so incarnation-scoped injected faults do
        not re-fire in the replacement.
        """
        if self.respawns >= self.max_respawns:
            return None
        self.respawns += 1
        replacement = self._make(handle.index, handle.incarnation + 1, handle.queue)
        self.handles[handle.index] = replacement
        return replacement

    # -- teardown ----------------------------------------------------------

    def _release(self, handle: WorkerHandle) -> None:
        if not handle._released:
            handle._released = True
            handle.slab.unlink()

    def shutdown(self) -> None:
        """Stop every worker and free every slab, escalating as needed.

        Polite stop first (idle workers exit immediately), then
        terminate, then kill — and slabs are unlinked even for a worker
        whose join timed out, so an interrupted sweep cannot leak
        shared-memory segments.
        """
        for handle in self.handles:
            if handle.alive:
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for handle in self.handles:
            if handle.alive and handle.proc.is_alive():
                handle.proc.join(self.STOP_GRACE_S)
        for handle in self.handles:
            try:
                if handle.proc.is_alive():
                    handle.proc.terminate()
                    handle.proc.join(self.TERM_GRACE_S)
                    if handle.proc.is_alive():
                        handle.proc.kill()
                        handle.proc.join(self.KILL_GRACE_S)
            finally:
                try:
                    handle.conn.close()
                except OSError:
                    pass
                self._release(handle)

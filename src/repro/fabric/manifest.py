"""Shard planning and the resumable shard manifest.

A sharded sweep splits an expanded grid into contiguous, deterministic
**shards** — the durability and dispatch unit of the fabric.  Each shard
owns one columnar JSONL output file; the **manifest** (``manifest.json``
in the shard directory) records, per shard: its cell range, output file,
content hash, and completion status.

The manifest is what makes a killed sweep resume *shard-by-shard*: a
rerun reads the manifest, skips every ``"done"`` shard without touching
its file, and hands only the unfinished shards to workers (which then
apply the per-cell torn-tail-healing resume *inside* their shard file).
Because shard boundaries are pinned by the manifest — not re-derived
from the rerun's worker count — a sweep can resume under a different
``processes``/``shards`` setting and still line up with its files.

Content hashes pin identity: each shard's hash covers the canonical keys
of exactly its cells, and the grid hash covers all of them, so resuming
a directory against a *different* grid is rejected instead of silently
mixing results (:func:`ShardManifest.load_or_create`).

Manifest updates are atomic (temp file + ``os.replace``); a kill between
updates at worst loses the *status* of a finished shard, and the per-cell
resume inside that shard then re-runs nothing — the keys are already in
its file.

A shard may also finish **quarantined**: every cell ran except the ones
the supervisor isolated as poison (see
:mod:`repro.fabric.dispatcher`).  Those cells are listed in
``quarantine.json`` next to the manifest (:class:`QuarantineLog`) with
the failing key and truncated traceback, and they stay quarantined on
resume until the log is deleted — honest partial coverage beats
silently re-running a cell that kills workers.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ShardSpec",
    "ShardManifest",
    "QuarantineLog",
    "plan_shards",
    "grid_hash",
    "shard_hash",
]

#: File name of the manifest inside a shard directory.
MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = 1

#: File name of the poison-cell quarantine log inside a shard directory.
QUARANTINE_NAME = "quarantine.json"
QUARANTINE_SCHEMA = 1


def _digest(keys: Sequence[str]) -> str:
    h = hashlib.sha256()
    for key in keys:
        h.update(key.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()[:16]


def grid_hash(keys: Sequence[str]) -> str:
    """Stable identity of a whole expanded grid (canonical cell keys)."""
    return _digest(keys)


def shard_hash(keys: Sequence[str], start: int, stop: int) -> str:
    """Stable identity of one shard's cell range."""
    return _digest(keys[start:stop])


@dataclass(slots=True)
class ShardSpec:
    """One shard: a contiguous cell range bound to one output file."""

    id: int
    start: int  # first cell index (inclusive)
    stop: int  # last cell index (exclusive)
    file: str  # output file name, relative to the shard directory
    content_hash: str  # hash over the canonical keys of cells[start:stop]
    status: str = "pending"  # "pending" | "done" | "quarantined"

    @property
    def cells(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "start": self.start,
            "stop": self.stop,
            "file": self.file,
            "content_hash": self.content_hash,
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(
            id=int(data["id"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            file=str(data["file"]),
            content_hash=str(data["content_hash"]),
            status=str(data["status"]),
        )


def plan_shards(keys: Sequence[str], shard_count: int) -> list[ShardSpec]:
    """Deterministically partition a grid into near-equal contiguous shards.

    ``shard_count`` is clamped to ``[1, len(keys)]``; the first
    ``len(keys) % shard_count`` shards get one extra cell.  The plan is a
    pure function of ``(keys, shard_count)`` — the same grid always
    shards the same way, which is what lets the manifest's content
    hashes validate a resume.
    """
    n = len(keys)
    if n == 0:
        raise ConfigurationError("cannot shard an empty grid")
    shard_count = max(1, min(shard_count, n))
    base, extra = divmod(n, shard_count)
    specs: list[ShardSpec] = []
    start = 0
    for i in range(shard_count):
        stop = start + base + (1 if i < extra else 0)
        specs.append(ShardSpec(
            id=i,
            start=start,
            stop=stop,
            file=f"shard-{i:04d}.jsonl",
            content_hash=shard_hash(keys, start, stop),
        ))
        start = stop
    return specs


class ShardManifest:
    """The on-disk shard plan of one sweep directory, with atomic updates."""

    __slots__ = ("directory", "cells", "grid", "shards")

    def __init__(self, directory: str, cells: int, grid: str,
                 shards: list[ShardSpec]) -> None:
        self.directory = directory
        self.cells = cells
        self.grid = grid
        self.shards = shards

    @property
    def path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        """Atomically rewrite the manifest (temp file + rename)."""
        doc = {
            "schema": MANIFEST_SCHEMA,
            "cells": self.cells,
            "grid_hash": self.grid,
            "shards": [s.to_dict() for s in self.shards],
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    def mark_done(self, shard_id: int) -> None:
        """Flip one shard to ``"done"`` and persist the manifest."""
        self.shards[shard_id].status = "done"
        self.save()

    def mark_quarantined(self, shard_id: int) -> None:
        """Flip one shard to ``"quarantined"``: complete except for the
        poison cells recorded in the directory's :class:`QuarantineLog`."""
        self.shards[shard_id].status = "quarantined"
        self.save()

    @classmethod
    def load(cls, directory: str) -> "ShardManifest":
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read shard manifest {path!r}: {exc}"
            ) from exc
        if doc.get("schema") != MANIFEST_SCHEMA:
            raise ConfigurationError(
                f"shard manifest {path!r} has schema "
                f"{doc.get('schema')!r}, expected {MANIFEST_SCHEMA}"
            )
        return cls(
            directory=directory,
            cells=int(doc["cells"]),
            grid=str(doc["grid_hash"]),
            shards=[ShardSpec.from_dict(d) for d in doc["shards"]],
        )

    @classmethod
    def load_or_create(
        cls, directory: str, keys: Sequence[str], shard_count: int
    ) -> "ShardManifest":
        """Resume an existing plan or lay down a fresh one.

        An existing manifest **wins over the requested shard count**: its
        boundaries are what the shard files on disk were written against,
        so a resume validates the manifest's own ranges against the
        current grid (cell count, grid hash, per-shard content hashes)
        and reuses them.  A mismatch means the directory belongs to a
        different grid — refusing beats silently mixing two sweeps'
        results in one atlas.
        """
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            manifest = cls.load(directory)
            if manifest.cells != len(keys) or manifest.grid != grid_hash(keys):
                raise ConfigurationError(
                    f"shard directory {directory!r} was planned for a "
                    f"different grid ({manifest.cells} cells, hash "
                    f"{manifest.grid}) than the one being swept "
                    f"({len(keys)} cells, hash {grid_hash(keys)}); "
                    f"point the sweep at a fresh directory"
                )
            for spec in manifest.shards:
                if spec.content_hash != shard_hash(keys, spec.start, spec.stop):
                    raise ConfigurationError(
                        f"shard {spec.id} of {directory!r} does not match "
                        f"the current grid (content hash mismatch); the "
                        f"directory belongs to a different cell ordering"
                    )
            return manifest
        manifest = cls(
            directory=directory,
            cells=len(keys),
            grid=grid_hash(keys),
            shards=plan_shards(keys, shard_count),
        )
        manifest.save()
        return manifest


class QuarantineLog:
    """The durable ledger of poison cells excluded from a sweep.

    One entry per quarantined cell: its global grid index, owning shard,
    canonical scenario key, truncated failure traceback, and how many
    dispatch attempts it burned before the supervisor gave up.  Saves
    are atomic like the manifest's; :meth:`add` is idempotent per cell.

    Quarantine is sticky across resumes: a rerun of the directory skips
    the listed cells wholesale.  Clearing it is an explicit user action
    (delete ``quarantine.json`` and re-run the sweep).
    """

    #: Keep tracebacks useful without letting one pathological repr
    #: balloon the log.
    MAX_ERROR_CHARS = 2000

    __slots__ = ("directory", "entries")

    def __init__(self, directory: str, entries: dict[int, dict] | None = None) -> None:
        self.directory = directory
        #: Global cell index → entry dict.
        self.entries: dict[int, dict] = entries if entries is not None else {}

    @property
    def path(self) -> str:
        return os.path.join(self.directory, QUARANTINE_NAME)

    def __len__(self) -> int:
        return len(self.entries)

    def cells(self) -> set[int]:
        """The quarantined global cell indices."""
        return set(self.entries)

    def add(
        self, *, cell: int, shard: int, key: str, error: str, attempts: int
    ) -> None:
        """Record (and persist) one quarantined cell."""
        self.entries[cell] = {
            "cell": cell,
            "shard": shard,
            "key": key,
            "error": error[-self.MAX_ERROR_CHARS:],
            "attempts": attempts,
        }
        self.save()

    def save(self) -> None:
        """Atomically rewrite the log (temp file + rename)."""
        doc = {
            "schema": QUARANTINE_SCHEMA,
            "cells": [self.entries[i] for i in sorted(self.entries)],
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=1)
            fh.write("\n")
        os.replace(tmp, self.path)

    @classmethod
    def load(cls, directory: str) -> "QuarantineLog":
        """Load the directory's log; a missing file is an empty log."""
        path = os.path.join(directory, QUARANTINE_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return cls(directory)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read quarantine log {path!r}: {exc}"
            ) from exc
        entries = {int(e["cell"]): e for e in doc.get("cells", ())}
        return cls(directory, entries)

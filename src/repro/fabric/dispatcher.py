"""The sharded sweep executor: work-stealing dispatch over supervised workers.

:class:`ShardedSweep` runs an expanded grid as shards (see
:mod:`repro.fabric.manifest`) over long-lived worker processes:

* **Dispatch** — every worker owns a queue of shards (round-robin
  initial assignment); an idle worker first drains its own queue, then
  **steals** the coldest shard from the longest remaining queue
  (classic work-stealing, with the bookkeeping centralized in the
  parent so no cross-process locks exist).  ``stolen_chunks`` counts
  the steals.
* **Result return** — the numeric record columns come back through a
  per-worker :class:`~repro.fabric.shm.ScalarSlab`
  (``multiprocessing.shared_memory``), and only the small object
  columns (decisions, decision rounds, crash lists, violations,
  backend names) cross the pipe — the result path the PR 5 profile
  showed dominated by pickling is near-zero-copy.  Two slots per slab
  let the dispatcher pipeline: a worker computes its next shard while
  the parent drains the previous one.
* **Persistence** — each worker appends columnar batch lines to *its
  shard's own file* as it goes (one flush per chunk), so JSONL encoding
  runs inside the workers, in parallel with compute, instead of
  serially in the parent.
* **Resume** — the manifest skips ``"done"`` shards wholesale; a
  partially-written shard re-runs only the cells missing from its file
  (per-cell torn-tail-healing resume, worker side).
* **Supervision** — a dead worker (pipe EOF) or a hung one (no
  result/heartbeat within ``liveness_timeout`` while holding work) is
  killed with terminate→kill escalation, its outstanding shards are
  requeued, its slab is retired, and a replacement is spawned at the
  same index (incarnation + 1) up to ``max_respawns``
  (:mod:`repro.fabric.supervisor`).  A shard that keeps failing is
  retried with exponential backoff up to ``max_shard_retries`` times;
  after that an attributed failing cell is **quarantined**
  (``quarantine.json`` — :class:`~repro.fabric.manifest.QuarantineLog`)
  and the rest of the shard completes, while an unattributed repeat
  killer is probed cell-by-cell in the parent to isolate the poison.
  If the respawn budget runs out, remaining shards drain in-process
  (serial fallback) — the sweep degrades, it does not raise.
* **Fault injection** — a bound :class:`~repro.fabric.faults.FaultPlan`
  rides the worker spawn args and injects worker death, hangs, poison
  cells, and torn writes at deterministic points, so every recovery
  path above is exercised by ordinary pytest (``tests/fabric/``).

Cell order inside a shard is the grid order, so the record set — and
the atlas reduced from the shard files — is byte-identical across
worker counts, steal schedules, and kill/resume histories (pinned by
``tests/fabric/``); quarantined cells are simply absent (``None`` in
collected results).

The cell wire format is PR 5's :func:`CellDelta
<repro.scenarios.scenario.scenario_delta>` against one shared base
scenario, and workers reuse engines through an
:class:`~repro.scenarios.execute.EngineLease` exactly like the pool
executor; the parity discipline carries over verbatim.
"""

from __future__ import annotations

import os
import tempfile
import time
import traceback
from collections import deque
from heapq import heappop, heappush
from itertools import count as _counter
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.fabric.faults import FaultPlan
from repro.fabric.manifest import QuarantineLog, ShardManifest, ShardSpec
from repro.fabric.shardio import append_batch, heal_torn_tail, load_shard_index
from repro.fabric.shm import ScalarSlab
from repro.fabric.supervisor import Supervisor, WorkerHandle
from repro.scenarios.execute import EngineLease, execute
from repro.scenarios.record import RecordBatch, RunRecord
from repro.scenarios.scenario import Scenario, scenario_delta, scenario_key

__all__ = ["ShardedSweep"]

#: Exit code of a fault-injected worker death (distinguishable from
#: crashes in test output; the parent treats any death the same way).
_FAULT_EXIT = 17

#: Backoff ceiling: retries are about letting transients clear, not
#: about stalling a sweep.
_MAX_BACKOFF_S = 2.0


# -- worker side -------------------------------------------------------------


class _CellFailure(Exception):
    """A cell raised inside a shard: carries the global index + traceback."""

    def __init__(self, cell: int, tb: str) -> None:
        super().__init__(f"cell {cell} failed")
        self.cell = cell
        self.tb = tb


def _shard_chunk_size(cells: int, chunk_size: int | None) -> int:
    """Flush unit inside a shard: ~4 flushes per shard, bounded 8..64."""
    if chunk_size is not None:
        return chunk_size
    return max(8, min(64, -(-cells // 4)))


def _run_shard(
    base: Scenario,
    base_dict: dict[str, Any],
    lease: EngineLease,
    path: str,
    deltas: Sequence[dict[str, Any]],
    chunk_size: int | None,
    slab: ScalarSlab,
    slot: int,
    *,
    start: int = 0,
    skip: frozenset[int] = frozenset(),
    attempt: int = 0,
    faults: FaultPlan | None = None,
    torn: bool = False,
    notify: Any = None,
) -> tuple[int, int, float, dict[str, list]]:
    """Execute one shard: per-cell resume, chunked appends, slab publish.

    ``skip`` holds quarantined *global* cell indices — those cells are
    not run, not written, and not published (the parent pads their
    result positions with ``None``).  A cell that raises aborts the
    shard with :class:`_CellFailure` *after* flushing completed work,
    so retries only re-run from the failure onward.
    """
    if os.path.exists(path):
        done = load_shard_index(path)
        heal_torn_tail(path)
    else:
        done = {}
    flush_every = _shard_chunk_size(len(deltas), chunk_size)
    started = time.perf_counter()
    records: list[RunRecord] = []
    buffer: list[RunRecord] = []
    buffer_deltas: list[dict[str, Any]] = []
    executed = resumed = flushed = 0
    with open(path, "a", encoding="utf-8") as fh:

        def flush() -> None:
            nonlocal flushed
            if not buffer:
                return
            append_batch(fh, buffer, base_dict, buffer_deltas)
            buffer.clear()
            buffer_deltas.clear()
            flushed += 1
            if torn and flushed == 1:
                # Injected torn write: leave a half line (no newline) and
                # die — the retry must heal the tail before resuming.
                fh.write('{"torn"')
                fh.flush()
                os._exit(_FAULT_EXIT)
            if notify is not None:
                notify()

        for offset, delta in enumerate(deltas):
            index = start + offset
            if index in skip:
                continue
            cell = base.with_(**delta) if delta else base
            if done:  # resume: key lookups only when the file had records
                prior = done.get(scenario_key(cell))
                if prior is not None:
                    records.append(prior)
                    resumed += 1
                    continue
            try:
                if faults is not None:
                    faults.check_cell(index, attempt)
                record = execute(cell, trace=False, lease=lease).normalized()
            except Exception:
                flush()  # persist finished cells before reporting the poison
                raise _CellFailure(index, traceback.format_exc()) from None
            records.append(record)
            buffer.append(record)
            buffer_deltas.append(delta)
            executed += 1
            if len(buffer) >= flush_every:
                flush()
        flush()
    elapsed = time.perf_counter() - started
    batch = RecordBatch.from_records(records)
    slab.write(slot, batch)
    # Only the variable-width object columns ride the pipe; scenarios
    # never return at all (the parent knows the cells it dispatched).
    objects = {
        "backend": batch.backend,
        "decisions": batch.decisions,
        "decision_rounds": batch.decision_rounds,
        "crashed": batch.crashed,
        "violations": batch.violations,
    }
    return executed, resumed, elapsed, objects


def _worker_main(
    conn,
    shm_name: str,
    capacity: int,
    base_dict: dict[str, Any],
    directory: str,
    chunk_size: int | None,
    faults: FaultPlan | None = None,
    worker_id: int = 0,
    incarnation: int = 0,
    heartbeat: bool = False,
) -> None:
    """Long-lived shard worker: recv shard tasks until ``stop`` (or EOF).

    A failing shard no longer kills the worker: the failure (with the
    guilty cell's global index when attributable) goes back over the
    pipe and the worker takes the next task on a fresh engine lease.
    ``faults`` (already bound) injects death/hang/torn/poison at the
    documented points; ``heartbeat`` adds an ``("hb", shard_id)`` pipe
    message per flushed chunk for the parent's liveness clock.
    """
    slab = ScalarSlab.attach(shm_name, capacity)
    base = Scenario.from_dict(base_dict)
    lease = EngineLease()
    completed = 0
    if faults is not None and faults.kill_now(completed, worker_id, incarnation):
        os._exit(_FAULT_EXIT)  # kill with after=0: die before the first task
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent died; the manifest makes the rerun resume
            if msg[0] == "stop":
                return
            _, shard_id, slot, file_name, start, deltas, skip, attempt = msg
            torn = False
            if faults is not None:
                pause = faults.hang_for(shard_id, worker_id, incarnation)
                if pause is not None:
                    time.sleep(pause)
                torn = faults.torn_on(shard_id, worker_id, incarnation)
            notify = None
            if heartbeat:
                def notify(sid=shard_id):  # noqa: E306 - per-shard closure
                    conn.send(("hb", sid))
            try:
                result = _run_shard(
                    base, base_dict, lease, os.path.join(directory, file_name),
                    deltas, chunk_size, slab, slot,
                    start=start, skip=frozenset(skip), attempt=attempt,
                    faults=faults, torn=torn, notify=notify,
                )
            except _CellFailure as fail:
                conn.send(("error", shard_id, slot, fail.cell, fail.tb))
                lease = EngineLease()  # drop possibly mid-run engine state
                continue
            except Exception:
                conn.send(("error", shard_id, slot, None, traceback.format_exc()))
                lease = EngineLease()
                continue
            conn.send(("shard", shard_id, slot, *result))
            completed += 1
            if faults is not None and faults.kill_now(
                completed, worker_id, incarnation
            ):
                os._exit(_FAULT_EXIT)
    finally:
        slab.close()
        conn.close()


# -- parent side -------------------------------------------------------------


class ShardedSweep:
    """Run scenario cells as manifest-backed shards over stealing workers.

    Parameters
    ----------
    cells:
        The grid cells, in grid order.  Canonical keys must be unique
        (:class:`~repro.scenarios.sweep.SweepRunner` dedupes before
        delegating here).
    directory:
        The shard directory (manifest + per-shard files).  ``None`` runs
        in an ephemeral temporary directory — the fabric machinery with
        no durable artifact.
    processes:
        Worker count (default ``os.cpu_count()``), capped at the number
        of unfinished shards.
    shards:
        Shard count for a *fresh* plan (default: ~4 per worker, so
        stealing has slack).  An existing manifest's plan always wins —
        resume must line up with the files already on disk.
    chunk_size:
        Flush unit inside a shard (default: ~4 flushes per shard,
        bounded 8..64 cells).
    keys:
        Precomputed canonical keys, one per cell, when the caller
        already paid for them (``SweepRunner`` computes keys to dedupe
        before delegating — recomputing ~1µs-per-cell hashes twice is
        measurable at atlas scale).  ``None`` computes them here.
    collect:
        ``True`` returns every cell's record (merge-on-read over done
        shards; quarantined cells come back as ``None``); ``False``
        skips collection entirely — completed shard files are *never
        read* — for atlas-scale sweeps reduced later by
        :mod:`repro.fabric.atlas`.
    faults:
        A :class:`~repro.fabric.faults.FaultPlan` to inject
        deterministic failures (tests / ``--chaos``); ``None`` (the
        default) adds zero per-cell work.
    liveness_timeout:
        Seconds without any pipe traffic (results or per-chunk
        heartbeats) after which a worker *holding work* is declared
        hung and replaced.  ``None`` (default) disables hang detection;
        death detection (pipe EOF) is always on.
    max_respawns:
        Replacement-worker budget for the whole sweep (default: the
        worker count).  Exhausting it degrades to in-process draining
        instead of raising.
    max_shard_retries:
        Times a shard may fail before its failure is isolated
        (quarantine the attributed cell, or probe cell-by-cell).
    retry_backoff_s:
        Base of the exponential retry backoff (doubles per failure,
        capped at 2s).
    """

    def __init__(
        self,
        cells: Iterable[Scenario],
        *,
        directory: str | os.PathLike[str] | None = None,
        processes: int | None = None,
        shards: int | None = None,
        chunk_size: int | None = None,
        keys: Sequence[str] | None = None,
        collect: bool = True,
        faults: FaultPlan | None = None,
        liveness_timeout: float | None = None,
        max_respawns: int | None = None,
        max_shard_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> None:
        self.cells = list(cells)
        if keys is not None and len(keys) != len(self.cells):
            raise ConfigurationError(
                f"keys/cells length mismatch: {len(keys)} keys for "
                f"{len(self.cells)} cells"
            )
        self.keys = list(keys) if keys is not None else None
        self.directory = os.fspath(directory) if directory is not None else None
        if processes is not None and processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        if shards is not None and shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if liveness_timeout is not None and liveness_timeout <= 0:
            raise ConfigurationError(
                f"liveness_timeout must be > 0, got {liveness_timeout}"
            )
        if max_respawns is not None and max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {max_respawns}"
            )
        if max_shard_retries < 0:
            raise ConfigurationError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.processes = processes
        self.shards = shards
        self.chunk_size = chunk_size
        self.collect = collect
        self.faults = faults
        self.liveness_timeout = liveness_timeout
        self.max_respawns = max_respawns
        self.max_shard_retries = max_shard_retries
        self.retry_backoff_s = retry_backoff_s
        #: Cells actually executed / loaded back by the last :meth:`run`.
        self.executed = 0
        self.resumed = 0
        #: Shards skipped via the manifest vs dispatched to workers.
        self.resumed_shards = 0
        self.fresh_shards = 0
        #: Shards an idle worker stole from another worker's queue.
        self.stolen_chunks = 0
        #: Supervision counters: shard failures handled (requeues),
        #: replacement workers spawned, quarantined cells on disk.
        self.retries = 0
        self.respawns = 0
        self.quarantined = 0
        #: Per-shard stats dicts (id, cells, executed, resumed, elapsed_s,
        #: cells_per_s, worker, stolen, retries, quarantined), shard-id order.
        self.shard_stats: list[dict[str, Any]] = []
        self.elapsed = 0.0

    # -- public ------------------------------------------------------------

    def run(self) -> list[RunRecord | None] | None:
        """Run/resume the sweep; records in cell order (``None`` per
        quarantined cell; ``None`` overall if not collecting)."""
        started = time.perf_counter()
        self.executed = self.resumed = 0
        self.resumed_shards = self.fresh_shards = self.stolen_chunks = 0
        self.retries = self.respawns = self.quarantined = 0
        self.shard_stats = []
        tmp = None
        directory = self.directory
        if directory is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            directory = tmp.name
        try:
            result = self._run_in(directory)
        finally:
            if tmp is not None:
                tmp.cleanup()
            self.elapsed = time.perf_counter() - started
        return result

    # -- internals ---------------------------------------------------------

    def _run_in(self, directory: str) -> list[RunRecord | None] | None:
        cells = self.cells
        if not cells:
            return [] if self.collect else None
        keys = self.keys or [scenario_key(cell) for cell in cells]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                "sharded sweeps need unique cells (duplicate scenario keys "
                "in the grid); SweepRunner dedupes before delegating"
            )
        workers = self.processes or os.cpu_count() or 2
        shard_count = self.shards or max(1, workers * 4)
        manifest = ShardManifest.load_or_create(directory, keys, shard_count)
        quarantine = QuarantineLog.load(directory)
        # Quarantine is sticky: global cell index sets per owning shard.
        skips: dict[int, set[int]] = {}
        for cell_index, entry in quarantine.entries.items():
            skips.setdefault(int(entry["shard"]), set()).add(cell_index)

        results: list[RunRecord | None] | None = (
            [None] * len(cells) if self.collect else None
        )
        pending: list[ShardSpec] = []
        for spec in manifest.shards:
            path = os.path.join(directory, spec.file)
            if spec.status in ("done", "quarantined") and os.path.exists(path):
                skip = skips.get(spec.id, set())
                if self._collect_done_shard(spec, path, keys, results, skip):
                    continue
                spec.status = "pending"  # file incomplete: fall through
            pending.append(spec)
        if pending:
            self._dispatch(
                directory, manifest, pending, results, workers, keys,
                quarantine, skips,
            )
        self.quarantined = len(quarantine)
        self.shard_stats.sort(key=lambda stat: stat["id"])
        return results  # type: ignore[return-value]

    def _collect_done_shard(
        self,
        spec: ShardSpec,
        path: str,
        keys: list[str],
        results: list[RunRecord | None] | None,
        skip: set[int],
    ) -> bool:
        """Account (and, when collecting, load) one finished shard.

        Quarantined cells stay ``None`` in the results.  Returns False
        when the file no longer covers the shard's non-quarantined
        cells — the shard is then demoted and re-run (its surviving
        records still resume per-cell inside the worker).
        """
        if results is not None:
            index = load_shard_index(path)
            loaded: list[RunRecord | None] = []
            for i in range(spec.start, spec.stop):
                if i in skip:
                    loaded.append(None)
                    continue
                record = index.get(keys[i])
                if record is None:
                    return False
                loaded.append(record)
            results[spec.start:spec.stop] = loaded
        # collect=False trusts the manifest outright: done shards are
        # never read here — that is the merge-on-read contract the atlas
        # layer depends on for million-cell sweeps.
        self.resumed += spec.cells - len(skip)
        self.resumed_shards += 1
        self.shard_stats.append({
            "id": spec.id,
            "cells": spec.cells,
            "executed": 0,
            "resumed": spec.cells - len(skip),
            "elapsed_s": 0.0,
            "cells_per_s": 0.0,
            "worker": None,
            "stolen": False,
            "retries": 0,
            "quarantined": len(skip),
        })
        return True

    def _dispatch(
        self,
        directory: str,
        manifest: ShardManifest,
        pending: list[ShardSpec],
        results: list[RunRecord | None] | None,
        workers: int,
        keys: list[str],
        quarantine: QuarantineLog,
        skips: dict[int, set[int]],
    ) -> None:
        cells = self.cells
        base = cells[0]
        base_dict = base.to_dict()
        n_workers = max(1, min(workers, len(pending)))
        capacity = max(spec.cells for spec in pending)
        self.fresh_shards = len(pending)
        liveness = self.liveness_timeout
        max_retries = self.max_shard_retries
        backoff = self.retry_backoff_s
        faults = (
            self.faults.bind(
                workers=n_workers, shards=len(manifest.shards), cells=len(cells)
            )
            if self.faults is not None
            else None
        )

        ctx = get_context()

        def spawn(child_conn, slab_name: str, index: int, incarnation: int):
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, slab_name, capacity, base_dict, directory,
                      self.chunk_size, faults, index, incarnation,
                      liveness is not None),
                daemon=True,
            )
            proc.start()
            return proc

        sup = Supervisor(
            ctx=ctx,
            capacity=capacity,
            spawn=spawn,
            max_respawns=(
                self.max_respawns if self.max_respawns is not None else n_workers
            ),
        )

        remaining = len(pending)
        outstanding: dict[tuple[int, int], tuple[ShardSpec, bool]] = {}
        attempts: dict[int, int] = {}  # shard id → failures this retry window
        failures: dict[int, int] = {}  # shard id → failures, cumulative
        delayed: list[tuple[float, int, ShardSpec]] = []  # backoff heap
        seq = _counter()  # heap tiebreak (ShardSpec is not orderable)
        probe_lease: list[EngineLease] = []  # parent-side lease, lazy

        def next_spec(handle: WorkerHandle) -> tuple[ShardSpec | None, bool]:
            if handle.queue:
                return handle.queue.popleft(), False
            live = sup.live()
            victim = max(live, key=lambda h: len(h.queue), default=None)
            if victim is not None and victim.queue:
                self.stolen_chunks += 1
                return victim.queue.pop(), True  # coldest end of the queue
            return None, False

        def dispatch_to(handle: WorkerHandle) -> None:
            while handle.free_slots:
                spec, stolen = next_spec(handle)
                if spec is None:
                    return
                slot = handle.free_slots.pop()
                deltas = [
                    scenario_delta(base, cells[i])
                    for i in range(spec.start, spec.stop)
                ]
                skip = sorted(skips.get(spec.id, ()))
                try:
                    handle.conn.send((
                        "shard", spec.id, slot, spec.file, spec.start,
                        deltas, skip, attempts.get(spec.id, 0),
                    ))
                except (BrokenPipeError, OSError):
                    # The worker died between results; give the shard and
                    # the slot back and let the wait loop reap it (EOF).
                    handle.free_slots.append(slot)
                    handle.queue.appendleft(spec)
                    return
                outstanding[(handle.index, slot)] = (spec, stolen)

        def finish_shard(
            spec: ShardSpec,
            shard_records: list[RunRecord] | None,
            executed: int,
            resumed: int,
            elapsed: float,
            worker: int | None,
            stolen: bool,
        ) -> None:
            nonlocal remaining
            skip = skips.get(spec.id, set())
            if results is not None and shard_records is not None:
                padded: list[RunRecord | None] = []
                it = iter(shard_records)
                for i in range(spec.start, spec.stop):
                    padded.append(None if i in skip else next(it))
                results[spec.start:spec.stop] = padded
            if skip:
                manifest.mark_quarantined(spec.id)
            else:
                manifest.mark_done(spec.id)
            self.executed += executed
            self.resumed += resumed
            self.shard_stats.append({
                "id": spec.id,
                "cells": spec.cells,
                "executed": executed,
                "resumed": resumed,
                "elapsed_s": elapsed,
                "cells_per_s": spec.cells / elapsed if elapsed > 0 else 0.0,
                "worker": worker,
                "stolen": stolen,
                "retries": failures.get(spec.id, 0),
                "quarantined": len(skip),
            })
            remaining -= 1

        def quarantine_cell(spec: ShardSpec, cell: int, tb: str, n: int) -> None:
            skips.setdefault(spec.id, set()).add(cell)
            quarantine.add(
                cell=cell, shard=spec.id, key=keys[cell], error=tb, attempts=n,
            )

        def probe_shard(spec: ShardSpec) -> None:
            """Drain one shard in the parent, isolating poison per cell.

            Degenerate bisection: cells resume per-cell from the shard
            file, so probing one at a time runs each surviving cell at
            most once while pinning blame exactly.  Used when a shard
            exhausts retries without an attributed cell, and as the
            serial fallback when no workers are left.
            """
            path = os.path.join(directory, spec.file)
            if os.path.exists(path):
                done = load_shard_index(path)
                heal_torn_tail(path)
            else:
                done = {}
            skip = skips.get(spec.id, set())
            attempt = max(attempts.get(spec.id, 0), max_retries)
            shard_records: list[RunRecord] = []
            executed = resumed = 0
            started = time.perf_counter()
            with open(path, "a", encoding="utf-8") as fh:
                for i in range(spec.start, spec.stop):
                    if i in skip:
                        continue
                    prior = done.get(keys[i]) if done else None
                    if prior is not None:
                        shard_records.append(prior)
                        resumed += 1
                        continue
                    if not probe_lease:
                        probe_lease.append(EngineLease())
                    try:
                        if faults is not None:
                            faults.check_cell(i, attempt)
                        record = execute(
                            cells[i], trace=False, lease=probe_lease[0]
                        ).normalized()
                    except Exception:
                        quarantine_cell(
                            spec, i, traceback.format_exc(),
                            attempts.get(spec.id, 0) + 1,
                        )
                        skip = skips[spec.id]
                        continue
                    append_batch(
                        fh, [record], base_dict,
                        [scenario_delta(base, cells[i])],
                    )
                    shard_records.append(record)
                    executed += 1
            finish_shard(
                spec, shard_records, executed, resumed,
                time.perf_counter() - started, None, False,
            )

        def shard_failed(spec: ShardSpec, cell: int | None, tb: str) -> None:
            """Route one shard failure: backoff retry, quarantine, or probe."""
            n = attempts.get(spec.id, 0) + 1
            failures[spec.id] = failures.get(spec.id, 0) + 1
            self.retries += 1
            if n <= max_retries:
                attempts[spec.id] = n
                delay = min(backoff * (2 ** (n - 1)), _MAX_BACKOFF_S)
                heappush(delayed, (time.monotonic() + delay, next(seq), spec))
                return
            if cell is not None:
                # Attributed poison: quarantine the cell, finish the rest.
                quarantine_cell(spec, cell, tb, n)
                attempts[spec.id] = 0
                heappush(delayed, (time.monotonic(), next(seq), spec))
                return
            # Repeat killer with no attribution: isolate it in-process.
            probe_shard(spec)

        def reap(handle: WorkerHandle, reason: str) -> None:
            """Retire a dead/hung worker, requeue its work, respawn."""
            lost = [
                outstanding.pop(key)
                for key in [k for k in outstanding if k[0] == handle.index]
            ]
            sup.retire(handle)
            replacement = sup.respawn(handle)
            if replacement is None:
                live = sup.live()
                while handle.queue and live:
                    target = min(live, key=lambda h: len(h.queue))
                    target.queue.append(handle.queue.popleft())
                # No live workers: the queue stays put for the serial drain.
            for spec, _stolen in lost:
                shard_failed(spec, None, reason)

        try:
            handles = sup.start(n_workers)
            for i, spec in enumerate(pending):
                handles[i % n_workers].queue.append(spec)
            for handle in handles:
                dispatch_to(handle)
            while remaining:
                live = sup.live()
                if not live:
                    break  # respawn budget exhausted → serial fallback
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, spec = heappop(delayed)
                    target = min(live, key=lambda h: len(h.queue))
                    target.queue.append(spec)
                    dispatch_to(target)
                timeout = None
                if delayed:
                    timeout = max(0.0, delayed[0][0] - now)
                if liveness is not None:
                    tick = min(max(liveness / 4.0, 0.05), 1.0)
                    timeout = tick if timeout is None else min(timeout, tick)
                watched = sup.live()
                conn_map = {id(h.conn): h for h in watched}
                ready = mp_connection.wait([h.conn for h in watched], timeout)
                for conn in ready:
                    handle = conn_map[id(conn)]
                    if not handle.alive:
                        continue  # reaped earlier in this batch
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        reap(handle, "worker died (pipe closed mid-shard)")
                        continue
                    handle.last_seen = time.monotonic()
                    kind = msg[0]
                    if kind == "hb":
                        continue
                    if kind == "error":
                        _, shard_id, slot, cell, tb = msg
                        spec, _stolen = outstanding.pop((handle.index, slot))
                        handle.free_slots.append(slot)
                        shard_failed(spec, cell, tb)
                        dispatch_to(handle)
                        continue
                    _, shard_id, slot, executed, resumed, elapsed, objects = msg
                    spec, stolen = outstanding.pop((handle.index, slot))
                    skip = skips.get(spec.id, ())
                    live_cells = spec.cells - len(skip)
                    shard_records: list[RunRecord] | None = None
                    if results is not None:
                        batch = RecordBatch()
                        batch.scenarios = [
                            cells[i]
                            for i in range(spec.start, spec.stop)
                            if i not in skip
                        ]
                        batch.backend = objects["backend"]
                        batch.decisions = objects["decisions"]
                        batch.decision_rounds = objects["decision_rounds"]
                        batch.crashed = objects["crashed"]
                        batch.violations = objects["violations"]
                        for name, column in handle.slab.read(
                            slot, live_cells
                        ).items():
                            setattr(batch, name, column)
                        shard_records = batch.to_records()
                    handle.free_slots.append(slot)
                    attempts.pop(spec.id, None)
                    finish_shard(
                        spec, shard_records, executed, resumed, elapsed,
                        handle.index, stolen,
                    )
                    dispatch_to(handle)
                if liveness is not None:
                    for handle in sup.hung(liveness):
                        reap(
                            handle,
                            f"worker hung (> {liveness}s without a "
                            f"result or heartbeat)",
                        )
            if remaining:
                # Graceful degradation: every worker is gone and the
                # respawn budget is spent — drain what's left in-process
                # rather than abandoning a partially-swept directory.
                leftovers: list[ShardSpec] = []
                for handle in sup.handles:
                    while handle.queue:
                        leftovers.append(handle.queue.popleft())
                while delayed:
                    leftovers.append(heappop(delayed)[2])
                leftovers.sort(key=lambda s: s.id)
                for spec in leftovers:
                    probe_shard(spec)
        finally:
            self.respawns = sup.respawns
            sup.shutdown()

"""The sharded sweep executor: work-stealing dispatch over shard workers.

:class:`ShardedSweep` runs an expanded grid as shards (see
:mod:`repro.fabric.manifest`) over long-lived worker processes:

* **Dispatch** — every worker owns a queue of shards (round-robin
  initial assignment); an idle worker first drains its own queue, then
  **steals** the coldest shard from the longest remaining queue
  (classic work-stealing, with the bookkeeping centralized in the
  parent so no cross-process locks exist).  ``stolen_chunks`` counts
  the steals.
* **Result return** — the numeric record columns come back through a
  per-worker :class:`~repro.fabric.shm.ScalarSlab`
  (``multiprocessing.shared_memory``), and only the small object
  columns (decisions, decision rounds, crash lists, violations,
  backend names) cross the pipe — the result path the PR 5 profile
  showed dominated by pickling is near-zero-copy.  Two slots per slab
  let the dispatcher pipeline: a worker computes its next shard while
  the parent drains the previous one.
* **Persistence** — each worker appends columnar batch lines to *its
  shard's own file* as it goes (one flush per chunk), so JSONL encoding
  runs inside the workers, in parallel with compute, instead of
  serially in the parent.
* **Resume** — the manifest skips ``"done"`` shards wholesale; a
  partially-written shard re-runs only the cells missing from its file
  (per-cell torn-tail-healing resume, worker side).

Cell order inside a shard is the grid order, so the record set — and
the atlas reduced from the shard files — is byte-identical across
worker counts, steal schedules, and kill/resume histories (pinned by
``tests/fabric/``).

The cell wire format is PR 5's :func:`CellDelta
<repro.scenarios.scenario.scenario_delta>` against one shared base
scenario, and workers reuse engines through an
:class:`~repro.scenarios.execute.EngineLease` exactly like the pool
executor; the parity discipline carries over verbatim.
"""

from __future__ import annotations

import os
import tempfile
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from multiprocessing import get_context
from typing import Any, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.fabric.manifest import ShardManifest, ShardSpec
from repro.fabric.shardio import append_batch, heal_torn_tail, load_shard_index
from repro.fabric.shm import DEPTH, ScalarSlab
from repro.scenarios.execute import EngineLease, execute
from repro.scenarios.record import RecordBatch, RunRecord
from repro.scenarios.scenario import Scenario, scenario_delta, scenario_key

__all__ = ["ShardedSweep"]


# -- worker side -------------------------------------------------------------


def _shard_chunk_size(cells: int, chunk_size: int | None) -> int:
    """Flush unit inside a shard: ~4 flushes per shard, bounded 8..64."""
    if chunk_size is not None:
        return chunk_size
    return max(8, min(64, -(-cells // 4)))


def _run_shard(
    base: Scenario,
    base_dict: dict[str, Any],
    lease: EngineLease,
    path: str,
    deltas: Sequence[dict[str, Any]],
    chunk_size: int | None,
    slab: ScalarSlab,
    slot: int,
) -> tuple[int, int, float, dict[str, list]]:
    """Execute one shard: per-cell resume, chunked appends, slab publish."""
    if os.path.exists(path):
        done = load_shard_index(path)
        heal_torn_tail(path)
    else:
        done = {}
    flush_every = _shard_chunk_size(len(deltas), chunk_size)
    started = time.perf_counter()
    records: list[RunRecord] = []
    buffer: list[RunRecord] = []
    buffer_deltas: list[dict[str, Any]] = []
    executed = resumed = 0
    with open(path, "a", encoding="utf-8") as fh:
        for delta in deltas:
            cell = base.with_(**delta) if delta else base
            if done:  # resume: key lookups only when the file had records
                prior = done.get(scenario_key(cell))
                if prior is not None:
                    records.append(prior)
                    resumed += 1
                    continue
            record = execute(cell, trace=False, lease=lease).normalized()
            records.append(record)
            buffer.append(record)
            buffer_deltas.append(delta)
            executed += 1
            if len(buffer) >= flush_every:
                append_batch(fh, buffer, base_dict, buffer_deltas)
                buffer.clear()
                buffer_deltas.clear()
        append_batch(fh, buffer, base_dict, buffer_deltas)
        buffer.clear()
    elapsed = time.perf_counter() - started
    batch = RecordBatch.from_records(records)
    slab.write(slot, batch)
    # Only the variable-width object columns ride the pipe; scenarios
    # never return at all (the parent knows the cells it dispatched).
    objects = {
        "backend": batch.backend,
        "decisions": batch.decisions,
        "decision_rounds": batch.decision_rounds,
        "crashed": batch.crashed,
        "violations": batch.violations,
    }
    return executed, resumed, elapsed, objects


def _worker_main(
    conn,
    shm_name: str,
    capacity: int,
    base_dict: dict[str, Any],
    directory: str,
    chunk_size: int | None,
) -> None:
    """Long-lived shard worker: recv shard tasks until ``stop`` (or EOF)."""
    slab = ScalarSlab.attach(shm_name, capacity)
    base = Scenario.from_dict(base_dict)
    lease = EngineLease()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # parent died; the manifest makes the rerun resume
            if msg[0] == "stop":
                return
            _, shard_id, slot, file_name, deltas = msg
            try:
                result = _run_shard(
                    base, base_dict, lease, os.path.join(directory, file_name),
                    deltas, chunk_size, slab, slot,
                )
            except Exception:
                conn.send(("error", shard_id, traceback.format_exc()))
                return
            conn.send(("shard", shard_id, slot, *result))
    finally:
        slab.close()
        conn.close()


# -- parent side -------------------------------------------------------------


class ShardedSweep:
    """Run scenario cells as manifest-backed shards over stealing workers.

    Parameters
    ----------
    cells:
        The grid cells, in grid order.  Canonical keys must be unique
        (:class:`~repro.scenarios.sweep.SweepRunner` dedupes before
        delegating here).
    directory:
        The shard directory (manifest + per-shard files).  ``None`` runs
        in an ephemeral temporary directory — the fabric machinery with
        no durable artifact.
    processes:
        Worker count (default ``os.cpu_count()``), capped at the number
        of unfinished shards.
    shards:
        Shard count for a *fresh* plan (default: ~4 per worker, so
        stealing has slack).  An existing manifest's plan always wins —
        resume must line up with the files already on disk.
    chunk_size:
        Flush unit inside a shard (default: ~4 flushes per shard,
        bounded 8..64 cells).
    keys:
        Precomputed canonical keys, one per cell, when the caller
        already paid for them (``SweepRunner`` computes keys to dedupe
        before delegating — recomputing ~1µs-per-cell hashes twice is
        measurable at atlas scale).  ``None`` computes them here.
    collect:
        ``True`` returns every cell's record (merge-on-read over done
        shards); ``False`` skips collection entirely — completed shard
        files are *never read* — for atlas-scale sweeps reduced later by
        :mod:`repro.fabric.atlas`.
    """

    def __init__(
        self,
        cells: Iterable[Scenario],
        *,
        directory: str | os.PathLike[str] | None = None,
        processes: int | None = None,
        shards: int | None = None,
        chunk_size: int | None = None,
        keys: Sequence[str] | None = None,
        collect: bool = True,
    ) -> None:
        self.cells = list(cells)
        if keys is not None and len(keys) != len(self.cells):
            raise ConfigurationError(
                f"keys/cells length mismatch: {len(keys)} keys for "
                f"{len(self.cells)} cells"
            )
        self.keys = list(keys) if keys is not None else None
        self.directory = os.fspath(directory) if directory is not None else None
        if processes is not None and processes < 1:
            raise ConfigurationError(f"processes must be >= 1, got {processes}")
        if shards is not None and shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.processes = processes
        self.shards = shards
        self.chunk_size = chunk_size
        self.collect = collect
        #: Cells actually executed / loaded back by the last :meth:`run`.
        self.executed = 0
        self.resumed = 0
        #: Shards skipped via the manifest vs dispatched to workers.
        self.resumed_shards = 0
        self.fresh_shards = 0
        #: Shards an idle worker stole from another worker's queue.
        self.stolen_chunks = 0
        #: Per-shard stats dicts (id, cells, executed, resumed, elapsed_s,
        #: cells_per_s, worker, stolen), in shard-id order.
        self.shard_stats: list[dict[str, Any]] = []
        self.elapsed = 0.0

    # -- public ------------------------------------------------------------

    def run(self) -> list[RunRecord] | None:
        """Run/resume the sweep; records in cell order (None if not collecting)."""
        started = time.perf_counter()
        self.executed = self.resumed = 0
        self.resumed_shards = self.fresh_shards = self.stolen_chunks = 0
        self.shard_stats = []
        tmp = None
        directory = self.directory
        if directory is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            directory = tmp.name
        try:
            result = self._run_in(directory)
        finally:
            if tmp is not None:
                tmp.cleanup()
            self.elapsed = time.perf_counter() - started
        return result

    # -- internals ---------------------------------------------------------

    def _run_in(self, directory: str) -> list[RunRecord] | None:
        cells = self.cells
        if not cells:
            return [] if self.collect else None
        keys = self.keys or [scenario_key(cell) for cell in cells]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                "sharded sweeps need unique cells (duplicate scenario keys "
                "in the grid); SweepRunner dedupes before delegating"
            )
        workers = self.processes or os.cpu_count() or 2
        shard_count = self.shards or max(1, workers * 4)
        manifest = ShardManifest.load_or_create(directory, keys, shard_count)

        results: list[RunRecord | None] | None = (
            [None] * len(cells) if self.collect else None
        )
        pending: list[ShardSpec] = []
        for spec in manifest.shards:
            path = os.path.join(directory, spec.file)
            if spec.status == "done" and os.path.exists(path):
                if self._collect_done_shard(spec, path, keys, results):
                    continue
                spec.status = "pending"  # file incomplete: fall through
            pending.append(spec)
        if pending:
            self._dispatch(directory, manifest, pending, results, workers)
        self.shard_stats.sort(key=lambda stat: stat["id"])
        return results  # type: ignore[return-value]

    def _collect_done_shard(
        self,
        spec: ShardSpec,
        path: str,
        keys: list[str],
        results: list[RunRecord | None] | None,
    ) -> bool:
        """Account (and, when collecting, load) one manifest-done shard.

        Returns False when the file no longer covers the shard's cells —
        the shard is then demoted and re-run (its surviving records still
        resume per-cell inside the worker).
        """
        if results is not None:
            index = load_shard_index(path)
            loaded: list[RunRecord] = []
            for i in range(spec.start, spec.stop):
                record = index.get(keys[i])
                if record is None:
                    return False
                loaded.append(record)
            results[spec.start:spec.stop] = loaded
        # collect=False trusts the manifest outright: done shards are
        # never read here — that is the merge-on-read contract the atlas
        # layer depends on for million-cell sweeps.
        self.resumed += spec.cells
        self.resumed_shards += 1
        self.shard_stats.append({
            "id": spec.id,
            "cells": spec.cells,
            "executed": 0,
            "resumed": spec.cells,
            "elapsed_s": 0.0,
            "cells_per_s": None,
            "worker": None,
            "stolen": False,
        })
        return True

    def _dispatch(
        self,
        directory: str,
        manifest: ShardManifest,
        pending: list[ShardSpec],
        results: list[RunRecord | None] | None,
        workers: int,
    ) -> None:
        cells = self.cells
        base = cells[0]
        base_dict = base.to_dict()
        n_workers = max(1, min(workers, len(pending)))
        capacity = max(spec.cells for spec in pending)
        self.fresh_shards = len(pending)

        ctx = get_context()
        slabs: list[ScalarSlab] = []
        conns: list[Any] = []
        procs: list[Any] = []
        queues: list[deque[ShardSpec]] = [deque() for _ in range(n_workers)]
        for i, spec in enumerate(pending):
            queues[i % n_workers].append(spec)
        free_slots: list[list[int]] = [list(range(DEPTH)) for _ in range(n_workers)]
        outstanding: dict[tuple[int, int], tuple[ShardSpec, bool]] = {}

        def next_spec(w: int) -> tuple[ShardSpec | None, bool]:
            if queues[w]:
                return queues[w].popleft(), False
            victim = max(range(n_workers), key=lambda v: len(queues[v]))
            if queues[victim]:
                self.stolen_chunks += 1
                return queues[victim].pop(), True  # coldest end of the queue
            return None, False

        def dispatch_to(w: int) -> None:
            while free_slots[w]:
                spec, stolen = next_spec(w)
                if spec is None:
                    return
                slot = free_slots[w].pop()
                deltas = [
                    scenario_delta(base, cells[i])
                    for i in range(spec.start, spec.stop)
                ]
                conns[w].send(("shard", spec.id, slot, spec.file, deltas))
                outstanding[(w, slot)] = (spec, stolen)

        try:
            for w in range(n_workers):
                slab = ScalarSlab.create(capacity)
                slabs.append(slab)
                parent_conn, child_conn = ctx.Pipe()
                conns.append(parent_conn)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, slab.name, capacity, base_dict,
                          directory, self.chunk_size),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
                child_conn.close()
            conn_index = {id(conn): w for w, conn in enumerate(conns)}
            for w in range(n_workers):
                dispatch_to(w)
            remaining = len(pending)
            while remaining:
                for conn in mp_connection.wait(conns):
                    w = conn_index[id(conn)]
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        raise RuntimeError(
                            f"sharded sweep worker {w} died mid-shard; "
                            f"rerun to resume from the manifest"
                        ) from None
                    if msg[0] == "error":
                        raise RuntimeError(
                            f"sharded sweep worker {w} failed on shard "
                            f"{msg[1]}:\n{msg[2]}"
                        )
                    _, shard_id, slot, executed, resumed, elapsed, objects = msg
                    spec, stolen = outstanding.pop((w, slot))
                    scalars = slabs[w].read(slot, spec.cells)
                    free_slots[w].append(slot)
                    if results is not None:
                        batch = RecordBatch()
                        batch.scenarios = cells[spec.start:spec.stop]
                        batch.backend = objects["backend"]
                        batch.decisions = objects["decisions"]
                        batch.decision_rounds = objects["decision_rounds"]
                        batch.crashed = objects["crashed"]
                        batch.violations = objects["violations"]
                        for name, column in scalars.items():
                            setattr(batch, name, column)
                        results[spec.start:spec.stop] = batch.to_records()
                    self.executed += executed
                    self.resumed += resumed
                    manifest.mark_done(shard_id)
                    self.shard_stats.append({
                        "id": shard_id,
                        "cells": spec.cells,
                        "executed": executed,
                        "resumed": resumed,
                        "elapsed_s": elapsed,
                        "cells_per_s": spec.cells / elapsed if elapsed > 0 else None,
                        "worker": w,
                        "stolen": stolen,
                    })
                    remaining -= 1
                    dispatch_to(w)
            for conn in conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for proc in procs:
                proc.join(timeout=10.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for conn in conns:
                conn.close()
            for slab in slabs:
                slab.unlink()

"""Deterministic fault injection for the sweep fabric.

The paper's algorithms tolerate up to *f* crash failures; the fabric
that sweeps them must tolerate failures too, and — as "Asynchrony from
Synchrony" argues at the protocol level — failures belong in the model,
not in an abort path.  Testing the recovery machinery with real SIGKILL
races makes slow, flaky tests, so the dispatcher instead threads a
seeded :class:`FaultPlan` through its workers: every failure mode the
supervisor handles (worker death, hang, poison cell, torn write) is
injected at a deterministic point and exercised by ordinary pytest.

Chaos spec grammar (CLI ``scenario sweep --chaos``)::

    plan    ::= clause (";" clause)*
    clause  ::= kind ":" key "=" value ("," key "=" value)*
    kind    ::= "kill" | "hang" | "raise" | "torn"
    value   ::= integer | "rand"

Per-kind keys:

* ``kill`` — ``worker`` (target index; default: any), ``after`` (die
  right after completing this many shards; ``0`` = at startup, before
  the first task), ``incarnation`` (default ``0``: only the original
  worker dies, so its respawned replacement makes progress).
* ``hang`` — ``shard`` (sleep instead of running it; default: any),
  ``worker``, ``incarnation`` (defaults as above).  The sleep outlasts
  any sane liveness timeout, so the supervisor's hang detection is what
  ends it.
* ``torn`` — ``shard``/``worker``/``incarnation``: after the first
  flushed chunk, append a torn half-line to the shard file and die —
  the retry must heal the tail before resuming.
* ``raise`` — ``cell`` (global grid index): raise
  :class:`FaultInjected` inside that cell.  With ``until=K`` the fault
  is transient — it fires only while the shard's dispatch attempt is
  ``< K`` (exercising retry-with-backoff); without ``until`` the cell
  is poison and ends up quarantined.

``value = rand`` defers the target to :meth:`FaultPlan.bind`, which
resolves it with ``random.Random(seed)`` once the worker/shard/cell
counts are known — seeded chaos, reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "parse_chaos",
    "ServiceFaultSpec",
    "ServiceFaultPlan",
    "parse_service_chaos",
]


class FaultInjected(RuntimeError):
    """Raised inside a cell by a ``raise`` fault (poison or transient)."""


#: Valid keys per fault kind (grammar validation).
_KEYS = {
    "kill": {"worker", "after", "incarnation"},
    "hang": {"shard", "worker", "incarnation"},
    "torn": {"shard", "worker", "incarnation"},
    "raise": {"cell", "until"},
}

#: Values of "rand" fields resolved by :meth:`FaultPlan.bind`.
RAND = "rand"


@dataclass(slots=True, frozen=True)
class FaultSpec:
    """One injected fault.  Fields not applicable to ``kind`` stay None."""

    kind: str  # "kill" | "hang" | "raise" | "torn"
    worker: int | str | None = None  # kill/hang/torn: target worker index
    after: int = 1  # kill: shards to complete before dying
    shard: int | str | None = None  # hang/torn: target shard id
    cell: int | str | None = None  # raise: global cell index
    until: int | None = None  # raise: transient while attempt < until
    incarnation: int = 0  # kill/hang/torn: which worker lifetime fires

    def __post_init__(self) -> None:
        if self.kind not in _KEYS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; available: "
                f"{', '.join(sorted(_KEYS))}"
            )
        if self.kind == "raise" and self.cell is None:
            raise ConfigurationError("raise faults need a cell=<index> target")
        if self.after < 0:
            raise ConfigurationError(f"kill after must be >= 0, got {self.after}")


def _parse_value(kind: str, key: str, text: str) -> int | str:
    if text == RAND:
        return RAND
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"chaos clause {kind!r}: {key}={text!r} is neither an integer "
            f"nor 'rand'"
        ) from None


def _parse_clauses(
    text: str,
    keys: dict[str, set[str]],
    *,
    flags: dict[str, set[str]] | None = None,
    words: dict[str, set[str]] | None = None,
) -> list[tuple[str, dict[str, object]]]:
    """Split a chaos spec into ``(kind, fields)`` clauses against ``keys``.

    The one grammar both fault vocabularies share (fabric workers and the
    consensus service): ``kind:key=value,...`` clauses joined by ``;``.
    ``flags`` names keys usable bare (``kill:leader``, parsed as True);
    ``words`` maps keys to the bare-word values they accept (``point=
    control``) — everything else must be an integer or ``rand``.
    """
    flags = flags or {}
    words = words or {}
    clauses: list[tuple[str, dict[str, object]]] = []
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip()
        if kind not in keys:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in chaos spec {text!r}; "
                f"available: {', '.join(sorted(keys))}"
            )
        fields: dict[str, object] = {}
        for pair in body.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq and key in flags.get(kind, ()):
                fields[key] = True
                continue
            if not eq or key not in keys[kind]:
                raise ConfigurationError(
                    f"chaos clause {clause!r}: {kind!r} takes "
                    f"{', '.join(sorted(keys[kind]))} (got {pair!r})"
                )
            value = value.strip()
            if key in words:
                if value not in words[key]:
                    raise ConfigurationError(
                        f"chaos clause {clause!r}: {key}={value!r} must be "
                        f"one of {', '.join(sorted(words[key]))}"
                    )
                fields[key] = value
            else:
                fields[key] = _parse_value(kind, key, value)
        clauses.append((kind, fields))
    if not clauses:
        raise ConfigurationError(f"chaos spec {text!r} contains no fault clauses")
    return clauses


def parse_chaos(text: str) -> tuple[FaultSpec, ...]:
    """Parse a chaos spec string into fault specs (see module grammar)."""
    return tuple(
        FaultSpec(kind=kind, **fields)  # type: ignore[arg-type]
        for kind, fields in _parse_clauses(text, _KEYS)
    )


@dataclass(slots=True, frozen=True)
class FaultPlan:
    """A deterministic set of faults threaded through a sharded sweep.

    A plan crosses the process boundary once per worker spawn (it rides
    the ``Process`` args), so it must stay a small, picklable value
    object.  The dispatcher :meth:`bind`\\ s it before the first spawn —
    ``rand`` targets resolve against the real worker/shard/cell counts
    with ``random.Random(seed)`` — and both sides then consult the same
    bound plan: workers check kill/hang/torn/raise points, the parent's
    in-process fallback re-checks only the ``raise`` faults (hang and
    death injection in the parent would kill the sweep itself).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None
    #: How long a hang fault sleeps; far beyond any liveness timeout, so
    #: only supervision (or test teardown) ends a hung worker.
    hang_seconds: float = 3600.0

    @classmethod
    def from_spec(
        cls,
        text: str,
        *,
        seed: int | None = None,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Build a plan from the chaos grammar (see module docstring)."""
        return cls(specs=parse_chaos(text), seed=seed, hang_seconds=hang_seconds)

    def bind(self, *, workers: int, shards: int, cells: int) -> "FaultPlan":
        """Resolve every ``rand`` target against the sweep's real sizes."""
        rng = random.Random(self.seed)
        bound: list[FaultSpec] = []
        for spec in self.specs:
            fields = {}
            if spec.worker == RAND:
                fields["worker"] = rng.randrange(workers)
            if spec.shard == RAND:
                fields["shard"] = rng.randrange(shards)
            if spec.cell == RAND:
                fields["cell"] = rng.randrange(cells)
            bound.append(replace(spec, **fields) if fields else spec)
        return replace(self, specs=tuple(bound))

    # -- injection points (bound plans only) -------------------------------

    def kill_now(self, completed: int, worker: int, incarnation: int) -> bool:
        """Worker side: die after ``completed`` shards? (checked per shard)."""
        return any(
            s.kind == "kill"
            and (s.worker is None or s.worker == worker)
            and s.incarnation == incarnation
            and completed >= s.after
            for s in self.specs
        )

    def hang_for(self, shard: int, worker: int, incarnation: int) -> float | None:
        """Worker side: sleep this long instead of running ``shard``."""
        for s in self.specs:
            if (
                s.kind == "hang"
                and (s.shard is None or s.shard == shard)
                and (s.worker is None or s.worker == worker)
                and s.incarnation == incarnation
            ):
                return self.hang_seconds
        return None

    def torn_on(self, shard: int, worker: int, incarnation: int) -> bool:
        """Worker side: tear the shard file after its first flush and die."""
        return any(
            s.kind == "torn"
            and (s.shard is None or s.shard == shard)
            and (s.worker is None or s.worker == worker)
            and s.incarnation == incarnation
            for s in self.specs
        )

    def check_cell(self, cell: int, attempt: int) -> None:
        """Both sides: raise :class:`FaultInjected` if ``cell`` is targeted.

        ``attempt`` is the shard's dispatch-attempt number (0 on the
        first dispatch); transient faults (``until=K``) stop firing once
        the supervisor has retried the shard ``K`` times.
        """
        for s in self.specs:
            if s.kind == "raise" and s.cell == cell:
                if s.until is None or attempt < s.until:
                    raise FaultInjected(
                        f"injected fault in cell {cell} (attempt {attempt})"
                    )


# ---------------------------------------------------------------------------
# Service chaos: the same grammar, aimed at the consensus service.
# ---------------------------------------------------------------------------

#: Valid keys per service fault kind.
_SERVICE_KEYS = {
    "kill": {"leader", "pid", "after", "every", "count", "point"},
    "raise": {"slot", "until"},
}
#: Keys usable bare, as flags (``kill:leader``).
_SERVICE_FLAGS = {"kill": {"leader"}}
#: Bare-word values accepted per key.
_SERVICE_WORDS = {"point": {"before", "data", "control", "after", RAND}}


@dataclass(slots=True, frozen=True)
class ServiceFaultSpec:
    """One injected service fault (see :func:`parse_service_chaos`).

    * ``kill`` — crash a replica inside a log slot.  Target: ``leader``
      (the ring's current leader at firing time) or ``pid=K``.  Timing:
      fires in slot ``after + 1``; with ``every=E`` it re-fires every
      ``E`` slots after that (a crash storm), ``count=C`` capping the
      number of firings.  ``point`` picks the crash point within the
      slot (``before``/``data``/``control``/``after``; default ``rand``
      — seeded per firing by the service): ``before`` loses the leader's
      proposal (the slot decides a successor's noop, the client must
      retry the command itself), the later points commit it but kill the
      ack (the retry must hit the dedup ledger instead of re-proposing).
    * ``raise`` — raise :class:`FaultInjected` in the service's propose
      path for slot ``slot``; with ``until=A`` the fault is transient
      (fires only while the slot's propose attempt is ``< A``), without
      it the slot is poison and the head request is failed honestly
      after the service's propose-retry budget.
    """

    kind: str  # "kill" | "raise"
    leader: bool = False
    pid: int | str | None = None
    after: int = 0  # kill: committed slots before the first firing
    every: int | None = None  # kill: storm period in slots
    count: int | None = None  # kill: max storm firings
    point: str = RAND  # kill: crash point within the slot
    slot: int | str | None = None  # raise: target slot number (1-based)
    until: int | None = None  # raise: transient while attempt < until

    def __post_init__(self) -> None:
        if self.kind not in _SERVICE_KEYS:
            raise ConfigurationError(
                f"unknown service fault kind {self.kind!r}; available: "
                f"{', '.join(sorted(_SERVICE_KEYS))}"
            )
        if self.kind == "kill":
            if self.leader == (self.pid is not None):
                raise ConfigurationError(
                    "kill faults target exactly one of 'leader' or 'pid=K'"
                )
            if self.after < 0:
                raise ConfigurationError(
                    f"kill after must be >= 0, got {self.after}"
                )
            if self.every is not None and self.every < 1:
                raise ConfigurationError(
                    f"kill every must be >= 1, got {self.every}"
                )
            if self.count is not None:
                if self.every is None:
                    raise ConfigurationError("kill count=C needs every=E")
                if self.count < 1:
                    raise ConfigurationError(
                        f"kill count must be >= 1, got {self.count}"
                    )
        if self.kind == "raise":
            if self.slot is None:
                raise ConfigurationError("raise faults need a slot=<number> target")
            if isinstance(self.slot, int) and self.slot < 1:
                raise ConfigurationError(f"raise slot must be >= 1, got {self.slot}")
            if self.until is not None and self.until < 1:
                raise ConfigurationError(f"raise until must be >= 1, got {self.until}")


def parse_service_chaos(text: str) -> tuple[ServiceFaultSpec, ...]:
    """Parse a service chaos spec (same grammar, service vocabulary).

    Examples::

        kill:leader,after=3                  # one leader kill in slot 4
        kill:leader,after=2,every=4,count=3  # a 3-kill leader storm
        kill:pid=5,point=control             # kill p5 mid-control-step
        raise:slot=7,until=2                 # transient propose fault
    """
    return tuple(
        ServiceFaultSpec(kind=kind, **fields)  # type: ignore[arg-type]
        for kind, fields in _parse_clauses(
            text, _SERVICE_KEYS, flags=_SERVICE_FLAGS, words=_SERVICE_WORDS
        )
    )


@dataclass(slots=True, frozen=True)
class ServiceFaultPlan:
    """A deterministic set of faults drilled through the consensus service.

    The service-side sibling of :class:`FaultPlan`: a frozen value object
    the service consults per slot.  ``rand`` pids/slots resolve in
    :meth:`bind` against the replica count and the expected slot horizon;
    ``point=rand`` stays symbolic — the service resolves it per firing
    from its own labelled chaos stream, so storms vary crash points while
    staying a pure function of the service seed.
    """

    specs: tuple[ServiceFaultSpec, ...] = ()
    seed: int | None = None

    @classmethod
    def from_spec(cls, text: str, *, seed: int | None = None) -> "ServiceFaultPlan":
        """Build a plan from the service chaos grammar."""
        return cls(specs=parse_service_chaos(text), seed=seed)

    def bind(self, *, replicas: int, slots: int) -> "ServiceFaultPlan":
        """Resolve every ``rand`` pid/slot against the service's real sizes."""
        rng = random.Random(self.seed)
        bound: list[ServiceFaultSpec] = []
        for spec in self.specs:
            fields: dict[str, int] = {}
            if spec.pid == RAND:
                fields["pid"] = rng.randrange(replicas) + 1
            if spec.slot == RAND:
                fields["slot"] = rng.randrange(max(slots, 1)) + 1
            bound.append(replace(spec, **fields) if fields else spec)
        return replace(self, specs=tuple(bound))

    # -- injection points (bound plans only) -------------------------------

    def kills_for(self, slot_no: int) -> list[ServiceFaultSpec]:
        """The kill faults firing in slot ``slot_no`` (1-based).

        A spec fires first in slot ``after + 1``; with ``every`` it
        re-fires each period, capped by ``count``.  Firing is a pure
        function of the slot number, so the plan needs no mutable state.
        """
        fires: list[ServiceFaultSpec] = []
        for s in self.specs:
            if s.kind != "kill":
                continue
            first = s.after + 1
            if slot_no < first:
                continue
            if s.every is None:
                if slot_no == first:
                    fires.append(s)
            else:
                period, phase = divmod(slot_no - first, s.every)
                if phase == 0 and (s.count is None or period < s.count):
                    fires.append(s)
        return fires

    def check_slot(self, slot_no: int, attempt: int) -> None:
        """Raise :class:`FaultInjected` if ``slot_no``'s propose is targeted.

        ``attempt`` is the slot's propose-attempt number (0 on the first
        try); transient faults (``until=A``) stop firing once the service
        has retried the propose ``A`` times.
        """
        for s in self.specs:
            if s.kind == "raise" and s.slot == slot_no:
                if s.until is None or attempt < s.until:
                    raise FaultInjected(
                        f"injected fault in slot {slot_no} (attempt {attempt})"
                    )

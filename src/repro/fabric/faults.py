"""Deterministic fault injection for the sweep fabric.

The paper's algorithms tolerate up to *f* crash failures; the fabric
that sweeps them must tolerate failures too, and — as "Asynchrony from
Synchrony" argues at the protocol level — failures belong in the model,
not in an abort path.  Testing the recovery machinery with real SIGKILL
races makes slow, flaky tests, so the dispatcher instead threads a
seeded :class:`FaultPlan` through its workers: every failure mode the
supervisor handles (worker death, hang, poison cell, torn write) is
injected at a deterministic point and exercised by ordinary pytest.

Chaos spec grammar (CLI ``scenario sweep --chaos``)::

    plan    ::= clause (";" clause)*
    clause  ::= kind ":" key "=" value ("," key "=" value)*
    kind    ::= "kill" | "hang" | "raise" | "torn"
    value   ::= integer | "rand"

Per-kind keys:

* ``kill`` — ``worker`` (target index; default: any), ``after`` (die
  right after completing this many shards; ``0`` = at startup, before
  the first task), ``incarnation`` (default ``0``: only the original
  worker dies, so its respawned replacement makes progress).
* ``hang`` — ``shard`` (sleep instead of running it; default: any),
  ``worker``, ``incarnation`` (defaults as above).  The sleep outlasts
  any sane liveness timeout, so the supervisor's hang detection is what
  ends it.
* ``torn`` — ``shard``/``worker``/``incarnation``: after the first
  flushed chunk, append a torn half-line to the shard file and die —
  the retry must heal the tail before resuming.
* ``raise`` — ``cell`` (global grid index): raise
  :class:`FaultInjected` inside that cell.  With ``until=K`` the fault
  is transient — it fires only while the shard's dispatch attempt is
  ``< K`` (exercising retry-with-backoff); without ``until`` the cell
  is poison and ends up quarantined.

``value = rand`` defers the target to :meth:`FaultPlan.bind`, which
resolves it with ``random.Random(seed)`` once the worker/shard/cell
counts are known — seeded chaos, reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["FaultInjected", "FaultSpec", "FaultPlan", "parse_chaos"]


class FaultInjected(RuntimeError):
    """Raised inside a cell by a ``raise`` fault (poison or transient)."""


#: Valid keys per fault kind (grammar validation).
_KEYS = {
    "kill": {"worker", "after", "incarnation"},
    "hang": {"shard", "worker", "incarnation"},
    "torn": {"shard", "worker", "incarnation"},
    "raise": {"cell", "until"},
}

#: Values of "rand" fields resolved by :meth:`FaultPlan.bind`.
RAND = "rand"


@dataclass(slots=True, frozen=True)
class FaultSpec:
    """One injected fault.  Fields not applicable to ``kind`` stay None."""

    kind: str  # "kill" | "hang" | "raise" | "torn"
    worker: int | str | None = None  # kill/hang/torn: target worker index
    after: int = 1  # kill: shards to complete before dying
    shard: int | str | None = None  # hang/torn: target shard id
    cell: int | str | None = None  # raise: global cell index
    until: int | None = None  # raise: transient while attempt < until
    incarnation: int = 0  # kill/hang/torn: which worker lifetime fires

    def __post_init__(self) -> None:
        if self.kind not in _KEYS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; available: "
                f"{', '.join(sorted(_KEYS))}"
            )
        if self.kind == "raise" and self.cell is None:
            raise ConfigurationError("raise faults need a cell=<index> target")
        if self.after < 0:
            raise ConfigurationError(f"kill after must be >= 0, got {self.after}")


def _parse_value(kind: str, key: str, text: str) -> int | str:
    if text == RAND:
        return RAND
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"chaos clause {kind!r}: {key}={text!r} is neither an integer "
            f"nor 'rand'"
        ) from None


def parse_chaos(text: str) -> tuple[FaultSpec, ...]:
    """Parse a chaos spec string into fault specs (see module grammar)."""
    specs: list[FaultSpec] = []
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip()
        if kind not in _KEYS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in chaos spec {text!r}; "
                f"available: {', '.join(sorted(_KEYS))}"
            )
        fields: dict[str, int | str] = {}
        for pair in body.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or key not in _KEYS[kind]:
                raise ConfigurationError(
                    f"chaos clause {clause!r}: {kind!r} takes "
                    f"{', '.join(sorted(_KEYS[kind]))} (got {pair!r})"
                )
            fields[key] = _parse_value(kind, key, value.strip())
        specs.append(FaultSpec(kind=kind, **fields))  # type: ignore[arg-type]
    if not specs:
        raise ConfigurationError(f"chaos spec {text!r} contains no fault clauses")
    return tuple(specs)


@dataclass(slots=True, frozen=True)
class FaultPlan:
    """A deterministic set of faults threaded through a sharded sweep.

    A plan crosses the process boundary once per worker spawn (it rides
    the ``Process`` args), so it must stay a small, picklable value
    object.  The dispatcher :meth:`bind`\\ s it before the first spawn —
    ``rand`` targets resolve against the real worker/shard/cell counts
    with ``random.Random(seed)`` — and both sides then consult the same
    bound plan: workers check kill/hang/torn/raise points, the parent's
    in-process fallback re-checks only the ``raise`` faults (hang and
    death injection in the parent would kill the sweep itself).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None
    #: How long a hang fault sleeps; far beyond any liveness timeout, so
    #: only supervision (or test teardown) ends a hung worker.
    hang_seconds: float = 3600.0

    @classmethod
    def from_spec(
        cls,
        text: str,
        *,
        seed: int | None = None,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Build a plan from the chaos grammar (see module docstring)."""
        return cls(specs=parse_chaos(text), seed=seed, hang_seconds=hang_seconds)

    def bind(self, *, workers: int, shards: int, cells: int) -> "FaultPlan":
        """Resolve every ``rand`` target against the sweep's real sizes."""
        rng = random.Random(self.seed)
        bound: list[FaultSpec] = []
        for spec in self.specs:
            fields = {}
            if spec.worker == RAND:
                fields["worker"] = rng.randrange(workers)
            if spec.shard == RAND:
                fields["shard"] = rng.randrange(shards)
            if spec.cell == RAND:
                fields["cell"] = rng.randrange(cells)
            bound.append(replace(spec, **fields) if fields else spec)
        return replace(self, specs=tuple(bound))

    # -- injection points (bound plans only) -------------------------------

    def kill_now(self, completed: int, worker: int, incarnation: int) -> bool:
        """Worker side: die after ``completed`` shards? (checked per shard)."""
        return any(
            s.kind == "kill"
            and (s.worker is None or s.worker == worker)
            and s.incarnation == incarnation
            and completed >= s.after
            for s in self.specs
        )

    def hang_for(self, shard: int, worker: int, incarnation: int) -> float | None:
        """Worker side: sleep this long instead of running ``shard``."""
        for s in self.specs:
            if (
                s.kind == "hang"
                and (s.shard is None or s.shard == shard)
                and (s.worker is None or s.worker == worker)
                and s.incarnation == incarnation
            ):
                return self.hang_seconds
        return None

    def torn_on(self, shard: int, worker: int, incarnation: int) -> bool:
        """Worker side: tear the shard file after its first flush and die."""
        return any(
            s.kind == "torn"
            and (s.shard is None or s.shard == shard)
            and (s.worker is None or s.worker == worker)
            and s.incarnation == incarnation
            for s in self.specs
        )

    def check_cell(self, cell: int, attempt: int) -> None:
        """Both sides: raise :class:`FaultInjected` if ``cell`` is targeted.

        ``attempt`` is the shard's dispatch-attempt number (0 on the
        first dispatch); transient faults (``until=K``) stop firing once
        the supervisor has retried the shard ``K`` times.
        """
        for s in self.specs:
            if s.kind == "raise" and s.cell == cell:
                if s.until is None or attempt < s.until:
                    raise FaultInjected(
                        f"injected fault in cell {cell} (attempt {attempt})"
                    )

"""Per-shard columnar JSONL files: append, stream-read, torn-tail healing.

Each shard owns one JSONL file in the sweep directory, written by
whichever worker executes the shard.  The layout is the columnar one
from PR 5 — one ``{"batch": <RecordBatch payload>}`` line per flushed
chunk — and the reader also accepts the legacy ``{"record": <row>}``
layout, so hand-migrated files keep working.

Durability discipline (identical to the single-file sweep writer):

* appends are buffered per chunk and flushed once per chunk, so a kill
  loses at most the in-flight chunk;
* a kill **mid-write** leaves a torn final line; :func:`heal_torn_tail`
  turns the fragment into its own (skippable) line before any append, so
  the first fresh chunk after a resume can never be glued onto garbage;
* unreadable lines are skipped, and their cells simply re-run — the
  per-cell resume index is rebuilt from whatever decodes
  (:func:`load_shard_index`).

Reading is streaming: :func:`iter_shard_records` yields records line by
line, which is what lets the atlas layer reduce a million-cell sweep
without ever materializing it.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator

from repro.errors import ConfigurationError
from repro.scenarios.record import RecordBatch, RunRecord
from repro.scenarios.scenario import scenario_key

__all__ = [
    "append_batch",
    "heal_torn_tail",
    "iter_shard_records",
    "load_shard_index",
]


def append_batch(
    fh: IO[str],
    records: list[RunRecord],
    base: dict | None = None,
    deltas: list[dict] | None = None,
) -> None:
    """Append one columnar batch line for ``records`` and flush it.

    ``base``/``deltas`` forward to :meth:`RecordBatch.to_payload` so a
    shard worker that already holds each cell's dispatched delta skips
    the per-cell :func:`~repro.scenarios.scenario.scenario_delta` pass.
    """
    if not records:
        return
    payload = RecordBatch.from_records(records).to_payload(base, deltas)
    fh.write(json.dumps({"batch": payload}, sort_keys=True) + "\n")
    fh.flush()


def heal_torn_tail(path: str) -> None:
    """Terminate a torn final line so appends start on a fresh line.

    A worker killed mid-``write`` leaves a partial line at the end of its
    shard file.  Appending straight after it would glue the next batch
    onto the fragment and lose *that* batch too on the following resume;
    a single newline quarantines the fragment as its own undecodable
    (hence skipped) line instead.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if not size:
        return
    with open(path, "rb") as fh:
        fh.seek(size - 1)
        torn = fh.read(1) != b"\n"
    if torn:
        with open(path, "ab") as fh:
            fh.write(b"\n")


def iter_shard_records(path: str) -> Iterator[RunRecord]:
    """Stream the decodable records of one shard file, in file order.

    Both line layouts decode; torn, foreign, or incompatible lines are
    skipped (their cells are simply not listed as done).  The generator
    holds one line's records at a time.
    """
    try:
        fh = open(path, encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of an interrupted flush
            if not isinstance(entry, dict):
                continue
            row = entry.get("record")
            if isinstance(row, dict):
                try:
                    yield RunRecord.from_dict(row)
                except (ConfigurationError, KeyError, TypeError, ValueError):
                    pass
                continue
            payload = entry.get("batch")
            if isinstance(payload, dict):
                try:
                    records = RecordBatch.from_payload(payload).to_records()
                except (ConfigurationError, IndexError, KeyError,
                        TypeError, ValueError):
                    continue  # foreign/incompatible batch line
                yield from records


def load_shard_index(path: str) -> dict[str, RunRecord]:
    """Per-cell resume index of one shard file: canonical key → record."""
    return {scenario_key(r.scenario): r for r in iter_shard_records(path)}

"""Shared-memory slabs for the numeric RecordBatch columns.

PR 5 profiling put the pool executor's ceiling at pickling result
batches back through the ``multiprocessing`` pipe.  The numeric columns
of a :class:`~repro.scenarios.record.RecordBatch` — per-cell counters
(``f_actual``, ``rounds_executed``, ``last_decision_round``,
``messages_sent``, ``bits_sent``), the ``spec_ok`` flag, and
``sim_time`` — are fixed-width, so a worker can write them straight into
a :mod:`multiprocessing.shared_memory` segment the parent maps too, and
only the small variable-width object columns (decisions, decision
rounds, crash lists, violations, backend names) cross the pipe.

One :class:`ScalarSlab` per worker, divided into :data:`DEPTH` slots so
the dispatcher can pipeline: the worker fills slot ``s`` for the task
tagged ``s`` while the parent drains the other slot.  The dispatcher
never has more than ``DEPTH`` tasks outstanding per worker and reads a
slot before reusing its tag, so no fence beyond the pipe's own result
message is needed — the message *is* the publication barrier (it is sent
after the slot is fully written).

``sim_time`` rides the float column with NaN standing in for ``None``
(the continuous-time backends always produce finite floats; the
round-based ones produce ``None``), so the round-trip is exact and
records stay byte-identical with the serial executor's.

Lifecycle: the parent creates (and finally unlinks) every slab; workers
attach by name and close on exit.  Worker-side attachment unregisters
from the ``resource_tracker`` (best effort) so a worker's exit cannot
prematurely destroy a segment the parent still owns.
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory

from repro.scenarios.record import RecordBatch
from repro.util.columns import np

__all__ = ["ScalarSlab", "INT_COLUMNS", "DEPTH"]

#: RecordBatch columns carried as int64 slots (``spec_ok`` as 0/1).
INT_COLUMNS = (
    "f_actual",
    "rounds_executed",
    "last_decision_round",
    "messages_sent",
    "bits_sent",
    "spec_ok",
)
_N_INTS = len(INT_COLUMNS)

#: Pipeline depth: result slots per worker (write one, drain the other).
DEPTH = 2

#: Bytes per cell: the int64 columns plus the float64 ``sim_time``.
CELL_BYTES = _N_INTS * 8 + 8


class ScalarSlab:
    """A ``DEPTH``-slotted shared-memory buffer of per-cell scalars."""

    __slots__ = ("shm", "capacity", "_owner", "_ints", "_floats",
                 "_np_ints", "_np_floats")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 owner: bool) -> None:
        self.shm = shm
        self.capacity = capacity
        self._owner = owner
        # One contiguous int64 region then one float64 region per slot,
        # viewed once — per-shard writes index the casts directly.  With
        # numpy available, a (capacity, N_INTS) view per slot turns each
        # column transfer into one strided C-level copy.
        self._ints = []
        self._floats = []
        self._np_ints = []
        self._np_floats = []
        slot_bytes = capacity * CELL_BYTES
        for slot in range(DEPTH):
            off = slot * slot_bytes
            mid = off + capacity * _N_INTS * 8
            ibuf = shm.buf[off:mid]
            fbuf = shm.buf[mid:off + slot_bytes]
            self._ints.append(ibuf.cast("q"))
            self._floats.append(fbuf.cast("d"))
            if np is not None:
                self._np_ints.append(
                    np.frombuffer(ibuf, dtype=np.int64).reshape(capacity, _N_INTS)
                )
                self._np_floats.append(np.frombuffer(fbuf, dtype=np.float64))

    @property
    def name(self) -> str:
        return self.shm.name

    @classmethod
    def create(cls, capacity: int) -> "ScalarSlab":
        """Parent side: allocate a slab for shards of up to ``capacity`` cells."""
        size = max(1, capacity) * CELL_BYTES * DEPTH
        shm = shared_memory.SharedMemory(create=True, size=size)
        return cls(shm, max(1, capacity), owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ScalarSlab":
        """Worker side: map the parent's segment by name.

        Workers only ever :meth:`close`; the parent owns the segment and
        unlinks it once every worker has exited.  Registration with the
        (fork-shared) resource tracker is left alone — the parent's
        ``unlink`` balances it, and if the whole sweep is SIGKILLed the
        tracker reaping the orphaned segment is exactly what we want.
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, max(1, capacity), owner=False)

    # -- data path ---------------------------------------------------------

    def write(self, slot: int, batch: RecordBatch) -> None:
        """Fill ``slot`` with the numeric columns of ``batch`` (worker side).

        With numpy: one strided bulk assignment per column (the list →
        int64 conversion happens in C).  The fallback loop writes the
        same cell-major byte layout, so a slab written by either path
        reads back identically from either path.
        """
        count = len(batch)
        if count > self.capacity:
            raise ValueError(
                f"batch of {count} cells exceeds slab capacity {self.capacity}"
            )
        if self._np_ints:
            cells = self._np_ints[slot][:count]
            cells[:, 0] = batch.f_actual
            cells[:, 1] = batch.rounds_executed
            cells[:, 2] = batch.last_decision_round
            cells[:, 3] = batch.messages_sent
            cells[:, 4] = batch.bits_sent
            cells[:, 5] = batch.spec_ok  # bools cast to 0/1
            self._np_floats[slot][:count] = [
                math.nan if t is None else t for t in batch.sim_time
            ]
            return
        ints = self._ints[slot]
        floats = self._floats[slot]
        base = 0
        for i in range(count):
            ints[base] = batch.f_actual[i]
            ints[base + 1] = batch.rounds_executed[i]
            ints[base + 2] = batch.last_decision_round[i]
            ints[base + 3] = batch.messages_sent[i]
            ints[base + 4] = batch.bits_sent[i]
            ints[base + 5] = 1 if batch.spec_ok[i] else 0
            base += _N_INTS
            t = batch.sim_time[i]
            floats[i] = math.nan if t is None else t
        # The result message on the pipe publishes the slot; nothing else
        # reads it until the parent has received that message.

    def read(self, slot: int, count: int) -> dict[str, list]:
        """Decode ``count`` cells of ``slot`` back into column lists (parent).

        Always plain Python lists out (``tolist`` on the numpy side):
        the columns land directly in a :class:`RecordBatch`, whose
        records carry built-in ints/bools/floats.
        """
        if self._np_ints:
            cells = self._np_ints[slot][:count]
            return {
                "f_actual": cells[:, 0].tolist(),
                "rounds_executed": cells[:, 1].tolist(),
                "last_decision_round": cells[:, 2].tolist(),
                "messages_sent": cells[:, 3].tolist(),
                "bits_sent": cells[:, 4].tolist(),
                "spec_ok": (cells[:, 5] != 0).tolist(),
                "sim_time": [
                    None if math.isnan(t) else t
                    for t in self._np_floats[slot][:count].tolist()
                ],
            }
        ints = self._ints[slot]
        floats = self._floats[slot]
        out: dict[str, list] = {
            "f_actual": [],
            "rounds_executed": [],
            "last_decision_round": [],
            "messages_sent": [],
            "bits_sent": [],
            "spec_ok": [],
            "sim_time": [],
        }
        base = 0
        for i in range(count):
            out["f_actual"].append(ints[base])
            out["rounds_executed"].append(ints[base + 1])
            out["last_decision_round"].append(ints[base + 2])
            out["messages_sent"].append(ints[base + 3])
            out["bits_sent"].append(ints[base + 4])
            out["spec_ok"].append(bool(ints[base + 5]))
            base += _N_INTS
            t = floats[i]
            out["sim_time"].append(None if math.isnan(t) else t)
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (both sides)."""
        # The memoryview casts and numpy frombuffer views pin the
        # underlying buffer; release them before SharedMemory.close() or
        # it raises BufferError.
        self._ints.clear()
        self._floats.clear()
        self._np_ints.clear()
        self._np_floats.clear()
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner/parent side, after workers exited)."""
        self.close()
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

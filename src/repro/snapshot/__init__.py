"""Chandy–Lamport snapshots (related-work synchronization-message exemplar)."""

from repro.snapshot.chandy_lamport import SnapshotRecord, TransferSystem

__all__ = ["SnapshotRecord", "TransferSystem"]

"""Chandy–Lamport distributed snapshots — the fault-free ancestor of the
paper's synchronization messages.

The related-work section singles out the Chandy–Lamport marker as "maybe
the most known example" of a synchronization message: a content-free
message whose *position in the channel* carries the information, cleanly
separating the messages sent before it from those sent after.  The paper's
COMMIT plays the same structural role inside one round (everything before
it — the data step — is known complete).  This module implements the
original algorithm so the analogy is executable.

The substrate is a FIFO, reliable, failure-free message-passing system
(the algorithm's own model): an event-driven simulation whose per-channel
delivery order matches send order (delays are drawn per message but
monotonized per channel).  The demo application is the classic money
transfer system, whose conserved total makes snapshot consistency
checkable: **recorded balances + recorded in-transit money = total**.

Algorithm, per process:

* *initiate / first marker on channel c*: record local state, mark ``c``'s
  in-transit set empty, send a marker on every outgoing channel, start
  recording every other incoming channel;
* *subsequent messages on a recording channel*: add to that channel's
  in-transit record;
* *marker on channel c while already recording*: stop recording ``c``;
  its record is final.

The snapshot is complete when every process has received a marker on every
incoming channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.asyncsim.events import EventQueue
from repro.errors import ConfigurationError, SimulationError
from repro.net.message import Message, MessageKind
from repro.util.rng import RandomSource

__all__ = ["TransferSystem", "SnapshotRecord"]


@dataclass(slots=True)
class SnapshotRecord:
    """One process's recorded slice of the global snapshot."""

    pid: int
    state: Any = None
    recorded: bool = False
    channel_messages: dict[int, list[Any]] = field(default_factory=dict)
    recording: set[int] = field(default_factory=set)
    markers_seen: set[int] = field(default_factory=set)

    @property
    def complete(self) -> bool:
        """Has this process closed every incoming channel?"""
        return self.recorded and not self.recording


class TransferSystem:
    """Money-transfer application over FIFO channels + the snapshot layer."""

    def __init__(
        self,
        n: int,
        initial_balance: int = 100,
        *,
        rng: RandomSource | None = None,
        mean_delay: float = 1.0,
    ) -> None:
        if n < 2:
            raise ConfigurationError("need n >= 2")
        if initial_balance < 0:
            raise ConfigurationError("balances start non-negative")
        self.n = n
        self.queue = EventQueue()
        self.rng = rng or RandomSource(0)
        self.mean_delay = mean_delay
        self.balance: dict[int, int] = {pid: initial_balance for pid in range(1, n + 1)}
        self.total = n * initial_balance
        self.records: dict[int, SnapshotRecord] = {
            pid: SnapshotRecord(pid=pid) for pid in range(1, n + 1)
        }
        # Per-channel watermark guaranteeing FIFO delivery order.
        self._last_delivery: dict[tuple[int, int], float] = {}
        self.transfers_sent = 0
        self.markers_sent = 0

    # -- transport (FIFO) --------------------------------------------------------

    def _send(self, msg: Message) -> None:
        key = (msg.sender, msg.dest)
        raw = self.queue.now + self.rng.exponential(self.mean_delay)
        at = max(raw, self._last_delivery.get(key, 0.0) + 1e-9)
        self._last_delivery[key] = at
        self.queue.schedule_at(at, lambda: self._on_message(msg), label=str(msg))

    def transfer(self, src: int, dest: int, amount: int) -> None:
        """Move money (debited now, credited on delivery — the in-transit
        window the snapshot must capture)."""
        if src == dest:
            raise ConfigurationError("no self transfers")
        if amount <= 0 or self.balance[src] < amount:
            return  # insufficient funds: drop the request (application policy)
        self.balance[src] -= amount
        self.transfers_sent += 1
        self._send(
            Message(MessageKind.ASYNC, src, dest, 0, payload=amount, tag="XFER")
        )

    def random_traffic(self, transfers: int, horizon: float) -> None:
        """Schedule ``transfers`` random transfer attempts before ``horizon``."""
        for _ in range(transfers):
            at = self.rng.uniform(0.0, horizon)
            src = self.rng.randint(1, self.n)
            dest = src
            while dest == src:
                dest = self.rng.randint(1, self.n)
            amount = self.rng.randint(1, 30)
            self.queue.schedule_at(
                at, lambda s=src, d=dest, a=amount: self.transfer(s, d, a)
            )

    # -- snapshot protocol -----------------------------------------------------------

    def initiate_snapshot(self, initiator: int, at: float) -> None:
        """Schedule snapshot initiation at time ``at``."""
        self.queue.schedule_at(at, lambda: self._record_and_flood(initiator, None))

    def _record_and_flood(self, pid: int, via_channel: int | None) -> None:
        rec = self.records[pid]
        if rec.recorded:
            return
        rec.recorded = True
        rec.state = self.balance[pid]
        rec.recording = {j for j in range(1, self.n + 1) if j != pid}
        if via_channel is not None:
            # The channel the first marker arrived on records as empty.
            rec.recording.discard(via_channel)
            rec.channel_messages[via_channel] = []
        for j in sorted(rec.recording):
            rec.channel_messages[j] = []
        for dest in range(1, self.n + 1):
            if dest != pid:
                self.markers_sent += 1
                self._send(Message(MessageKind.MARKER, pid, dest, 0))

    def _on_message(self, msg: Message) -> None:
        if msg.kind is MessageKind.MARKER:
            rec = self.records[msg.dest]
            if msg.sender in rec.markers_seen:
                raise SimulationError("duplicate marker on a channel")
            rec.markers_seen.add(msg.sender)
            if not rec.recorded:
                self._record_and_flood(msg.dest, msg.sender)
            else:
                rec.recording.discard(msg.sender)
            return
        # Application transfer.
        self.balance[msg.dest] += msg.payload
        rec = self.records[msg.dest]
        if rec.recorded and msg.sender in rec.recording:
            rec.channel_messages[msg.sender].append(msg.payload)

    # -- running + verification ---------------------------------------------------------

    def run(self, until: float = 1_000.0) -> None:
        """Drain the event queue."""
        self.queue.run(until=until)

    @property
    def snapshot_complete(self) -> bool:
        return all(rec.complete for rec in self.records.values())

    def snapshot_total(self) -> int:
        """Recorded balances + recorded in-transit money."""
        if not self.snapshot_complete:
            raise SimulationError("snapshot not complete yet")
        state_money = sum(rec.state for rec in self.records.values())
        transit_money = sum(
            sum(msgs)
            for rec in self.records.values()
            for msgs in rec.channel_messages.values()
        )
        return state_money + transit_money

    def check_consistency(self) -> list[str]:
        """Snapshot invariants (empty = consistent cut)."""
        problems = []
        if not self.snapshot_complete:
            problems.append("snapshot incomplete")
            return problems
        snap = self.snapshot_total()
        if snap != self.total:
            problems.append(
                f"conservation violated: snapshot money {snap} != total {self.total}"
            )
        live = sum(self.balance.values())
        # After quiescence all transfers delivered: live money == total too.
        if not self.queue.__len__() and live != self.total:
            problems.append(f"live money {live} != total {self.total}")
        return problems

"""Early-stopping flooding uniform consensus: ``min(f+2, t+1)`` rounds.

This is the classic-model comparison point of the paper's Section 2.2: the
best early-deciding uniform consensus in the traditional model needs
``f + 2`` rounds (Charron-Bost & Schiper 2004, Keidar & Rajsbaum 2003),
one more than the extended-model algorithm.

The implementation follows the standard counting scheme (Raynal's guided
tour, PRDC'02):

* every round, broadcast ``(est, early)`` where ``est`` is the minimum
  value seen and ``early`` says "I will decide right after this message";
* maintain ``nbr[r]`` = number of processes heard from in round ``r``
  (counting yourself), with ``nbr[0] = n``;
* if ``nbr[r] == nbr[r-1]``, no process died *visibly* between the two
  rounds, which implies you heard from **every** process that was alive at
  the start of round ``r`` — hence your ``est`` is the minimum estimate
  anywhere in the system: set ``early``;
* a received ``early`` flag is adopted (the flag's value accompanies it and
  is the global minimum, so adopting keeps est consistent);
* a process with ``early`` set broadcasts once more and decides; everyone
  reaching round ``t + 1`` decides there unconditionally.

Why ``f + 2``: per process, ``nbr`` can strictly decrease at most ``f``
times, so among the ``f + 1`` comparisons available by round ``f + 1`` one
is an equality; the extra broadcast round makes it ``f + 2``.  Why uniform:
an equality at ``p`` implies ``p``'s estimate is the global minimum (every
process alive at the start of the round delivered to ``p`` — a sender that
reached *anyone* without reaching ``p`` would have made the count drop), and
``p`` only decides after successfully re-broadcasting that minimum to all.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.baselines.floodset import value_key
from repro.sync.api import (
    BatchedAlgorithm,
    RoundInbox,
    SendPlan,
    SyncProcess,
    VectorAlgorithm,
    VectorSend,
    register_batched_table,
    register_vector_table,
)
from repro.util.columns import all_int64, bool_column, int_column, put, take
from repro.util.tables import fill_column, refill_column

__all__ = ["EarlyStoppingConsensus"]


class EarlyStoppingConsensus(SyncProcess):
    """One early-stopping flooding process (classic model)."""

    __slots__ = ("proposal", "t", "est", "early", "_prev_nbr")

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
        self.proposal = proposal
        self.t = t
        self.est: Any = proposal
        self.early = False  # set -> broadcast (est, EARLY) next round, then decide
        self._prev_nbr = n  # nbr[0] = n

    def send_phase(self, round_no: int) -> SendPlan:
        payload = (self.est, self.early)
        return SendPlan(
            data={j: payload for j in range(1, self.n + 1) if j != self.pid}
        )

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        if self.early:
            # The EARLY broadcast of this round completed (we are computing,
            # hence we did not crash during the send phase): decide exactly
            # the value that was broadcast.
            self.decide(self.est)
            return

        nbr = len(inbox.data) + 1  # senders heard from, plus self
        flagged = False
        for est, early in inbox.data.values():
            if value_key(est) < value_key(self.est):
                self.est = est
            if early:
                flagged = True

        if round_no == self.t + 1:
            # Horizon: decide unconditionally (classic t+1 fallback).
            self.decide(self.est)
            return

        if flagged or nbr == self._prev_nbr:
            self.early = True
        self._prev_nbr = nbr


@register_batched_table(EarlyStoppingConsensus)
class _EarlyStoppingTable(BatchedAlgorithm):
    """Columnar early-stopping: ``est``/``early``/``nbr`` in parallel lists."""

    __slots__ = ("n", "horizon", "est", "early", "prev_nbr", "dests")

    def __init__(self, processes: Sequence[SyncProcess]) -> None:
        n = processes[0].n
        self.n = n
        self.horizon = [0] * (n + 1)
        self.est: list[Any] = [None] * (n + 1)
        self.early = [False] * (n + 1)
        self.prev_nbr = [0] * (n + 1)
        self.dests: list[tuple[int, ...]] = [()] * (n + 1)
        for p in processes:
            self.horizon[p.pid] = p.t + 1
            self.est[p.pid] = p.est
            self.early[p.pid] = p.early
            self.prev_nbr[p.pid] = p._prev_nbr
            self.dests[p.pid] = tuple(j for j in range(1, n + 1) if j != p.pid)

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "_EarlyStoppingTable":
        return cls(processes)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        # Fresh state: est = proposal, early unset, nbr[0] = n; the horizon
        # and destination tuples are configuration, kept as-is.
        refill_column(self.est, proposals, offset=1)
        fill_column(self.early, False, offset=1)
        fill_column(self.prev_nbr, self.n, offset=1)
        return True

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        est = self.est
        early = self.early
        dests = self.dests
        return {
            pid: SendPlan(data=dict.fromkeys(dests[pid], (est[pid], early[pid])))
            for pid in active
        }

    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        est = self.est
        early = self.early
        prev_nbr = self.prev_nbr
        horizon = self.horizon
        decisions: dict[int, Any] = {}
        for pid, inbox in inboxes.items():
            if early[pid]:
                # The EARLY broadcast of this round completed: decide it.
                decisions[pid] = est[pid]
                continue
            data = inbox.data
            nbr = len(data) + 1
            flagged = False
            my_est = est[pid]
            my_key = value_key(my_est)
            for got, got_early in data.values():
                key = value_key(got)
                if key < my_key:
                    my_est = got
                    my_key = key
                if got_early:
                    flagged = True
            est[pid] = my_est
            if round_no == horizon[pid]:
                decisions[pid] = my_est
                continue
            if flagged or nbr == prev_nbr[pid]:
                early[pid] = True
            prev_nbr[pid] = nbr
        return decisions


@register_vector_table(EarlyStoppingConsensus)
class _EarlyStoppingVectorTable(VectorAlgorithm):
    """Array-columnar early-stopping: int64 ``est``/``nbr``, bool ``early``.

    The crash-free round has a closed form the whole-column state makes
    one pass: every sender reached every receiver, so each non-early
    receiver's new estimate is the *global* minimum over the active set,
    its ``nbr`` equals the active count, and the flag spreads to all or
    none.  Crash rounds reconstruct per receiver from the truncated
    sends (bounded by ``f`` rounds per run).  Requires plain-int
    proposals and a uniform horizon; anything else falls back to the
    list-batched table.
    """

    __slots__ = ("n", "horizon", "est", "early", "prev_nbr", "dests")

    def __init__(self, n: int, horizon: int, est: Any, early: Any, prev_nbr: Any) -> None:
        self.n = n
        self.horizon = horizon  # uniform t + 1
        self.est = est
        self.early = early
        self.prev_nbr = prev_nbr
        self.dests: list[tuple[int, ...]] = [
            tuple(j for j in range(1, n + 1) if j != pid) for pid in range(n + 1)
        ]

    @classmethod
    def from_processes(
        cls, processes: Sequence[SyncProcess]
    ) -> "_EarlyStoppingVectorTable | None":
        horizon = processes[0].t + 1
        if any(p.t + 1 != horizon for p in processes):
            return None
        if not all_int64([p.est for p in processes]):
            return None
        n = processes[0].n
        est = [0] * (n + 1)
        early = [False] * (n + 1)
        prev_nbr = [0] * (n + 1)
        for p in processes:
            est[p.pid] = p.est
            early[p.pid] = p.early
            prev_nbr[p.pid] = p._prev_nbr
        return cls(
            n, horizon, int_column(est), bool_column(early), int_column(prev_nbr)
        )

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        if not all_int64(proposals):
            return False
        refill_column(self.est, proposals, offset=1)
        fill_column(self.early, False, offset=1)
        fill_column(self.prev_nbr, self.n, offset=1)
        return True

    def send_phase_vector(self, round_no: int, active: Sequence[int]) -> list[VectorSend]:
        # Every active process broadcasts (est, early) to all others; the
        # payload tuples carry Python scalars (bit-accounting parity).
        dests = self.dests
        ests = take(self.est, active)
        earlies = take(self.early, active)
        return [
            (pid, dests[pid], (e, bool(ey)), ())
            for pid, e, ey in zip(active, ests, earlies)
        ]

    def compute_phase_vector(
        self,
        round_no: int,
        receivers: set[int],
        receiver_order: list[int],
        sends: list[VectorSend],
        crash_free: bool,
    ) -> dict[int, Any]:
        est = self.est
        early = self.early
        prev_nbr = self.prev_nbr
        decisions: dict[int, Any] = {}
        ro = receiver_order
        if crash_free:
            # Senders == receivers: one global minimum, one shared nbr.
            ests = take(est, ro)
            earlies = take(early, ro)
            m = min(ests)
            flagged = any(earlies)
            nbr = len(ro)
            if round_no == self.horizon:
                # Everyone decides: early processes their broadcast value,
                # the rest the global minimum (ascending pid order).
                for pid, e, v in zip(ro, earlies, ests):
                    decisions[pid] = v if e else m
                return decisions
            stayers = [pid for pid, e in zip(ro, earlies) if not e]
            for pid, e, v in zip(ro, earlies, ests):
                if e:
                    decisions[pid] = v
            put(est, stayers, m)
            if flagged:
                put(early, stayers, True)
            else:
                flips = [pid for pid in stayers if prev_nbr[pid] == nbr]
                put(early, flips, True)
            put(prev_nbr, stayers, nbr)
            return decisions
        # Crash round: per-receiver reconstruction over the truncated sends.
        full = self.n - 1
        for pid in ro:
            if early[pid]:
                decisions[pid] = int(est[pid])
                continue
            my_est = int(est[pid])
            my_key = value_key(my_est)
            flagged = False
            count = 0
            for sender, dests, payload, _control in sends:
                if sender == pid:
                    continue
                if len(dests) != full and pid not in dests:
                    continue  # truncated subset missing this receiver
                count += 1
                got, got_early = payload
                key = value_key(got)
                if key < my_key:
                    my_est = got
                    my_key = key
                if got_early:
                    flagged = True
            nbr = count + 1
            est[pid] = my_est
            if round_no == self.horizon:
                decisions[pid] = my_est
                continue
            if flagged or nbr == prev_nbr[pid]:
                early[pid] = True
            prev_nbr[pid] = nbr
        return decisions

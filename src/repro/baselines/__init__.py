"""Classic-model baselines the paper compares against."""

from repro.baselines.early_stopping import EarlyStoppingConsensus
from repro.baselines.floodset import FloodSetConsensus, value_key
from repro.baselines.interactive_consistency import (
    BOTTOM,
    ICConsensus,
    InteractiveConsistency,
    check_interactive_consistency,
)

__all__ = [
    "EarlyStoppingConsensus",
    "FloodSetConsensus",
    "value_key",
    "BOTTOM",
    "ICConsensus",
    "InteractiveConsistency",
    "check_interactive_consistency",
]

"""FloodSet: the textbook ``t+1``-round uniform consensus (classic model).

This is the flooding strategy the paper's footnote 5 describes as the basis
of "all the consensus algorithms for synchronous systems that we are aware
of": at every round each process relays the *new* values it learned in the
previous round; after ``t + 1`` rounds it decides a deterministic function
(here: the minimum) of its value set ``W``.

Correctness sketch (classic): with at most ``t`` crashes over ``t + 1``
rounds, some round is crash-free; after it all live processes hold equal
``W`` sets, and a set can only grow with values every live process already
has, so every process that completes round ``t + 1`` decides the same
minimum.  Uniform agreement holds because *any* decider (even one about to
crash later — there is no later) executed all ``t + 1`` rounds.

The algorithm never stops early: its round count is ``t + 1`` regardless of
``f``, which is exactly the comparison point of the paper's introduction
("when considering only t: any t-resilient consensus algorithm requires
t + 1 rounds").

Values must be totally ordered (ints, strings, or ``SizedValue`` wrapping a
comparable value — comparison uses the wrapped value).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.net.payload import SizedValue
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess

__all__ = ["FloodSetConsensus", "value_key"]


def value_key(value: Any) -> Any:
    """Total-order key used by flooding baselines to pick a decision."""
    if isinstance(value, SizedValue):
        return value.value
    return value


class FloodSetConsensus(SyncProcess):
    """One FloodSet process (classic synchronous model, ``t+1`` rounds)."""

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
        self.proposal = proposal
        self.t = t
        self.known: set[Any] = {proposal}  # W: every value seen so far
        self._new: set[Any] = {proposal}  # values learned last round (to relay)

    @property
    def horizon(self) -> int:
        """The fixed decision round, ``t + 1``."""
        return self.t + 1

    def send_phase(self, round_no: int) -> SendPlan:
        if round_no > self.horizon:
            return NO_SEND  # defensive; the process decides at the horizon
        if not self._new:
            return NO_SEND  # flooding optimisation: nothing new, stay silent
        payload = frozenset(self._new)
        return SendPlan(data={j: payload for j in range(1, self.n + 1) if j != self.pid})

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        incoming: set[Any] = set()
        for values in inbox.data.values():
            incoming.update(values)
        self._new = incoming - self.known
        self.known |= self._new
        if round_no == self.horizon:
            self.decide(min(self.known, key=value_key))

"""FloodSet: the textbook ``t+1``-round uniform consensus (classic model).

This is the flooding strategy the paper's footnote 5 describes as the basis
of "all the consensus algorithms for synchronous systems that we are aware
of": at every round each process relays the *new* values it learned in the
previous round; after ``t + 1`` rounds it decides a deterministic function
(here: the minimum) of its value set ``W``.

Correctness sketch (classic): with at most ``t`` crashes over ``t + 1``
rounds, some round is crash-free; after it all live processes hold equal
``W`` sets, and a set can only grow with values every live process already
has, so every process that completes round ``t + 1`` decides the same
minimum.  Uniform agreement holds because *any* decider (even one about to
crash later — there is no later) executed all ``t + 1`` rounds.

The algorithm never stops early: its round count is ``t + 1`` regardless of
``f``, which is exactly the comparison point of the paper's introduction
("when considering only t: any t-resilient consensus algorithm requires
t + 1 rounds").

Values must be totally ordered (ints, strings, or ``SizedValue`` wrapping a
comparable value — comparison uses the wrapped value).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.net.payload import SizedValue
from repro.sync.api import (
    EMPTY_INBOX,
    NO_SEND,
    BatchedAlgorithm,
    RoundInbox,
    SendPlan,
    SyncProcess,
    VectorAlgorithm,
    VectorSend,
    register_batched_table,
    register_vector_table,
)
from repro.util.columns import HAVE_NUMPY, int64_fits, np, or_at, take, uint64_column

#: Fallback-path mask clamp: ``~known`` on Python ints goes negative, the
#: ``array("Q")`` column only stores 64-bit non-negatives.
_MASK64 = (1 << 64) - 1

#: Shared "learned nothing" value for the relay column: only ever tested for
#: emptiness or subtracted from, never mutated in place.
_NOTHING_NEW: frozenset[Any] = frozenset()

__all__ = ["FloodSetConsensus", "value_key"]


def value_key(value: Any) -> Any:
    """Total-order key used by flooding baselines to pick a decision."""
    if isinstance(value, SizedValue):
        return value.value
    return value


class FloodSetConsensus(SyncProcess):
    """One FloodSet process (classic synchronous model, ``t+1`` rounds)."""

    __slots__ = ("proposal", "t", "known", "_new")

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
        self.proposal = proposal
        self.t = t
        self.known: set[Any] = {proposal}  # W: every value seen so far
        self._new: set[Any] = {proposal}  # values learned last round (to relay)

    @property
    def horizon(self) -> int:
        """The fixed decision round, ``t + 1``."""
        return self.t + 1

    def send_phase(self, round_no: int) -> SendPlan:
        if round_no > self.horizon:
            return NO_SEND  # defensive; the process decides at the horizon
        if not self._new:
            return NO_SEND  # flooding optimisation: nothing new, stay silent
        payload = frozenset(self._new)
        return SendPlan(data={j: payload for j in range(1, self.n + 1) if j != self.pid})

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        incoming: set[Any] = set()
        for values in inbox.data.values():
            incoming.update(values)
        self._new = incoming - self.known
        self.known |= self._new
        if round_no == self.horizon:
            self.decide(min(self.known, key=value_key))


@register_batched_table(FloodSetConsensus)
class _FloodSetTable(BatchedAlgorithm):
    """Columnar FloodSet: ``known``/``new`` sets in pid-indexed lists.

    Every process broadcasts to the same (precomputed) destination tuple,
    so a round's plans are ``dict.fromkeys`` calls instead of per-process
    dict comprehensions behind a method dispatch.
    """

    __slots__ = ("n", "horizon", "known", "new", "dests")

    def __init__(self, processes: Sequence[SyncProcess]) -> None:
        n = processes[0].n
        self.n = n
        self.horizon = [0] * (n + 1)
        self.known: list[set[Any]] = [set() for _ in range(n + 1)]
        self.new: list[set[Any]] = [set() for _ in range(n + 1)]
        self.dests: list[tuple[int, ...]] = [()] * (n + 1)
        for p in processes:
            self.horizon[p.pid] = p.horizon
            self.known[p.pid] = set(p.known)
            self.new[p.pid] = set(p._new)
            self.dests[p.pid] = tuple(j for j in range(1, n + 1) if j != p.pid)

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "_FloodSetTable":
        return cls(processes)

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        # A fresh FloodSet process starts with W = new = {proposal}; the
        # horizon and destination tuples are configuration, kept as-is.
        known = self.known
        new = self.new
        for pid, proposal in enumerate(proposals, start=1):
            known[pid] = {proposal}
            new[pid] = {proposal}
        return True

    def send_phase_all(self, round_no: int, active: Sequence[int]) -> dict[int, SendPlan]:
        plans: dict[int, SendPlan] = {}
        horizon = self.horizon
        new = self.new
        dests = self.dests
        for pid in active:
            fresh = new[pid]
            if round_no > horizon[pid] or not fresh:
                plans[pid] = NO_SEND
            else:
                plans[pid] = SendPlan(
                    data=dict.fromkeys(dests[pid], frozenset(fresh))
                )
        return plans

    def compute_phase_all(
        self, round_no: int, inboxes: Mapping[int, RoundInbox]
    ) -> dict[int, Any]:
        known = self.known
        new = self.new
        horizon = self.horizon
        decisions: dict[int, Any] = {}
        for pid, inbox in inboxes.items():
            if inbox is EMPTY_INBOX:
                new[pid] = _NOTHING_NEW  # W unchanged; stay silent next round
            else:
                incoming: set[Any] = set()
                for values in inbox.data.values():
                    incoming.update(values)
                fresh = incoming - known[pid]
                new[pid] = fresh
                known[pid] |= fresh
            if round_no == horizon[pid]:
                decisions[pid] = min(known[pid], key=value_key)
        return decisions


@register_vector_table(FloodSetConsensus)
class _FloodSetVectorTable(VectorAlgorithm):
    """Bitmask FloodSet: each value set as one uint64 word per process.

    Eligible when the run's value universe is at most 64 distinct plain
    ints (and the horizon is uniform): value → bit position in ascending
    value order, so set union is bitwise OR, "learned nothing new" is
    ``incoming & ~known == 0``, and the horizon decision — the minimum of
    ``W`` — is the lowest set bit.  The crash-free round is three
    whole-column operations; payloads decode back to the exact frozensets
    the object path sends (cached per mask, so repeated relays cost a
    dict hit).
    """

    __slots__ = ("n", "horizon", "universe", "bit_of", "known", "new", "dests", "_payloads")

    def __init__(self, n: int, horizon: int, universe: list[int], known: Any, new: Any) -> None:
        self.n = n
        self.horizon = horizon  # uniform t + 1
        self.universe = universe  # bit -> value, ascending
        self.bit_of = {v: i for i, v in enumerate(universe)}
        self.known = known
        self.new = new
        self.dests: list[tuple[int, ...]] = [
            tuple(j for j in range(1, n + 1) if j != pid) for pid in range(n + 1)
        ]
        self._payloads: dict[int, frozenset[int]] = {}

    @classmethod
    def from_processes(cls, processes: Sequence[SyncProcess]) -> "_FloodSetVectorTable | None":
        horizon = processes[0].horizon
        if any(p.horizon != horizon for p in processes):
            return None
        values: set[Any] = set()
        for p in processes:
            values |= p.known
        if len(values) > 64 or not all(int64_fits(v) for v in values):
            return None
        universe = sorted(values)
        bit_of = {v: i for i, v in enumerate(universe)}
        n = processes[0].n
        known = [0] * (n + 1)
        new = [0] * (n + 1)
        for p in processes:
            for v in p.known:
                known[p.pid] |= 1 << bit_of[v]
            for v in p._new:
                new[p.pid] |= 1 << bit_of[v]
        return cls(n, horizon, universe, uint64_column(known), uint64_column(new))

    supports_refill = True

    def refill(self, proposals: Sequence[Any]) -> bool:
        values = set(proposals)
        if len(values) > 64 or not all(int64_fits(v) for v in values):
            return False  # universe outgrew the mask: factory + reset instead
        universe = sorted(values)
        if universe != self.universe:
            self.universe = universe
            self.bit_of = {v: i for i, v in enumerate(universe)}
            self._payloads.clear()
        bit_of = self.bit_of
        masks = [1 << bit_of[v] for v in proposals]
        known = self.known
        new = self.new
        for pid, mask in enumerate(masks, start=1):
            known[pid] = mask
            new[pid] = mask
        return True

    def _payload(self, mask: int) -> frozenset[int]:
        """The frozenset the object path would send for this ``new`` mask."""
        cached = self._payloads.get(mask)
        if cached is None:
            universe = self.universe
            values = []
            m = mask
            while m:
                low = m & -m
                values.append(universe[low.bit_length() - 1])
                m ^= low
            cached = self._payloads[mask] = frozenset(values)
        return cached

    def send_phase_vector(self, round_no: int, active: Sequence[int]) -> list[VectorSend]:
        if round_no > self.horizon:
            return []  # defensive, mirroring the object path
        dests = self.dests
        payload = self._payload
        return [
            (pid, dests[pid], payload(mask), ())
            for pid, mask in zip(active, take(self.new, active))
            if mask
        ]

    def compute_phase_vector(
        self,
        round_no: int,
        receivers: set[int],
        receiver_order: list[int],
        sends: list[VectorSend],
        crash_free: bool,
    ) -> dict[int, Any]:
        known = self.known
        new = self.new
        ro = receiver_order
        if crash_free:
            # Every receiver hears every speaker.  A receiver's own relay
            # contributes only bits it already knows, so one global OR
            # serves everyone: fresh = total & ~known.  The payloads were
            # cut from the ``new`` column this very round, so the masks
            # come straight back out of it — no frozenset re-encoding.
            total = or_at(new, [s[0] for s in sends]) if sends else 0
            if total:
                self._or_in(total, ro)
            else:
                self._clear_new(ro)
        else:
            full = self.n - 1
            masks = [
                (s[0], s[1], len(s[1]) == full, int(new[s[0]])) for s in sends
            ]
            for pid in ro:
                incoming = 0
                for sender, dests, is_full, mask in masks:
                    if sender == pid:
                        continue
                    if is_full or pid in dests:
                        incoming |= mask
                k = int(known[pid])
                fresh = incoming & ~k
                new[pid] = fresh
                known[pid] = k | fresh
        if round_no != self.horizon:
            return {}
        # Horizon: everyone decides min(W) — the lowest set bit.
        universe = self.universe
        return {
            pid: universe[(k & -k).bit_length() - 1]
            for pid, k in zip(ro, take(known, ro))
        }

    def _or_in(self, total: int, ro: list[int]) -> None:
        """``fresh = total & ~known; known |= fresh; new = fresh`` columnwise."""
        known = self.known
        new = self.new
        if HAVE_NUMPY and isinstance(known, np.ndarray):
            t = np.uint64(total)
            k = known[ro]
            fresh = t & ~k
            new[ro] = fresh
            known[ro] = k | fresh
            return
        for pid in ro:
            k = known[pid]
            fresh = total & ~k & _MASK64
            new[pid] = fresh
            known[pid] = k | fresh

    def _clear_new(self, ro: list[int]) -> None:
        new = self.new
        if HAVE_NUMPY and isinstance(new, np.ndarray):
            new[ro] = 0
            return
        for pid in ro:
            new[pid] = 0

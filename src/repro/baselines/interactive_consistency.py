"""Interactive consistency — the problem behind the paper's ``t+1`` citation.

The introduction's "any t-resilient consensus algorithm requires t+1
rounds" cites Fischer–Lynch [10], whose lower bound is stated for
*interactive consistency* (IC): every correct process must output the
**same vector** ``V`` with

* **validity** — ``V[j] = v_j`` for every correct ``p_j``, and
  ``V[j] ∈ {v_j, ⊥}`` for faulty ``p_j``;
* **agreement** — all deciders output the same vector (uniform here);
* **termination** — every correct process decides.

Under crash faults, flooding solves IC in ``t+1`` classic rounds: each
process relays every *(origin, value)* pair it learns (newly-learned pairs
only — the same silence optimisation as FloodSet); after a crash-free
round all live knowledge sets are equal and stay equal, and with at most
``t`` crashes one of ``t+1`` rounds is crash-free.

The classic reduction IC → consensus (decide a deterministic function of
the agreed vector, here the minimum entry) is provided by
:class:`ICConsensus` and tested against FloodSet — they are the same
flooding engine viewed through two outputs.
"""

from __future__ import annotations

from typing import Any

from repro.baselines.floodset import value_key
from repro.errors import ConfigurationError
from repro.sync.api import NO_SEND, RoundInbox, SendPlan, SyncProcess
from repro.sync.result import RunResult

__all__ = [
    "BOTTOM",
    "InteractiveConsistency",
    "ICConsensus",
    "check_interactive_consistency",
]


class _Bottom:
    """The ⊥ vector entry for processes whose value never arrived."""

    _instance = None

    #: Protocol marker consumed by :func:`repro.scenarios.record.jsonable`
    #: (see :class:`repro.asyncsim.mr99._Bot` for the rationale).
    __consensus_bottom__ = True

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"

    def bit_size(self) -> int:
        return 1


BOTTOM = _Bottom()


class InteractiveConsistency(SyncProcess):
    """Flooding IC (classic model, ``t+1`` rounds); decides a tuple vector."""

    def __init__(self, pid: int, n: int, proposal: Any, t: int) -> None:
        super().__init__(pid, n)
        if not 0 <= t < n:
            raise ConfigurationError(f"t must satisfy 0 <= t < n, got t={t}, n={n}")
        self.proposal = proposal
        self.t = t
        self.known: dict[int, Any] = {pid: proposal}  # origin -> value
        self._new: dict[int, Any] = {pid: proposal}

    @property
    def horizon(self) -> int:
        return self.t + 1

    def send_phase(self, round_no: int) -> SendPlan:
        if round_no > self.horizon or not self._new:
            return NO_SEND
        payload = tuple(sorted(self._new.items()))
        return SendPlan(
            data={j: payload for j in range(1, self.n + 1) if j != self.pid}
        )

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        incoming: dict[int, Any] = {}
        for pairs in inbox.data.values():
            for origin, value in pairs:
                incoming.setdefault(origin, value)
        self._new = {o: v for o, v in incoming.items() if o not in self.known}
        self.known.update(self._new)
        if round_no == self.horizon:
            vector = tuple(
                self.known.get(j, BOTTOM) for j in range(1, self.n + 1)
            )
            self.decide(vector)


class ICConsensus(InteractiveConsistency):
    """The IC → consensus reduction: decide the minimum vector entry."""

    def compute_phase(self, round_no: int, inbox: RoundInbox) -> None:
        super().compute_phase(round_no, inbox)
        if self.decided:
            vector = self.decision
            values = [v for v in vector if v is not BOTTOM]
            # Replace the vector decision by the reduced scalar decision.
            self._decision = min(values, key=value_key)


def check_interactive_consistency(result: RunResult) -> list[str]:
    """IC spec violations for a run of :class:`InteractiveConsistency`."""
    violations: list[str] = []
    vectors = list(result.decisions.values())
    # Uniform vector agreement.
    if len(set(vectors)) > 1:
        violations.append(f"vector agreement: {set(vectors)}")
    # Termination.
    for pid in result.correct_pids:
        if not result.outcomes[pid].decided:
            violations.append(f"termination: correct p{pid} never decided")
    # Validity, entry by entry.
    for pid, vector in result.decisions.items():
        if len(vector) != result.n:
            violations.append(f"p{pid}: vector arity {len(vector)} != n")
            continue
        for j in range(1, result.n + 1):
            entry = vector[j - 1]
            expected = result.outcomes[j].proposal
            if result.outcomes[j].correct:
                if entry != expected:
                    violations.append(
                        f"validity: p{pid} has V[{j}]={entry!r} but correct p{j} proposed {expected!r}"
                    )
            elif entry is not BOTTOM and entry != expected:
                violations.append(
                    f"validity: p{pid} has V[{j}]={entry!r} not in {{{expected!r}, ⊥}}"
                )
    return violations

"""Workload generators: proposal vectors and crash grids."""

from repro.workloads.crashes import ADVERSARIES, CrashGrid, make_adversary
from repro.workloads.proposals import (
    binary_vector,
    distinct_ints,
    identical,
    sized_proposals,
    skewed,
)

__all__ = [
    "ADVERSARIES",
    "CrashGrid",
    "make_adversary",
    "binary_vector",
    "distinct_ints",
    "identical",
    "sized_proposals",
    "skewed",
]

"""Crash-workload grids: named adversaries × f sweeps for the harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError
from repro.sync.adversary import (
    Adversary,
    CommitSplitter,
    CoordinatorKiller,
    MaxTrafficCascade,
    NoCrash,
    RandomCrashes,
    StaggeredKiller,
)

__all__ = ["ADVERSARIES", "make_adversary", "CrashGrid"]

#: Registry of named adversary constructors: name -> callable(f) -> Adversary.
ADVERSARIES = {
    "none": lambda f: NoCrash(),
    "coordinator-killer": lambda f: CoordinatorKiller(f),
    "coordinator-killer-subset": lambda f: CoordinatorKiller(f, deliver_to_none=False),
    "commit-splitter": lambda f: CommitSplitter(f),
    "max-traffic": lambda f: MaxTrafficCascade(f),
    "staggered": lambda f: StaggeredKiller(f),
    "random": lambda f: RandomCrashes(f),
    "random-classic": lambda f: RandomCrashes(f, classic=True),
}


def make_adversary(name: str, f: int) -> Adversary:
    """Instantiate a registered adversary by name."""
    try:
        ctor = ADVERSARIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary {name!r}; available: {sorted(ADVERSARIES)}"
        ) from None
    return ctor(f)


@dataclass(frozen=True)
class CrashGrid:
    """A (n, t, f, adversary, seed) sweep definition."""

    n_values: tuple[int, ...]
    adversaries: tuple[str, ...]
    seeds: int = 10
    t_rule: str = "n-1"  # "n-1" | "third" (t = ceil(n/3))

    def t_for(self, n: int) -> int:
        if self.t_rule == "n-1":
            return n - 1
        if self.t_rule == "third":
            return max(1, (n + 2) // 3)
        raise ConfigurationError(f"unknown t_rule {self.t_rule!r}")

    def __iter__(self) -> Iterator[tuple[int, int, int, str, int]]:
        """Yield (n, t, f, adversary_name, seed) tuples."""
        for n in self.n_values:
            t = self.t_for(n)
            for name in self.adversaries:
                f_range = [0] if name == "none" else list(range(0, t + 1))
                for f in f_range:
                    for seed in range(self.seeds):
                        yield (n, t, f, name, seed)

"""Proposal-vector generators for experiments and tests."""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError
from repro.net.payload import SizedValue
from repro.util.rng import RandomSource

__all__ = [
    "distinct_ints",
    "binary_vector",
    "sized_proposals",
    "identical",
    "skewed",
]


def distinct_ints(n: int, base: int = 100) -> list[int]:
    """``[base+1, …, base+n]`` — the default everything-distinct workload."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    return [base + pid for pid in range(1, n + 1)]


def binary_vector(n: int, rng: RandomSource, p_one: float = 0.5) -> list[int]:
    """Random 0/1 proposals (the lower-bound experiments' alphabet).

    Bulk-drawn (stream-identical to the per-element loop it replaces).
    """
    return [1 if b else 0 for b in rng.bools(n, p_one)]


def sized_proposals(n: int, bits: int, base: int = 100) -> list[SizedValue]:
    """Distinct values with a declared wire width (Theorem 2's ``|v|``)."""
    if bits < 1:
        raise ConfigurationError("bits must be >= 1")
    return [SizedValue(base + pid, bits) for pid in range(1, n + 1)]


def identical(n: int, value: Any = 7) -> list[Any]:
    """Everyone proposes the same value (validity pins the decision)."""
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    return [value] * n


def skewed(n: int, rng: RandomSource, alphabet: int = 3) -> list[int]:
    """Small-alphabet random proposals: collisions likely, ties meaningful."""
    if alphabet < 1:
        raise ConfigurationError("alphabet must be >= 1")
    return rng.randints(n, 0, alphabet - 1)

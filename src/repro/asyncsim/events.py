"""Discrete-event core: simulated clock and event queue.

The asynchronous substrate (Section 4's MR99 bridge) and the timed
fast-failure-detector model (related work [1]) both run on this engine:
a priority heap of ``(time, seq, action, arg)`` tuples executed in
chronological order.  ``seq`` breaks ties deterministically in insertion
order, so runs are exactly reproducible for a given seed.

The entries are plain tuples on purpose: a heap of ordered dataclasses
pays a Python ``__lt__`` call per comparison, which profiling showed as
the single largest line of the MR99 kernel; tuple comparison happens in
C and never reaches the ``action`` element because ``seq`` is unique.
``arg`` carries an optional single argument for ``action`` so hot
callers (the network's delivery path) can schedule one shared bound
method per queue instead of allocating a closure per message.

Cancellation uses a tombstone set keyed by ``seq``: a cancelled entry
stays in the heap but is dropped un-executed when it surfaces, and the
heap is compacted eagerly once more than half of it is dead — so a
protocol that schedules many timers and cancels most of them no longer
leaks heap space until drain.  ``executed`` counts exactly the actions
that ran: tombstoned entries never increment it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """A deterministic simulated-time event loop.

    :meth:`schedule` / :meth:`schedule_at` return the entry's ``seq``
    token; pass it to :meth:`cancel` to revoke the event.  ``label`` is
    accepted as a readability aid at call sites but not stored — entries
    are bare tuples.
    """

    __slots__ = ("_heap", "_seq", "_now", "_pending", "_cancelled", "_dead", "executed")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._seq = 0
        self._now = 0.0
        self._pending: set[int] = set()  # cancellable entries still in the heap
        self._cancelled: set[int] = set()  # tombstones: seqs to drop unrun
        self._dead = 0  # tombstoned entries still sitting in the heap
        self.executed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def reset(self) -> None:
        """Return the queue to its freshly constructed state.

        Drops every pending entry, rewinds the clock to 0, and restarts
        the ``seq`` counter — a reset queue is indistinguishable from a
        new one (reusable runners lean on this for determinism: event
        sequence numbers of a leased run must match a fresh run's).
        """
        self._heap.clear()
        self._pending.clear()
        self._cancelled.clear()
        self._dead = 0
        self._seq = 0
        self._now = 0.0
        self.executed = 0

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        arg: Any = None,
        label: str = "",
    ) -> int:
        """Schedule ``action`` to run ``delay`` time units from now.

        ``arg`` is passed to ``action`` at fire time when not None —
        schedule a shared bound method plus its argument instead of a
        per-event closure on hot paths.  Returns the cancellation token.
        """
        if delay < 0:
            raise ConfigurationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._pending.add(seq)
        heapq.heappush(self._heap, (self._now + delay, seq, action, arg))
        return seq

    def schedule_fanout(
        self,
        action: Callable[..., None],
        delays: Sequence[float],
        args: Sequence[Any],
    ) -> None:
        """Schedule ``action(args[k])`` after ``delays[k]``, for every ``k``.

        Equivalent to calling :meth:`schedule` per pair in order — same
        seq assignment, same heap contents — minus one Python frame per
        event, which is what a broadcast fan-out of ``n`` deliveries
        actually pays for.  The parallel-list shape lets ``zip`` pair the
        two at C speed; the caller guarantees non-negative delays (the
        network's delay models are validated at the draw site).

        Fan-out entries are **not cancellable**: no tokens are returned,
        so their seqs skip the ``_pending`` book-keeping entirely (one
        set insert per delivery saved; ``cancel`` on such a seq is a
        no-op by the existing unknown-token rule, and ``__len__`` counts
        heap minus tombstones, which is unaffected).
        """
        heap = self._heap
        push = heapq.heappush
        now = self._now
        seq = self._seq
        for delay, arg in zip(delays, args):
            push(heap, (now + delay, seq, action, arg))
            seq += 1
        self._seq = seq

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        arg: Any = None,
        label: str = "",
    ) -> int:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._pending.add(seq)
        heapq.heappush(self._heap, (time, seq, action, arg))
        return seq

    def cancel(self, seq: int) -> None:
        """Revoke the event with token ``seq`` (idempotent).

        The entry stays in the heap as a tombstone and is dropped without
        running when it surfaces; once tombstones exceed half the heap,
        the heap is rebuilt without them.  Cancelling an event that
        already ran (or an unknown token) is a no-op — it never
        un-counts :attr:`executed` and never skews the live-entry
        accounting behind :meth:`__len__`.
        """
        if seq not in self._pending or seq in self._cancelled:
            return
        self._cancelled.add(seq)
        self._dead += 1
        if self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstoned entry and restore the heap invariant.

        In place (slice assignment) on purpose: :meth:`run` holds a local
        reference to the heap list while events execute, and an event's
        action may trigger compaction through :meth:`cancel`.
        """
        cancelled = self._cancelled
        heap = self._heap
        heap[:] = [e for e in heap if e[1] not in cancelled]
        heapq.heapify(heap)
        self._pending.difference_update(cancelled)
        cancelled.clear()
        self._dead = 0

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int = 1_000_000,
        stop: Callable[[], bool] | None = None,
        stop_set: Any = None,
    ) -> float:
        """Drain the queue; return the final simulated time.

        Stops when the queue empties, simulated time would pass ``until``,
        ``stop()`` turns true (checked between events), ``stop_set``
        becomes empty, or ``max_events`` executed *by this call* (then
        raises — a runaway protocol is a bug, not a result).  The budget
        is per ``run()`` invocation: earlier calls on the same queue
        never eat into it.

        ``stop_set`` is the allocation-free spelling of the common stop
        predicate "some tracked collection drained": passing the
        collection itself replaces a Python closure call per event with
        one C-level truthiness test (the async runner's settle tracking
        uses this).

        The clock is monotone: a horizon in the past (``until < now``) is
        clamped to ``now``, so the call executes nothing (no pending event
        can be due — scheduling into the past is rejected) and ``now``
        never moves backwards.
        """
        if max_events < 1:
            raise ConfigurationError(f"max_events must be >= 1, got {max_events}")
        # Clamp the horizon so the clock is monotone: a past `until`
        # executes nothing (no pending event can be due — scheduling into
        # the past is rejected) and never rewinds `now`.  `inf` folds the
        # "no horizon" case into one float compare per event.
        horizon = float("inf") if until is None else max(until, self._now)
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        pending = self._pending
        cancelled = self._cancelled
        if stop_set is None:
            stop_set = (1,)  # never-empty sentinel: one truthiness test per event
        ran = 0
        try:
            while heap:
                if not stop_set:
                    break
                if stop is not None and stop():
                    break
                entry = pop(heap)
                when, seq, action, arg = entry
                if seq in cancelled:
                    cancelled.discard(seq)
                    pending.discard(seq)
                    self._dead -= 1
                    continue
                if when > horizon:
                    # Leave the event unexecuted; the horizon ends the run.
                    push(heap, entry)
                    self._now = horizon
                    break
                if ran >= max_events:
                    push(heap, entry)  # unexecuted: the budget ends the run
                    raise SimulationError(
                        f"event budget exceeded ({max_events}); runaway protocol?"
                    )
                if pending:
                    pending.discard(seq)
                self._now = when
                if arg is None:
                    action()
                else:
                    action(arg)
                ran += 1
        finally:
            # One read-modify-write per run instead of one per event; the
            # budget above counts the local `ran`, so `executed` is only
            # read between runs and stays exact even on the budget raise.
            self.executed += ran
        return self._now

    def __len__(self) -> int:
        """Pending live (non-tombstoned) entries."""
        return len(self._heap) - self._dead

"""Discrete-event core: simulated clock and event queue.

The asynchronous substrate (Section 4's MR99 bridge) and the timed
fast-failure-detector model (related work [1]) both run on this engine:
a priority heap of ``(time, seq, action, arg)`` tuples executed in
chronological order.  ``seq`` breaks ties deterministically in insertion
order, so runs are exactly reproducible for a given seed.

The entries are plain tuples on purpose: a heap of ordered dataclasses
pays a Python ``__lt__`` call per comparison, which profiling showed as
the single largest line of the MR99 kernel; tuple comparison happens in
C and never reaches the ``action`` element because ``seq`` is unique.
``arg`` carries an optional single argument for ``action`` so hot
callers (the network's delivery path) can schedule one shared bound
method per queue instead of allocating a closure per message.

Cancellation uses a tombstone set keyed by ``seq``: a cancelled entry
stays in the heap but is dropped un-executed when it surfaces, and the
heap is compacted eagerly once more than half of it is dead — so a
protocol that schedules many timers and cancels most of them no longer
leaks heap space until drain.  ``executed`` counts exactly the actions
that ran: tombstoned entries never increment it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import ConfigurationError, SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """A deterministic simulated-time event loop.

    :meth:`schedule` / :meth:`schedule_at` return the entry's ``seq``
    token; pass it to :meth:`cancel` to revoke the event.  ``label`` is
    accepted as a readability aid at call sites but not stored — entries
    are bare tuples.
    """

    __slots__ = ("_heap", "_seq", "_now", "_pending", "_cancelled", "_dead", "executed")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._seq = 0
        self._now = 0.0
        self._pending: set[int] = set()  # seqs of entries still in the heap
        self._cancelled: set[int] = set()  # tombstones: seqs to drop unrun
        self._dead = 0  # tombstoned entries still sitting in the heap
        self.executed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        arg: Any = None,
        label: str = "",
    ) -> int:
        """Schedule ``action`` to run ``delay`` time units from now.

        ``arg`` is passed to ``action`` at fire time when not None —
        schedule a shared bound method plus its argument instead of a
        per-event closure on hot paths.  Returns the cancellation token.
        """
        if delay < 0:
            raise ConfigurationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._pending.add(seq)
        heapq.heappush(self._heap, (self._now + delay, seq, action, arg))
        return seq

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        arg: Any = None,
        label: str = "",
    ) -> int:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._pending.add(seq)
        heapq.heappush(self._heap, (time, seq, action, arg))
        return seq

    def cancel(self, seq: int) -> None:
        """Revoke the event with token ``seq`` (idempotent).

        The entry stays in the heap as a tombstone and is dropped without
        running when it surfaces; once tombstones exceed half the heap,
        the heap is rebuilt without them.  Cancelling an event that
        already ran (or an unknown token) is a no-op — it never
        un-counts :attr:`executed` and never skews the live-entry
        accounting behind :meth:`__len__`.
        """
        if seq not in self._pending or seq in self._cancelled:
            return
        self._cancelled.add(seq)
        self._dead += 1
        if self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstoned entry and restore the heap invariant.

        In place (slice assignment) on purpose: :meth:`run` holds a local
        reference to the heap list while events execute, and an event's
        action may trigger compaction through :meth:`cancel`.
        """
        cancelled = self._cancelled
        heap = self._heap
        heap[:] = [e for e in heap if e[1] not in cancelled]
        heapq.heapify(heap)
        self._pending.difference_update(cancelled)
        cancelled.clear()
        self._dead = 0

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int = 1_000_000,
        stop: Callable[[], bool] | None = None,
    ) -> float:
        """Drain the queue; return the final simulated time.

        Stops when the queue empties, simulated time would pass ``until``,
        ``stop()`` turns true (checked between events), or ``max_events``
        executed (then raises — a runaway protocol is a bug, not a result).
        """
        heap = self._heap
        pop = heapq.heappop
        pending = self._pending
        cancelled = self._cancelled
        while heap:
            if stop is not None and stop():
                break
            entry = heap[0]
            if entry[1] in cancelled:
                pop(heap)
                cancelled.discard(entry[1])
                pending.discard(entry[1])
                self._dead -= 1
                continue
            if until is not None and entry[0] > until:
                # Leave the event unexecuted; the horizon ends the run.
                self._now = until
                break
            pop(heap)
            pending.discard(entry[1])
            self._now = entry[0]
            action = entry[2]
            arg = entry[3]
            if arg is None:
                action()
            else:
                action(arg)
            self.executed += 1
            if self.executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); runaway protocol?"
                )
        return self._now

    def __len__(self) -> int:
        """Pending live (non-tombstoned) entries."""
        return len(self._heap) - self._dead

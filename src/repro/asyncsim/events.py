"""Discrete-event core: simulated clock and event queue.

The asynchronous substrate (Section 4's MR99 bridge) and the timed
fast-failure-detector model (related work [1]) both run on this engine:
a priority heap of ``(time, seq, action, arg)`` tuples executed in
chronological order.  ``seq`` breaks ties deterministically in insertion
order, so runs are exactly reproducible for a given seed.

The entries are plain tuples on purpose: a heap of ordered dataclasses
pays a Python ``__lt__`` call per comparison, which profiling showed as
the single largest line of the MR99 kernel; tuple comparison happens in
C and never reaches the ``action`` element because ``seq`` is unique.
``arg`` carries an optional single argument for ``action`` so hot
callers (the network's delivery path) can schedule one shared bound
method per queue instead of allocating a closure per message.

Cancellation uses a tombstone set keyed by ``seq``: a cancelled entry
stays in the heap but is dropped un-executed when it surfaces, and the
heap is compacted eagerly once more than half of it is dead — so a
protocol that schedules many timers and cancels most of them no longer
leaks heap space until drain.  ``executed`` counts exactly the actions
that ran: tombstoned entries never increment it.

Same-instant delivery runs are additionally *blocked*:
:meth:`EventQueue.schedule_fanout` folds every maximal run of equal
delays into **one** heap entry carrying the whole argument list (the
entry still owns one ``seq`` per item, so global ordering is untouched).
A constant-delay broadcast of ``n`` messages then costs one heap push
and one pop instead of ``n`` of each, and :meth:`run` drains the block's
items in a single dispatch frame — checking the stop predicates and the
event budget *between items*, exactly as the unblocked loop would, so
blocked and per-entry executions are observably identical down to the
``executed`` counter.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, SimulationError

__all__ = ["EventQueue"]

#: Action-slot marker for fanout block entries.  A block's ``arg`` is
#: ``(action, args)``: the shared real action plus the argument list of a
#: same-instant run whose seqs are ``entry_seq .. entry_seq + len(args) - 1``.
_FANOUT_BLOCK = object()


class EventQueue:
    """A deterministic simulated-time event loop.

    :meth:`schedule` / :meth:`schedule_at` return the entry's ``seq``
    token; pass it to :meth:`cancel` to revoke the event.  ``label`` is
    accepted as a readability aid at call sites but not stored — entries
    are bare tuples.
    """

    __slots__ = (
        "_heap", "_seq", "_now", "_pending", "_cancelled", "_dead",
        "_blocked_extra", "executed",
    )

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._seq = 0
        self._now = 0.0
        self._pending: set[int] = set()  # cancellable entries still in the heap
        self._cancelled: set[int] = set()  # tombstones: seqs to drop unrun
        self._dead = 0  # tombstoned entries still sitting in the heap
        self._blocked_extra = 0  # events beyond the first inside fanout blocks
        self.executed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def reset(self) -> None:
        """Return the queue to its freshly constructed state.

        Drops every pending entry, rewinds the clock to 0, and restarts
        the ``seq`` counter — a reset queue is indistinguishable from a
        new one (reusable runners lean on this for determinism: event
        sequence numbers of a leased run must match a fresh run's).
        """
        self._heap.clear()
        self._pending.clear()
        self._cancelled.clear()
        self._dead = 0
        self._blocked_extra = 0
        self._seq = 0
        self._now = 0.0
        self.executed = 0

    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        arg: Any = None,
        label: str = "",
    ) -> int:
        """Schedule ``action`` to run ``delay`` time units from now.

        ``arg`` is passed to ``action`` at fire time when not None —
        schedule a shared bound method plus its argument instead of a
        per-event closure on hot paths.  Returns the cancellation token.
        """
        if delay < 0:
            raise ConfigurationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._pending.add(seq)
        heapq.heappush(self._heap, (self._now + delay, seq, action, arg))
        return seq

    def schedule_fanout(
        self,
        action: Callable[..., None],
        delays: Sequence[float],
        args: Sequence[Any],
        grouped: bool = False,
    ) -> None:
        """Schedule ``action(args[k])`` after ``delays[k]``, for every ``k``.

        Equivalent to calling :meth:`schedule` per pair in order — same
        seq assignment, same heap contents — minus one Python frame per
        event, which is what a broadcast fan-out of ``n`` deliveries
        actually pays for.  The parallel-list shape lets ``zip`` pair the
        two at C speed; the caller guarantees non-negative delays (the
        network's delay models are validated at the draw site).

        Fan-out entries are **not cancellable**: no tokens are returned,
        so their seqs skip the ``_pending`` book-keeping entirely (one
        set insert per delivery saved; ``cancel`` on such a seq is a
        no-op by the existing unknown-token rule).

        With ``grouped=True``, maximal runs of *equal consecutive delays*
        — the whole fan-out, for a constant-delay model — become one
        **block** heap entry holding the run's argument list.  Seq
        assignment is unchanged (the block owns one seq per item), and no
        other entry can carry a seq inside the block's range, so the heap
        pops blocks exactly where the per-entry loop would have popped
        their first item and :meth:`run` drains the items in first-seq
        order: executions are observably identical, at one heap push/pop
        per *run* instead of per event.  Callers pass ``grouped`` from
        knowledge of the delay source (the network forwards its model's
        :attr:`~repro.asyncsim.network.DelayModel.same_instant_fanouts`):
        scanning for runs that random delay draws almost never produce
        would tax the common path for nothing.
        """
        heap = self._heap
        push = heapq.heappush
        now = self._now
        seq = self._seq
        if not grouped:
            for delay, arg in zip(delays, args):
                push(heap, (now + delay, seq, action, arg))
                seq += 1
            self._seq = seq
            return
        i = 0
        total = len(delays)
        while i < total:
            delay = delays[i]
            j = i + 1
            while j < total and delays[j] == delay:
                j += 1
            if j - i == 1:
                push(heap, (now + delay, seq, action, args[i]))
                seq += 1
            else:
                push(heap, (now + delay, seq, _FANOUT_BLOCK, (action, args[i:j])))
                seq += j - i
                self._blocked_extra += j - i - 1
            i = j
        self._seq = seq

    def schedule_at(
        self,
        time: float,
        action: Callable[..., None],
        arg: Any = None,
        label: str = "",
    ) -> int:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._pending.add(seq)
        heapq.heappush(self._heap, (time, seq, action, arg))
        return seq

    def _requeue_block(
        self, when: float, first_seq: int, action: Callable[..., None], items: Sequence[Any]
    ) -> None:
        """Put an interrupted fanout block's unexecuted tail back in the heap.

        The tail keeps its original seq range (``first_seq`` onward), so a
        later :meth:`run` drains it exactly where the per-entry loop would
        have resumed; a single-item tail degenerates to a plain entry.
        """
        if len(items) == 1:
            heapq.heappush(self._heap, (when, first_seq, action, items[0]))
        else:
            heapq.heappush(
                self._heap, (when, first_seq, _FANOUT_BLOCK, (action, items))
            )
            self._blocked_extra += len(items) - 1

    def cancel(self, seq: int) -> None:
        """Revoke the event with token ``seq`` (idempotent).

        The entry stays in the heap as a tombstone and is dropped without
        running when it surfaces; once tombstones exceed half the heap,
        the heap is rebuilt without them.  Cancelling an event that
        already ran (or an unknown token) is a no-op — it never
        un-counts :attr:`executed` and never skews the live-entry
        accounting behind :meth:`__len__`.
        """
        if seq not in self._pending or seq in self._cancelled:
            return
        self._cancelled.add(seq)
        self._dead += 1
        if self._dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstoned entry and restore the heap invariant.

        In place (slice assignment) on purpose: :meth:`run` holds a local
        reference to the heap list while events execute, and an event's
        action may trigger compaction through :meth:`cancel`.
        """
        cancelled = self._cancelled
        heap = self._heap
        heap[:] = [e for e in heap if e[1] not in cancelled]
        heapq.heapify(heap)
        self._pending.difference_update(cancelled)
        cancelled.clear()
        self._dead = 0

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int = 1_000_000,
        stop: Callable[[], bool] | None = None,
        stop_set: Any = None,
    ) -> float:
        """Drain the queue; return the final simulated time.

        Stops when the queue empties, simulated time would pass ``until``,
        ``stop()`` turns true (checked between events), ``stop_set``
        becomes empty, or ``max_events`` executed *by this call* (then
        raises — a runaway protocol is a bug, not a result).  The budget
        is per ``run()`` invocation: earlier calls on the same queue
        never eat into it.

        ``stop_set`` is the allocation-free spelling of the common stop
        predicate "some tracked collection drained": passing the
        collection itself replaces a Python closure call per event with
        one C-level truthiness test (the async runner's settle tracking
        uses this).

        The clock is monotone: a horizon in the past (``until < now``) is
        clamped to ``now``, so the call executes nothing (no pending event
        can be due — scheduling into the past is rejected) and ``now``
        never moves backwards.
        """
        if max_events < 1:
            raise ConfigurationError(f"max_events must be >= 1, got {max_events}")
        # Clamp the horizon so the clock is monotone: a past `until`
        # executes nothing (no pending event can be due — scheduling into
        # the past is rejected) and never rewinds `now`.  `inf` folds the
        # "no horizon" case into one float compare per event.
        horizon = float("inf") if until is None else max(until, self._now)
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        pending = self._pending
        cancelled = self._cancelled
        if stop_set is None:
            stop_set = (1,)  # never-empty sentinel: one truthiness test per event
        ran = 0
        try:
            while heap:
                if not stop_set:
                    break
                if stop is not None and stop():
                    break
                entry = pop(heap)
                when, seq, action, arg = entry
                if seq in cancelled:
                    cancelled.discard(seq)
                    pending.discard(seq)
                    self._dead -= 1
                    continue
                if when > horizon:
                    # Leave the event unexecuted; the horizon ends the run.
                    push(heap, entry)
                    self._now = horizon
                    break
                if ran >= max_events:
                    push(heap, entry)  # unexecuted: the budget ends the run
                    raise SimulationError(
                        f"event budget exceeded ({max_events}); runaway protocol?"
                    )
                if action is _FANOUT_BLOCK:
                    # Same-instant fanout run: drain the items in one
                    # dispatch frame.  Stop predicates and the budget are
                    # re-checked between items — an item that settles the
                    # run (or exhausts the budget) leaves the remainder
                    # queued as a smaller block, exactly like unexecuted
                    # per-entry events.  Block items are never cancellable
                    # and never in ``pending``, so those checks are skipped.
                    real_action, items = arg
                    count = len(items)
                    self._blocked_extra -= count - 1
                    self._now = when
                    idx = 0
                    # The first unconsumed item, maintained so that *any*
                    # exit — stop break, budget raise, or an exception out
                    # of a handler — requeues exactly the tail the
                    # per-entry loop would have left in the heap (a
                    # raising handler consumes its own item there too).
                    resume_from = 0
                    try:
                        while idx < count:
                            resume_from = idx
                            if (not stop_set) or (stop is not None and stop()):
                                break
                            if ran >= max_events:
                                raise SimulationError(
                                    f"event budget exceeded ({max_events}); "
                                    f"runaway protocol?"
                                )
                            resume_from = idx + 1
                            real_action(items[idx])
                            idx += 1
                            ran += 1
                    finally:
                        if resume_from < count:
                            self._requeue_block(
                                when, seq + resume_from, real_action,
                                items[resume_from:],
                            )
                    continue
                if pending:
                    pending.discard(seq)
                self._now = when
                if arg is None:
                    action()
                else:
                    action(arg)
                ran += 1
        finally:
            # One read-modify-write per run instead of one per event; the
            # budget above counts the local `ran`, so `executed` is only
            # read between runs and stays exact even on the budget raise.
            self.executed += ran
        return self._now

    def __len__(self) -> int:
        """Pending live (non-tombstoned) events, counting every block item."""
        return len(self._heap) - self._dead + self._blocked_extra

"""Discrete-event core: simulated clock and event queue.

The asynchronous substrate (Section 4's MR99 bridge) and the timed
fast-failure-detector model (related work [1]) both run on this engine:
a priority queue of ``(time, seq, action)`` entries executed in
chronological order.  ``seq`` breaks ties deterministically in insertion
order, so runs are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError, SimulationError

__all__ = ["EventQueue", "Event"]


@dataclass(order=True)
class Event:
    """One scheduled action.  Ordering: time, then insertion sequence."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as a no-op (it stays in the heap but won't run)."""
        self.cancelled = True


class EventQueue:
    """A deterministic simulated-time event loop."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self.executed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule into the past (delay={delay})")
        ev = Event(time=self._now + delay, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule at {time} < now {self._now}"
            )
        ev = Event(time=time, seq=self._seq, action=action, label=label)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int = 1_000_000,
        stop: Callable[[], bool] | None = None,
    ) -> float:
        """Drain the queue; return the final simulated time.

        Stops when the queue empties, simulated time would pass ``until``,
        ``stop()`` turns true (checked between events), or ``max_events``
        executed (then raises — a runaway protocol is a bug, not a result).
        """
        while self._heap:
            if stop is not None and stop():
                break
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if until is not None and ev.time > until:
                # Leave the event unexecuted; the horizon ends the run.
                heapq.heappush(self._heap, ev)
                self._now = until
                break
            self._now = ev.time
            ev.action()
            self.executed += 1
            if self.executed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); runaway protocol?"
                )
        return self._now

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

"""Harness for asynchronous consensus runs (crash injection + spec checks).

The runner drives the protocol in one of two modes:

* **per-object** (``batched=False``): every delivery dispatches through
  the destination's :class:`AsyncProcess` handler — the reference path;
* **batched columnar** (``batched=None`` auto-detects, ``True``
  requires): when every process is of one exact type with a registered
  :class:`~repro.asyncsim.process.AsyncBatchedTable` and the delay model
  rides the pooled tuple path, deliveries go straight to the table as
  raw ``(bits, sender, dest, round_no, payload, tag)`` entries — no
  ``Message`` object is ever built — and the table re-evaluates progress
  only on events that can unblock the destination.  Decisions are
  mirrored back onto the process objects, and runs are byte-identical to
  per-object mode (``tests/asyncsim/test_batched_async_parity.py``).

A runner is **reusable**: :meth:`AsyncRunner.reset` rewires it for a
fresh process list (same ``n``/``t``/delay model/detector spec) while
keeping the event queue, network, detector, and per-pid contexts
allocated — the engine-lease path of the scenario layer leans on this to
amortize setup across sweep cells.  A reset runner is observably
identical to a freshly constructed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import DetectorSpec, SimulatedDiamondS
from repro.asyncsim.network import AsyncNetwork, DelayModel, UniformDelay
from repro.asyncsim.process import (
    AsyncBatchedTable,
    AsyncProcess,
    ProcessContext,
    async_table_for,
)
from repro.errors import ConfigurationError
from repro.net.accounting import MessageStats
from repro.net.message import Message, MessageKind
from repro.util.rng import RandomSource

__all__ = ["AsyncCrash", "AsyncRunResult", "AsyncRunner"]


@dataclass(frozen=True, slots=True)
class AsyncCrash:
    """Crash ``pid`` at simulated time ``time``."""

    pid: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("crash time must be >= 0")


@dataclass(slots=True)
class AsyncRunResult:
    """Observable outcome of one asynchronous run."""

    n: int
    t: int
    proposals: dict[int, Any]
    decisions: dict[int, Any]
    decision_times: dict[int, float]
    decision_rounds: dict[int, int]
    crashed: dict[int, float]
    sim_time: float
    events_executed: int
    stats: MessageStats

    @property
    def f(self) -> int:
        return len(self.crashed)

    @property
    def correct_pids(self) -> list[int]:
        return [pid for pid in self.proposals if pid not in self.crashed]

    def check_consensus(self) -> list[str]:
        """Uniform-consensus violations of this run (empty = OK)."""
        violations: list[str] = []
        proposed = set(self.proposals.values())
        for pid in self.correct_pids:
            if pid not in self.decisions:
                violations.append(f"termination: correct p{pid} never decided")
        for pid, value in self.decisions.items():
            if value not in proposed:
                violations.append(f"validity: p{pid} decided unproposed {value!r}")
        if len(set(self.decisions.values())) > 1:
            violations.append(f"uniform agreement: {self.decisions}")
        return violations


class AsyncRunner:
    """Wires processes, network, detector, and crashes; runs to quiescence."""

    def __init__(
        self,
        processes: Sequence[AsyncProcess],
        *,
        t: int,
        crashes: Iterable[AsyncCrash] = (),
        delay_model: DelayModel | None = None,
        detector_spec: DetectorSpec | None = None,
        rng: RandomSource | None = None,
        batched: bool | None = None,
    ) -> None:
        if not processes:
            raise ConfigurationError("no processes")
        n = processes[0].n
        self.n = n
        self.t = t
        self._batched = batched
        self.rng = rng or RandomSource(0)
        self.queue = EventQueue()
        self.stats = MessageStats()
        self.delay_model = delay_model or UniformDelay()
        self.detector = SimulatedDiamondS(
            n,
            self.queue,
            detector_spec or DetectorSpec(detection_latency=1.0),
            self.rng,
            on_change=self._on_fd_change,
        )
        self.network = AsyncNetwork(
            self.queue,
            self.delay_model,
            self.rng.spawn("net"),
            self._deliver,
            stats=self.stats,
            deliver_entry=self._deliver_entry,
        )
        # Contexts depend only on (pid, n) and the long-lived wiring, so a
        # reused runner hands the same context objects to fresh processes.
        self._contexts = [
            ProcessContext(pid, n, self.queue, self.network, self.detector, self._deliver)
            for pid in range(1, n + 1)
        ]
        self._install(processes, crashes)

    def _checked_crashes(self, crashes: Iterable[AsyncCrash]) -> list[AsyncCrash]:
        """Validate a run's crash list (shared by install and refill)."""
        crash_list = list(crashes)
        if len({c.pid for c in crash_list}) != len(crash_list):
            raise ConfigurationError("a process can crash only once")
        if len(crash_list) > self.t:
            raise ConfigurationError(f"{len(crash_list)} crashes but t={self.t}")
        return crash_list

    def _rearm(self, rng: RandomSource | None) -> None:
        """Reset the long-lived wiring for a fresh run (reset and refill):
        new RNG tree installed exactly as construction would, queue rewound,
        fresh stats ledger handed to detector and network."""
        self.rng = rng or RandomSource(0)
        self.queue.reset()
        self.stats = MessageStats()
        self.detector.reset(self.rng)
        self.network.reset(self.rng.spawn("net"), self.stats)

    def _install(
        self, processes: Sequence[AsyncProcess], crashes: Iterable[AsyncCrash]
    ) -> None:
        """Per-run wiring shared by construction and :meth:`reset`."""
        n = self.n
        if sorted(p.pid for p in processes) != list(range(1, n + 1)) or any(
            p.n != n for p in processes
        ):
            raise ConfigurationError("pids must be exactly 1..n")
        self.procs: dict[int, AsyncProcess] = {p.pid: p for p in processes}
        self.crashes = self._checked_crashes(crashes)
        self._crashed: dict[int, float] = {}
        # Settled = decided or crashed.  Processes report decisions through
        # the settle hook and crashes drain through _crash(), so the run
        # loop's stop predicate is one truthiness test per event instead of
        # an all-processes scan.
        self._unsettled: set[int] = set(self.procs)
        for p in processes:
            p._settle_hook = self._unsettled.discard
            p.attach(self._contexts[p.pid - 1])
        self._table: AsyncBatchedTable | None = None
        if self._batched is None or self._batched:
            self._table = async_table_for(processes, self.network, self.detector)
            if self._batched and self._table is None:
                raise ConfigurationError(
                    f"batched=True but {type(processes[0]).__name__} has no "
                    f"registered async table (or the delay model is per_message)"
                )
        if self._table is not None:
            # One frame per delivery: the table itself is the scheduled
            # action; it owns the delivered-bits charge and the void drop.
            self._table.bind_run(self.stats, self._crashed)
            self.network.set_deliver_entry(self._table.deliver)
        else:
            self.network.set_deliver_entry(self._deliver_entry)

    def reset(
        self,
        processes: Sequence[AsyncProcess],
        *,
        crashes: Iterable[AsyncCrash] = (),
        rng: RandomSource | None = None,
    ) -> "AsyncRunner":
        """Rewire for a fresh run over ``processes``; return ``self``.

        Reuses the event queue (rewound to time 0 with a restarted seq
        counter), network, detector, and per-pid contexts; installs the
        new RNG tree exactly as construction would (detector re-spawns
        ``"fd"``, network gets ``spawn("net")``).  ``n``, ``t``, the
        delay model, the detector spec, and the batched mode are fixed at
        construction — reuse is only safe across runs of one scenario
        configuration, which is what the engine lease keys on.
        """
        self._rearm(rng)
        self._install(processes, crashes)
        return self

    def refill(
        self,
        proposals: Sequence[Any],
        *,
        crashes: Iterable[AsyncCrash] = (),
        rng: RandomSource | None = None,
    ) -> bool:
        """Rearm for a fresh run **without** a new process list.

        The factory-free sibling of :meth:`reset`: when the runner steps
        through a batched table advertising ``refill``
        (:attr:`~repro.asyncsim.process.AsyncBatchedTable.supports_refill`),
        the table's columns are rewritten in place from ``proposals``, the
        retained process objects are re-armed as decision mirrors
        (decision slots cleared, ``proposal`` updated — their other
        protocol attributes keep the previous run's values; the table is
        authoritative), and queue/network/detector/stats are reset exactly
        as :meth:`reset` would.  Returns False (taking no action) when no
        refillable table is installed; callers then fall back to the
        factory + :meth:`reset` path.  Refilled runs are byte-identical
        to fresh ones (``tests/scenarios/test_columnar_parity.py``).
        """
        table = self._table
        if table is None or not table.supports_refill:
            return False
        if len(proposals) != self.n:
            raise ConfigurationError(
                f"refill() needs {self.n} proposals, got {len(proposals)}"
            )
        crash_list = self._checked_crashes(crashes)
        if not table.refill(proposals):
            return False
        self._rearm(rng)
        self.crashes = crash_list
        self._crashed.clear()
        # The settle hooks bind the *existing* unsettled set's discard, so
        # the set is repopulated in place rather than replaced.
        self._unsettled.clear()
        self._unsettled.update(self.procs)
        for pid, proc in self.procs.items():
            proc._decided = False
            proc._decision = None
            proc._decision_time = 0.0
            proc._decision_round = 0
            proc.proposal = proposals[pid - 1]
        table.bind_run(self.stats, self._crashed)
        return True

    # -- wiring callbacks -----------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        if msg.dest in self._crashed:
            return  # delivered into the void
        self.procs[msg.dest].on_message(msg)

    def _deliver_entry(self, entry: tuple) -> None:
        """Pooled delivery in per-object mode.

        Scheduled directly as the delivery action by the network's pooled
        path (batched runs schedule the table's ``deliver`` instead), so
        the delivered-side accounting lands here — counters bumped in
        place, one attribute write instead of a ``bulk_async`` frame —
        *before* the crash check: a message into the void still counts as
        delivered, exactly like the Message path's ``_deliver_one``.  The
        one ``Message`` the handler expects is materialized after the
        crash check, so messages into the void are never built at all.
        """
        bits = entry[0]
        if bits:
            stats = self.stats
            stats.async_delivered += 1
            stats.bits_delivered += bits
        dest = entry[2]
        if dest in self._crashed:
            return
        self.procs[dest].on_message(
            Message(
                MessageKind.ASYNC, entry[1], dest, entry[3],
                payload=entry[4], tag=entry[5],
            )
        )

    def _on_fd_change(self, observer: int) -> None:
        if observer not in self._crashed:
            if self._table is not None:
                self._table.on_fd_change(observer)
            else:
                self.procs[observer].on_fd_change()

    def _crash(self, pid: int) -> None:
        if pid not in self._crashed:
            self._crashed[pid] = self.queue.now
            self._unsettled.discard(pid)
            self.detector.notify_crash(pid)

    def _start_if_alive(self, pid: int) -> None:
        # A process crashed at time 0 (scheduled before the starts, hence
        # earlier in the queue) must never run its start handler.
        if pid not in self._crashed:
            if self._table is not None:
                self._table.on_start(pid)
            else:
                self.procs[pid].on_start()

    # -- execution --------------------------------------------------------------

    def run(self, *, until: float = 10_000.0, max_events: int = 2_000_000) -> AsyncRunResult:
        """Start every process, inject crashes, drain events, report."""
        for crash in self.crashes:
            self.queue.schedule_at(crash.time, self._crash, crash.pid)
        # Start order is randomised: asynchrony includes start skew.
        for pid in self.rng.shuffle(sorted(self.procs)):
            self.queue.schedule(0.0, self._start_if_alive, pid)

        end = self.queue.run(
            until=until, max_events=max_events, stop_set=self._unsettled
        )

        return AsyncRunResult(
            n=self.n,
            t=self.t,
            proposals={
                pid: getattr(p, "proposal", None) for pid, p in self.procs.items()
            },
            decisions={pid: p.decision for pid, p in self.procs.items() if p.decided},
            decision_times={
                pid: p.decision_time for pid, p in self.procs.items() if p.decided
            },
            decision_rounds={
                pid: p.decision_round for pid, p in self.procs.items() if p.decided
            },
            crashed=dict(self._crashed),
            sim_time=end,
            events_executed=self.queue.executed,
            stats=self.stats,
        )

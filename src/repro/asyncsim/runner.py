"""Harness for asynchronous consensus runs (crash injection + spec checks)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.asyncsim.events import EventQueue
from repro.asyncsim.failure_detector import DetectorSpec, SimulatedDiamondS
from repro.asyncsim.network import AsyncNetwork, DelayModel, UniformDelay
from repro.asyncsim.process import AsyncProcess, ProcessContext
from repro.errors import ConfigurationError
from repro.net.accounting import MessageStats
from repro.net.message import Message
from repro.util.rng import RandomSource

__all__ = ["AsyncCrash", "AsyncRunResult", "AsyncRunner"]


@dataclass(frozen=True, slots=True)
class AsyncCrash:
    """Crash ``pid`` at simulated time ``time``."""

    pid: int
    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError("crash time must be >= 0")


@dataclass(slots=True)
class AsyncRunResult:
    """Observable outcome of one asynchronous run."""

    n: int
    t: int
    proposals: dict[int, Any]
    decisions: dict[int, Any]
    decision_times: dict[int, float]
    decision_rounds: dict[int, int]
    crashed: dict[int, float]
    sim_time: float
    events_executed: int
    stats: MessageStats

    @property
    def f(self) -> int:
        return len(self.crashed)

    @property
    def correct_pids(self) -> list[int]:
        return [pid for pid in self.proposals if pid not in self.crashed]

    def check_consensus(self) -> list[str]:
        """Uniform-consensus violations of this run (empty = OK)."""
        violations: list[str] = []
        proposed = set(self.proposals.values())
        for pid in self.correct_pids:
            if pid not in self.decisions:
                violations.append(f"termination: correct p{pid} never decided")
        for pid, value in self.decisions.items():
            if value not in proposed:
                violations.append(f"validity: p{pid} decided unproposed {value!r}")
        if len(set(self.decisions.values())) > 1:
            violations.append(f"uniform agreement: {self.decisions}")
        return violations


class AsyncRunner:
    """Wires processes, network, detector, and crashes; runs to quiescence."""

    def __init__(
        self,
        processes: Sequence[AsyncProcess],
        *,
        t: int,
        crashes: Iterable[AsyncCrash] = (),
        delay_model: DelayModel | None = None,
        detector_spec: DetectorSpec | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        if not processes:
            raise ConfigurationError("no processes")
        n = processes[0].n
        if sorted(p.pid for p in processes) != list(range(1, n + 1)):
            raise ConfigurationError("pids must be exactly 1..n")
        self.n = n
        self.t = t
        self.procs: dict[int, AsyncProcess] = {p.pid: p for p in processes}
        self.crashes = list(crashes)
        if len({c.pid for c in self.crashes}) != len(self.crashes):
            raise ConfigurationError("a process can crash only once")
        if len(self.crashes) > t:
            raise ConfigurationError(f"{len(self.crashes)} crashes but t={t}")
        self.rng = rng or RandomSource(0)
        self.queue = EventQueue()
        self.stats = MessageStats()
        self.delay_model = delay_model or UniformDelay()
        self.detector = SimulatedDiamondS(
            n,
            self.queue,
            detector_spec or DetectorSpec(detection_latency=1.0),
            self.rng,
            on_change=self._on_fd_change,
        )
        self.network = AsyncNetwork(
            self.queue,
            self.delay_model,
            self.rng.spawn("net"),
            self._deliver,
            stats=self.stats,
        )
        self._crashed: dict[int, float] = {}
        # Settled = decided or crashed.  Processes report decisions through
        # the settle hook and crashes drain through _crash(), so the run
        # loop's stop predicate is one truthiness test per event instead of
        # an all-processes scan.
        self._unsettled: set[int] = set(self.procs)
        for p in processes:
            p._settle_hook = self._unsettled.discard
            p.attach(
                ProcessContext(
                    p.pid, n, self.queue, self.network, self.detector, self._deliver
                )
            )

    # -- wiring callbacks -----------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        if msg.dest in self._crashed:
            return  # delivered into the void
        self.procs[msg.dest].on_message(msg)

    def _on_fd_change(self, observer: int) -> None:
        if observer not in self._crashed:
            self.procs[observer].on_fd_change()

    def _crash(self, pid: int) -> None:
        if pid not in self._crashed:
            self._crashed[pid] = self.queue.now
            self._unsettled.discard(pid)
            self.detector.notify_crash(pid)

    def _start_if_alive(self, pid: int) -> None:
        # A process crashed at time 0 (scheduled before the starts, hence
        # earlier in the queue) must never run its start handler.
        if pid not in self._crashed:
            self.procs[pid].on_start()

    # -- execution --------------------------------------------------------------

    def run(self, *, until: float = 10_000.0, max_events: int = 2_000_000) -> AsyncRunResult:
        """Start every process, inject crashes, drain events, report."""
        for crash in self.crashes:
            self.queue.schedule_at(crash.time, self._crash, crash.pid)
        # Start order is randomised: asynchrony includes start skew.
        for pid in self.rng.shuffle(sorted(self.procs)):
            self.queue.schedule(0.0, self._start_if_alive, pid)

        unsettled = self._unsettled

        def all_settled() -> bool:
            return not unsettled

        end = self.queue.run(until=until, max_events=max_events, stop=all_settled)

        return AsyncRunResult(
            n=self.n,
            t=self.t,
            proposals={
                pid: getattr(p, "proposal", None) for pid, p in self.procs.items()
            },
            decisions={pid: p.decision for pid, p in self.procs.items() if p.decided},
            decision_times={
                pid: p.decision_time for pid, p in self.procs.items() if p.decided
            },
            decision_rounds={
                pid: p.decision_round for pid, p in self.procs.items() if p.decided
            },
            crashed=dict(self._crashed),
            sim_time=end,
            events_executed=self.queue.executed,
            stats=self.stats,
        )
